//! # helix
//!
//! Facade crate for the HELIX reproduction (Campanoni et al., "HELIX: Automatic
//! Parallelization of Irregular Programs for Chip Multiprocessing", CGO 2012).
//!
//! This crate re-exports the individual subsystem crates under stable module names so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`ir`] — the compiler intermediate representation and sequential interpreter.
//! * [`frontend`] — the lexer/parser for the textual `.hir` format.
//! * [`gen`] — the seeded structured program generator, differential fuzzing oracle and
//!   delta-debugging shrinker behind `helix fuzz`.
//! * [`analysis`] — dominators, loops, data flow, pointer analysis and dependence graphs.
//! * [`core`] — the HELIX transformation pipeline and loop selection algorithm.
//! * [`simulator`] — the cycle-level chip-multiprocessor timing model.
//! * [`runtime`] — the real-thread ring executor used for correctness validation.
//! * [`profiler`] — the profiling interpreter feeding loop selection.
//! * [`workloads`] — synthetic SPEC CPU2000 stand-in programs.
//! * [`service`] — the `helix serve` daemon: content-hash image cache and shared-pool
//!   job scheduling over a framed socket/stdin protocol (`docs/service.md`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory and the
//! experiment index mapping every figure and table of the paper to a reproducing harness.

pub use helix_analysis as analysis;
pub use helix_core as core;
pub use helix_frontend as frontend;
pub use helix_gen as gen;
pub use helix_ir as ir;
pub use helix_profiler as profiler;
pub use helix_runtime as runtime;
pub use helix_service as service;
pub use helix_simulator as simulator;
pub use helix_workloads as workloads;
