//! End-to-end pipeline tests over the checked-in `.hir` corpus: every file enters through
//! the frontend and flows through profiling, HELIX analysis, timing simulation, and (for a
//! representative program) the transformation + real-thread parallel executor.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig};
use helix::ir::Machine;
use helix::profiler::profile_program;
use helix::runtime::ParallelExecutor;
use helix::simulator::{simulate_program, SimConfig};

#[test]
fn every_corpus_program_flows_through_the_whole_pipeline() {
    let programs = helix::workloads::load_corpus().expect("corpus loads");
    assert!(programs.len() >= 6);
    for (name, module, main) in programs {
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[])
            .unwrap_or_else(|e| panic!("{name} fails to profile: {e}"));
        assert!(profile.total_cycles > 0, "{name}: empty profile");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        assert!(
            !output.plans.is_empty(),
            "{name}: no candidate loops reached the analysis"
        );
        let sim = simulate_program(&output, &profile, &SimConfig::helix_6_cores());
        assert!(sim.speedup > 0.0, "{name}: nonsensical speedup");
        assert!(
            sim.speedup <= 6.0 + 1e-9,
            "{name}: speedup {} beyond the core count",
            sim.speedup
        );
    }
}

#[test]
fn corpus_wins_and_losses_match_their_design() {
    let speedup_of = |name: &str| {
        let (module, main) = helix::workloads::corpus::load(name).expect("loads");
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        simulate_program(&output, &profile, &SimConfig::helix_6_cores()).speedup
    };
    // The DOALL-heavy scenarios must profit from HELIX...
    assert!(speedup_of("sum_reduction") > 1.5);
    assert!(speedup_of("stencil") > 1.5);
    assert!(speedup_of("array_transform") > 1.2);
    // ...while the hostile irregular-branch scenario demonstrates the Figure 12
    // mis-selection phenomenon (documented in the corpus file itself).
    assert!(speedup_of("irregular_branch") < 1.0);
}

#[test]
fn transformed_corpus_reduction_runs_correctly_in_parallel() {
    let (module, main) = helix::workloads::corpus::load("sum_reduction").expect("loads");
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let mut machine = Machine::new(&module);
    let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
    let plan = output
        .selected_plans()
        .into_iter()
        .filter(|p| p.func == main)
        .max_by_key(|p| profile.loop_profile((p.func, p.loop_id)).cycles)
        .expect("the reduction loop is selected");
    let transformed = transform::apply(&module, plan);
    helix::ir::verify_module(&transformed.module).expect("transformed module verifies");
    let got = ParallelExecutor::new(4)
        .run(&transformed, &[])
        .expect("parallel execution succeeds")
        .unwrap()
        .as_int();
    assert_eq!(expected, got, "parallel execution diverged");
}

#[test]
fn interprocedural_corpus_program_populates_the_nesting_graph() {
    let (module, main) = helix::workloads::corpus::load("nested_helper").expect("loads");
    let nesting = LoopNestingGraph::new(&module);
    assert!(
        nesting.len() >= 2,
        "caller and callee loops must both be candidates"
    );
    let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
    // The helper's inner loop must have executed under the outer loop.
    assert!(
        !profile.dynamic_edges.is_empty(),
        "the dynamic nesting graph must connect caller loop to callee loop"
    );
}
