//! End-to-end pipeline tests over the checked-in `.hir` corpus: every file enters through
//! the frontend and flows through profiling, HELIX analysis, timing simulation, and (for a
//! representative program) the transformation + real-thread parallel executor.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig};
use helix::ir::Machine;
use helix::profiler::profile_program;
use helix::runtime::ParallelExecutor;
use helix::simulator::{simulate_program, SimConfig};

#[test]
fn every_corpus_program_flows_through_the_whole_pipeline() {
    let programs = helix::workloads::load_corpus().expect("corpus loads");
    assert!(programs.len() >= 6);
    for (name, module, main) in programs {
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[])
            .unwrap_or_else(|e| panic!("{name} fails to profile: {e}"));
        assert!(profile.total_cycles > 0, "{name}: empty profile");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        assert!(
            !output.plans.is_empty(),
            "{name}: no candidate loops reached the analysis"
        );
        let sim = simulate_program(&output, &profile, &SimConfig::helix_6_cores());
        assert!(sim.speedup > 0.0, "{name}: nonsensical speedup");
        assert!(
            sim.speedup <= 6.0 + 1e-9,
            "{name}: speedup {} beyond the core count",
            sim.speedup
        );
    }
}

#[test]
fn corpus_wins_and_losses_match_their_design() {
    let speedup_of = |name: &str| {
        let (module, main) = helix::workloads::corpus::load(name).expect("loads");
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        simulate_program(&output, &profile, &SimConfig::helix_6_cores()).speedup
    };
    // The DOALL-heavy scenarios must profit from HELIX...
    assert!(speedup_of("sum_reduction") > 1.5);
    assert!(speedup_of("stencil") > 1.5);
    assert!(speedup_of("array_transform") > 1.2);
    // ...while the hostile irregular-branch scenario demonstrates the Figure 12
    // mis-selection phenomenon (documented in the corpus file itself).
    assert!(speedup_of("irregular_branch") < 1.0);
}

#[test]
fn transformed_corpus_reduction_runs_correctly_in_parallel() {
    let (module, main) = helix::workloads::corpus::load("sum_reduction").expect("loads");
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let mut machine = Machine::new(&module);
    let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
    let plan = output
        .selected_plans()
        .into_iter()
        .filter(|p| p.func == main)
        .max_by_key(|p| profile.loop_profile((p.func, p.loop_id)).cycles)
        .expect("the reduction loop is selected");
    let transformed = transform::apply(&module, plan);
    helix::ir::verify_module(&transformed.module).expect("transformed module verifies");
    let got = ParallelExecutor::new(4)
        .run(&transformed, &[])
        .expect("parallel execution succeeds")
        .unwrap()
        .as_int();
    assert_eq!(expected, got, "parallel execution diverged");
}

#[test]
fn interprocedural_corpus_program_populates_the_nesting_graph() {
    let (module, main) = helix::workloads::corpus::load("nested_helper").expect("loads");
    let nesting = LoopNestingGraph::new(&module);
    assert!(
        nesting.len() >= 2,
        "caller and callee loops must both be candidates"
    );
    let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
    // The helper's inner loop must have executed under the outer loop.
    assert!(
        !profile.dynamic_edges.is_empty(),
        "the dynamic nesting graph must connect caller loop to callee loop"
    );
}

/// A measured-like configuration: the shape `CalibrationProfile::helix_config` produces on
/// a host where a cross-thread signal costs a scheduler handoff (hundreds to thousands of
/// model cycles) and no helper-thread prefetching exists. Pinned to fixed numbers so the
/// test is machine-independent.
fn measured_like_config() -> HelixConfig {
    let mut config = HelixConfig::i7_980x()
        .without_helper_threads()
        .without_prefetch_balancing()
        .with_selection_latencies(1500, 30);
    config.signal_latency_unprefetched = 1500;
    config.signal_latency_prefetched = 30;
    config.word_transfer_latency = 1500;
    config.config_overhead = 4000;
    config
}

#[test]
fn nest_flip_selection_flips_between_paper_and_measured_costs() {
    let (module, main) = helix::workloads::corpus::load("nest_flip").expect("loads");
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("runs");

    let paper = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let measured_helix = Helix::new(measured_like_config());
    let measured = measured_helix.analyze(&module, &profile);

    // Paper-constant pricing keeps the hot signal-bound accumulator A; measured pricing
    // drops it (24576 signal pairs at a measured cross-thread latency drown its savings)
    // and keeps only the heavy-iteration loop B.
    assert!(!paper.selection.is_empty() && !measured.selection.is_empty());
    assert_ne!(
        paper.selection.selected, measured.selection.selected,
        "the witness must select differently under the two pricings"
    );
    assert!(
        measured
            .selection
            .selected
            .is_subset(&paper.selection.selected),
        "measured pricing must drop the signal-bound loop, not invent new ones"
    );
    // The loop that flipped off is the *hottest* paper-selected loop — the one the bench
    // would have parallelized under paper constants.
    let hottest_paper = *paper
        .selection
        .selected
        .iter()
        .max_by_key(|k| profile.loop_profile(**k).cycles)
        .unwrap();
    assert!(
        !measured.selection.is_selected(hottest_paper),
        "the hot signal-bound loop must flip off under measured pricing"
    );

    // The trace records the flips, and the feedback loop (re-pricing the candidate plans
    // from their lowered runtime images) agrees with the measured choice.
    let trace = helix::core::SelectionTrace::compare(&paper.selection, &measured.selection);
    assert!(!trace.flips().is_empty());
    let (fed_selection, fed_trace) = helix::simulator::feedback_selection(
        &module,
        &profile,
        &measured_helix,
        &paper,
        &helix::ir::CostModel::default(),
    );
    assert_eq!(fed_selection.selected, measured.selection.selected);
    assert!(!fed_trace.flips().is_empty());

    // Under measured costs the measured choice must simulate faster than the paper choice
    // — the whole point of recalibrating.
    let sim_config = helix::simulator::SimConfig {
        helix: measured_like_config(),
        mode: helix::core::PrefetchMode::None,
    };
    let with_paper_choice = helix::simulator::simulate_program_with_selection(
        &measured,
        &profile,
        &sim_config,
        Some(&paper.selection.selected),
    );
    let with_measured_choice = helix::simulator::simulate_program(&measured, &profile, &sim_config);
    assert!(
        with_measured_choice.speedup > with_paper_choice.speedup,
        "measured choice ({:.3}x) must beat the paper choice ({:.3}x) under measured costs",
        with_measured_choice.speedup,
        with_paper_choice.speedup
    );
}
