//! End-to-end tests of the fuzzing pipeline: generator → differential oracle → shrinker.
//!
//! The centerpiece is the injected-fault test: re-enabling the pre-PR-2 Step-6 merge bug
//! (union of merged Wait/Signal points) behind `HelixConfig::with_unsound_union_merge` must
//! make the oracle flag generated programs, and the shrinker must minimize such a program to
//! a tiny `.hir` repro that *still* exhibits the unsound placement — proving the whole
//! "every future soundness bug becomes a one-command minimized reproduction" story on a bug
//! we know was real.

use helix::core::HelixConfig;
use helix::gen::{
    compact_registers, differential_check, generate, shrink_module, signal_placement_violations,
    DivergenceKind, GenConfig, OracleConfig, ShrinkOptions,
};
use helix::ir::Module;

/// The deterministic detector for the injected fault: analysis under the unsound
/// configuration yields a synchronized segment that signals before one of its endpoints.
fn violates_under_unsound_merge(module: &Module) -> bool {
    let Some(main) = module.function_by_name("main") else {
        return false;
    };
    // Shrink candidates can contain accidental infinite loops (a simplified branch that
    // never exits); a cheap fueled pre-run rejects them before the unfueled profiler runs.
    let image = helix::ir::ExecImage::lower(module);
    let mut probe = helix::ir::ImageMachine::new(&image);
    probe.set_fuel(2_000_000);
    if probe.call(main, &[]).is_err() {
        return false;
    }
    let nesting = helix::analysis::LoopNestingGraph::new(module);
    let Ok(profile) = helix::profiler::profile_program_image(module, &nesting, main, &[]) else {
        return false;
    };
    let output = helix::core::Helix::new(HelixConfig::i7_980x().with_unsound_union_merge())
        .analyze(module, &profile);
    !signal_placement_violations(module, &output).is_empty()
}

#[test]
fn injected_fault_is_found_and_shrunk_to_a_small_repro() {
    let config = GenConfig::pointer_heavy();
    let oracle = OracleConfig {
        check_parallel: false, // the structural check is the deterministic detector
        helix: HelixConfig::i7_980x().with_unsound_union_merge(),
        ..OracleConfig::default()
    };

    // Find a seed the oracle flags. The sweep bound is generous: in practice roughly half
    // of all pointer-heavy seeds trip the injected fault.
    let mut found = None;
    for seed in 0..60 {
        let gp = generate(seed, &config);
        match differential_check(&gp.module, gp.main, &oracle) {
            Err(d) if d.kind == DivergenceKind::SignalPlacement => {
                found = Some((seed, gp));
                break;
            }
            Err(d) => panic!("seed {seed}: unexpected divergence under injection: {d}"),
            Ok(_) => {}
        }
    }
    let (seed, gp) = found.expect("some seed must trip the injected signal-merge fault");
    assert!(violates_under_unsound_merge(&gp.module));

    // Shrink while preserving the violation.
    let mut pred = |m: &Module| violates_under_unsound_merge(m);
    let outcome = shrink_module(&gp.module, "main", &mut pred, &ShrinkOptions::default());
    let mut repro = outcome.module;
    compact_registers(&mut repro);

    // The acceptance bar: an auto-shrunk repro of at most 30 instructions that still
    // diverges under the injected fault and is clean on the fixed pipeline.
    assert!(
        repro.instr_count() <= 30,
        "seed {seed}: shrunk repro still has {} instructions (from {})",
        repro.instr_count(),
        outcome.stats.instrs_before
    );
    assert!(
        repro.instr_count() < outcome.stats.instrs_before,
        "shrinking made no progress"
    );
    assert!(
        violates_under_unsound_merge(&repro),
        "the shrunk repro must still exhibit the unsound placement"
    );
    helix::ir::verify_module(&repro).expect("shrunk repro verifies");

    // On the *fixed* pipeline the same repro is divergence-free end to end (both engines,
    // profilers, structural check, parallel executor).
    let main = repro.function_by_name("main").expect("main survives");
    let report = differential_check(&repro, main, &OracleConfig::default())
        .unwrap_or_else(|d| panic!("shrunk repro diverges on the fixed pipeline: {d}"));
    assert!(!report.errored);

    // And it round-trips through the textual format, so checking it in as a .hir file is
    // faithful.
    let text = helix::ir::printer::format_module(&repro);
    let parsed = helix::frontend::parse_and_verify(&text).expect("repro re-parses");
    assert_eq!(parsed, repro);
}

#[test]
fn fuzz_seed_sweep_is_divergence_free_on_main() {
    // A compressed in-tree version of `helix fuzz`: a modest seed sweep through the full
    // oracle (both engines, profilers, round-trip, structural check, parallel executor at
    // two thread counts) must find nothing on the fixed pipeline.
    let config = GenConfig::fuzz();
    let oracle = OracleConfig {
        threads: vec![2, 4],
        repeats: 1,
        ..OracleConfig::default()
    };
    let mut parallel_runs = 0;
    for seed in 1..=30 {
        let gp = generate(seed, &config);
        let report = differential_check(&gp.module, gp.main, &oracle)
            .unwrap_or_else(|d| panic!("seed {seed} diverged: {d}\n{:?}", gp));
        parallel_runs += report.parallel_runs;
    }
    assert!(
        parallel_runs >= 30,
        "the sweep barely exercised the parallel executor ({parallel_runs} runs)"
    );
}

#[test]
fn oracle_runs_stay_deterministic_through_the_pooled_runtime() {
    // The oracle's parallel stage now routes through the persistent worker pool and the
    // lowered ParallelImage runtime. Re-running the *same* seeds back to back must produce
    // byte-identical reports: a stale lane counter, claim frontier or arena surviving one
    // `execute` into the next would surface here as a run-to-run difference.
    let config = GenConfig::fuzz();
    let oracle = OracleConfig {
        threads: vec![1, 2, 4],
        repeats: 1,
        ..OracleConfig::default()
    };
    for seed in [3, 7, 11, 19] {
        let gp = generate(seed, &config);
        let first = differential_check(&gp.module, gp.main, &oracle)
            .unwrap_or_else(|d| panic!("seed {seed} diverged: {d}"));
        for round in 0..3 {
            let again = differential_check(&gp.module, gp.main, &oracle)
                .unwrap_or_else(|d| panic!("seed {seed} round {round} diverged: {d}"));
            assert_eq!(again.result, first.result, "seed {seed} round {round}");
            assert_eq!(again.stats, first.stats, "seed {seed} round {round}");
            assert_eq!(
                again.parallel_runs, first.parallel_runs,
                "seed {seed} round {round}"
            );
        }
    }
}

#[test]
fn shrinker_minimizes_a_semantic_result_failure() {
    // Shrink against a *behavioural* predicate (not the structural one): the program's
    // checksum keeps a specific residue. This exercises the execution-oracle path the CLI
    // uses for engine/parallel divergences.
    let gp = generate(17, &GenConfig::fuzz());
    let run = |m: &Module| -> Option<i64> {
        let main = m.function_by_name("main")?;
        let image = helix::ir::ExecImage::lower(m);
        let mut machine = helix::ir::ImageMachine::new(&image);
        machine.set_fuel(2_000_000);
        machine.call(main, &[]).ok()?.map(|v| v.as_int())
    };
    let residue = run(&gp.module).expect("generated program runs") & 0xff;
    let mut pred = |m: &Module| run(m).map(|v| v & 0xff) == Some(residue);
    assert!(pred(&gp.module));
    let outcome = shrink_module(&gp.module, "main", &mut pred, &ShrinkOptions::default());
    assert!(pred(&outcome.module));
    assert!(
        outcome.stats.instrs_after < outcome.stats.instrs_before / 2,
        "expected substantial shrinkage, got {} -> {}",
        outcome.stats.instrs_before,
        outcome.stats.instrs_after
    );
}
