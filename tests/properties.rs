//! Property-based tests over randomly generated loops: the HELIX analyses and the
//! transformation must hold their invariants for arbitrary (well-formed) inputs, and the
//! transformed code must preserve sequential semantics.

use helix::analysis::{Cfg, DomTree, LoopForest, LoopNestingGraph, PointerAnalysis};
use helix::core::{transform, Helix, HelixConfig};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::{verify_module, BinOp, FuncId, Machine, Module, Operand};
use helix::profiler::profile_program;
use proptest::prelude::*;

/// Builds a randomized but well-formed single-loop program from a small parameter vector.
fn random_program(
    iterations: i64,
    work: usize,
    accumulators: usize,
    use_array: bool,
    rare_update_mask: i64,
) -> (Module, FuncId) {
    let mut mb = ModuleBuilder::new("prop");
    let arr = mb.add_global("arr", (iterations.max(4) as usize) + 4);
    let accs: Vec<_> = (0..accumulators.max(1))
        .map(|i| mb.add_global(format!("acc{i}"), 1))
        .collect();
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(iterations), 1);
    let mut v = fb.binary_to_new(BinOp::Mul, Operand::Var(lh.induction_var), Operand::int(7));
    for r in 0..work {
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(v), Operand::int(3 + r as i64));
        v = fb.binary_to_new(BinOp::Xor, Operand::Var(m), Operand::int(0x5bd1));
    }
    if use_array {
        let addr = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(lh.induction_var),
        );
        fb.store(Operand::Var(addr), 0, Operand::Var(v));
    }
    // Optionally rare accumulator updates guarded by a mask on the induction variable.
    let masked = fb.binary_to_new(
        BinOp::And,
        Operand::Var(lh.induction_var),
        Operand::int(rare_update_mask),
    );
    let do_update = fb.cmp_to_new(helix::ir::Pred::Eq, Operand::Var(masked), Operand::int(0));
    let update = fb.new_block();
    fb.cond_br(Operand::Var(do_update), update, lh.latch);
    fb.switch_to(update);
    for acc in &accs {
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(*acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(v));
        fb.store(Operand::Global(*acc), 0, Operand::Var(next));
    }
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    let out = fb.new_var();
    fb.load(out, Operand::Global(accs[0]), 0);
    fb.ret(Some(Operand::Var(out)));
    let main = mb.add_function(fb.finish());
    (mb.finish(), main)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_verify_and_analyses_hold_invariants(
        iterations in 1i64..64,
        work in 0usize..12,
        accumulators in 1usize..3,
        use_array in any::<bool>(),
        mask in prop::sample::select(vec![0i64, 1, 3, 7]),
    ) {
        let (module, main) = random_program(iterations, work, accumulators, use_array, mask);
        verify_module(&module).expect("generated module verifies");
        let function = module.function(main);
        let cfg = Cfg::new(function);
        let dom = DomTree::new(function, &cfg);
        // Dominator invariants: the entry dominates every reachable block.
        for block in function.block_ids() {
            if cfg.is_reachable(block) {
                prop_assert!(dom.dominates(function.entry, block));
            }
        }
        let forest = LoopForest::new(function, &cfg, &dom);
        // Loop invariants: headers are members of their loops; children are subsets of parents.
        for l in forest.iter() {
            prop_assert!(l.contains(l.header));
            if let Some(parent) = l.parent {
                let p = forest.get(parent);
                prop_assert!(l.blocks.iter().all(|b| p.contains(*b)));
            }
        }
        // Pointer analysis terminates and never returns an empty may-alias for identical
        // operands with the same offset.
        let pa = PointerAnalysis::new(&module);
        prop_assert!(pa.may_alias(main, Operand::Global(helix::ir::GlobalId::new(0)), 0,
                                  main, Operand::Global(helix::ir::GlobalId::new(0)), 0));
    }

    #[test]
    fn transformation_preserves_sequential_semantics(
        iterations in 1i64..48,
        work in 0usize..10,
        accumulators in 1usize..3,
        use_array in any::<bool>(),
        mask in prop::sample::select(vec![0i64, 1, 3]),
    ) {
        let (module, main) = random_program(iterations, work, accumulators, use_array, mask);
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).expect("runs");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let mut m = Machine::new(&module);
        let expected = m.call(main, &[]).unwrap().unwrap().as_int();
        // Whatever plans exist, materializing them must keep the module verifying and the
        // sequential result identical (Wait/Signal are sequential no-ops, demotion is sound).
        for plan in output.plans.values() {
            if plan.func != main { continue; }
            let t = transform::apply(&module, plan);
            verify_module(&t.module).expect("transformed module verifies");
            let mut m2 = Machine::new(&t.module);
            let got = m2.call(t.parallel_func, &[]).unwrap().unwrap().as_int();
            prop_assert_eq!(got, expected);
        }
    }
}
