//! Property-based tests over generated programs: the HELIX analyses and the transformation
//! must hold their invariants for arbitrary (well-formed) inputs, and the transformed code
//! must preserve sequential semantics.
//!
//! Inputs are drawn from `helix::gen` — the same seeded structured generator behind
//! `helix fuzz` — so the properties see nested loop hierarchies, pointer chasing, calls with
//! in-loop `ret`, reductions and irregular branching instead of a single hand-rolled loop
//! shape. On failure, the drawn program's `Debug` form *is* its canonical `.hir` text (plus
//! the generating seed), and the semantic property additionally shrinks the failing module
//! to a minimal repro before panicking.

use helix::analysis::{Cfg, DomTree, LoopForest, LoopNestingGraph, PointerAnalysis};
use helix::core::{transform, Helix, HelixConfig};
use helix::gen::strategy::{self, shrink_failure_text};
use helix::ir::{verify_module, Machine, Module, Operand};
use helix::profiler::profile_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_verify_and_analyses_hold_invariants(
        gp in strategy::small_programs(),
    ) {
        verify_module(&gp.module).expect("generated module verifies");
        for function in &gp.module.functions {
            let cfg = Cfg::new(function);
            let dom = DomTree::new(function, &cfg);
            // Dominator invariants: the entry dominates every reachable block.
            for block in function.block_ids() {
                if cfg.is_reachable(block) {
                    prop_assert!(dom.dominates(function.entry, block));
                }
            }
            let forest = LoopForest::new(function, &cfg, &dom);
            // Loop invariants: headers are members of their loops; children are subsets of
            // parents.
            for l in forest.iter() {
                prop_assert!(l.contains(l.header));
                if let Some(parent) = l.parent {
                    let p = forest.get(parent);
                    prop_assert!(l.blocks.iter().all(|b| p.contains(*b)));
                }
            }
        }
        // Pointer analysis terminates and never denies aliasing of identical operands.
        let pa = PointerAnalysis::new(&gp.module);
        prop_assert!(pa.may_alias(
            gp.main, Operand::Global(helix::ir::GlobalId::new(0)), 0,
            gp.main, Operand::Global(helix::ir::GlobalId::new(0)), 0,
        ));
    }

    #[test]
    fn transformation_preserves_sequential_semantics(
        gp in strategy::small_programs(),
    ) {
        let nesting = LoopNestingGraph::new(&gp.module);
        let profile = profile_program(&gp.module, &nesting, gp.main, &[]).expect("runs");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&gp.module, &profile);
        let mut m = Machine::new(&gp.module);
        let expected = m.call(gp.main, &[]).unwrap();
        // Whatever plans exist for the entry, materializing them must keep the module
        // verifying and the sequential result identical (Wait/Signal are sequential no-ops,
        // demotion is sound).
        for plan in output.plans.values() {
            if plan.func != gp.main { continue; }
            let t = transform::apply(&gp.module, plan);
            verify_module(&t.module).expect("transformed module verifies");
            let mut m2 = Machine::new(&t.module);
            let got = m2.call(t.parallel_func, &[]).unwrap();
            if got != expected {
                // Minimize before failing: the shrunk text is the actionable repro.
                let loop_id = plan.loop_id;
                let mut still_failing = |candidate: &Module| {
                    let Some(main) = candidate.function_by_name("main") else { return false };
                    let mut seq = Machine::new(candidate);
                    seq.set_fuel(2_000_000);
                    let Ok(want) = seq.call(main, &[]) else { return false };
                    let nesting = LoopNestingGraph::new(candidate);
                    let Ok(profile) = profile_program(candidate, &nesting, main, &[]) else {
                        return false;
                    };
                    let output = Helix::new(HelixConfig::i7_980x()).analyze(candidate, &profile);
                    let Some(plan) = output
                        .plans
                        .values()
                        .find(|p| p.func == main && p.loop_id == loop_id)
                    else {
                        return false;
                    };
                    let t = transform::apply(candidate, plan);
                    let mut par = Machine::new(&t.module);
                    par.set_fuel(2_000_000);
                    par.call(t.parallel_func, &[]).map(|v| v != want).unwrap_or(false)
                };
                let repro = shrink_failure_text(&gp.module, "main", &mut still_failing);
                prop_assert!(
                    false,
                    "seed {}: transformed loop {} computes {:?}, expected {:?}\n{}",
                    gp.seed, plan.loop_id, got, expected, repro
                );
            }
        }
    }
}
