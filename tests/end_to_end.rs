//! Cross-crate integration tests: the full HELIX flow from workload construction through
//! profiling, analysis, transformation, parallel execution and timing simulation.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig, PrefetchMode};
use helix::ir::{verify_module, Machine};
use helix::profiler::profile_program;
use helix::runtime::ParallelExecutor;
use helix::simulator::{simulate_program, SimConfig};

#[test]
fn every_benchmark_flows_through_the_whole_pipeline() {
    for bench in helix::workloads::all_benchmarks() {
        let (module, main) = bench.build();
        verify_module(&module).expect("workload verifies");
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).expect("workload runs");
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        assert!(
            !output.plans.is_empty(),
            "{}: no candidate loops",
            bench.name
        );
        let sim = simulate_program(&output, &profile, &SimConfig::helix_6_cores());
        assert!(sim.speedup > 0.0);
        assert!(
            sim.speedup <= 6.0 + 1e-9,
            "{}: speedup beyond core count",
            bench.name
        );
        // The transformation of every selected plan must produce a verifying module whose
        // sequential semantics are unchanged.
        for plan in output.selected_plans().into_iter().take(1) {
            let transformed = transform::apply(&module, plan);
            verify_module(&transformed.module).expect("transformed module verifies");
        }
    }
}

#[test]
fn transformed_art_loop_runs_correctly_in_parallel() {
    let bench = helix::workloads::all_benchmarks()[3];
    let (module, main) = bench.build();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("art runs");
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let mut machine = Machine::new(&module);
    let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
    let plan = output
        .selected_plans()
        .into_iter()
        .filter(|p| p.func == main)
        .max_by_key(|p| profile.loop_profile((p.func, p.loop_id)).cycles)
        .expect("art has a selected main-level loop");
    let transformed = transform::apply(&module, plan);
    let got = ParallelExecutor::new(4)
        .run(&transformed, &[])
        .expect("parallel execution")
        .unwrap()
        .as_int();
    assert_eq!(expected, got);
}

#[test]
fn headline_results_have_the_papers_shape() {
    // Figure 9's qualitative claims: art is the best benchmark, the geometric mean shows a
    // clear speedup on six cores, and more cores never hurt.
    let mut speedups = Vec::new();
    let mut art = 0.0;
    for bench in helix::workloads::all_benchmarks() {
        let (module, main) = bench.build();
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let s6 = simulate_program(&output, &profile, &SimConfig::helix_6_cores()).speedup;
        let s2 =
            simulate_program(&output, &profile, &SimConfig::helix_6_cores().with_cores(2)).speedup;
        assert!(s6 + 1e-9 >= s2, "{}: 6 cores slower than 2", bench.name);
        if bench.name == "art" {
            art = s6;
        }
        speedups.push(s6);
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!(geomean > 1.3, "geometric mean too low: {geomean:.2}");
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(
        art >= max - 0.3,
        "art should be at or near the top (art={art:.2}, max={max:.2})"
    );
}

#[test]
fn ablations_order_as_in_figure_10() {
    let bench = helix::workloads::all_benchmarks()[2]; // mesa
    let (module, main) = bench.build();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).unwrap();
    let speedup_for = |config: HelixConfig, mode: PrefetchMode| {
        let output = Helix::new(config).analyze(&module, &profile);
        simulate_program(
            &output,
            &profile,
            &SimConfig {
                helix: config,
                mode,
            },
        )
        .speedup
    };
    let full = speedup_for(HelixConfig::i7_980x(), PrefetchMode::Helix);
    let no_helpers = speedup_for(
        HelixConfig::i7_980x().without_helper_threads(),
        PrefetchMode::None,
    );
    let neither = speedup_for(
        HelixConfig::i7_980x()
            .without_helper_threads()
            .without_signal_minimization(),
        PrefetchMode::None,
    );
    assert!(full + 1e-9 >= no_helpers, "helper threads must not hurt");
    assert!(full + 1e-9 >= neither);
}
