//! Round-trip tests pinning the printer/parser symmetry: the text `helix_ir::printer` emits
//! is the canonical grammar, so `parse(print(m)) == m` must hold for every module the system
//! can produce — the full synthetic workload suite, the checked-in corpus, and randomized
//! builder output.

use helix::frontend::{parse_and_verify, parse_module};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::printer::format_module;
use helix::ir::{BinOp, DepId, Machine, Module, Operand, Pred, UnOp, Value};
use proptest::prelude::*;

#[test]
fn every_workload_round_trips_through_the_frontend() {
    for bench in helix::workloads::all_benchmarks() {
        let (module, _main) = bench.build();
        let printed = format_module(&module);
        let parsed = parse_and_verify(&printed)
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e}", bench.name));
        assert_eq!(module, parsed, "{}: parse(print(m)) != m", bench.name);
        assert_eq!(
            printed,
            format_module(&parsed),
            "{}: printing is not a fixpoint",
            bench.name
        );
    }
}

#[test]
fn every_corpus_file_round_trips_and_runs() {
    let programs = helix::workloads::load_corpus().expect("corpus loads");
    assert!(programs.len() >= 6, "corpus must hold at least 6 programs");
    for (name, module, main) in programs {
        // Canonical fixpoint: printing then re-parsing reproduces the module exactly.
        let printed = format_module(&module);
        let parsed = parse_and_verify(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form does not re-parse: {e}"));
        assert_eq!(module, parsed, "{name}: parse(print(m)) != m");
        // And the parsed copy still runs to the same checksum.
        let mut m1 = Machine::new(&module);
        m1.set_fuel(500_000_000);
        let mut m2 = Machine::new(&parsed);
        m2.set_fuel(500_000_000);
        let r1 = m1.call(main, &[]).unwrap();
        let r2 = m2.call(main, &[]).unwrap();
        assert_eq!(
            r1, r2,
            "{name}: reparsed module computes a different result"
        );
    }
}

#[test]
fn exotic_names_and_values_round_trip() {
    let mut mb = ModuleBuilder::new("weird name \"quoted\"");
    mb.add_global_init(
        "init\\escapes\n",
        6,
        vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(2.5),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(1e-300),
        ],
    );
    let mut fb = FunctionBuilder::new("0numeric name", 1);
    let p = fb.param(0);
    let f = fb.new_var();
    fb.const_float(f, -0.0);
    let u = fb.new_var();
    fb.unary(u, UnOp::ToFloat, Operand::Var(p));
    fb.ret(Some(Operand::Var(u)));
    mb.add_function(fb.finish());
    let module = mb.finish();
    let printed = format_module(&module);
    let parsed = parse_module(&printed).expect("exotic module parses");
    assert_eq!(module, parsed);
}

/// Builds a randomized module exercising every instruction kind the printer can emit.
fn random_module(
    functions: usize,
    blocks_per_fn: usize,
    instrs_per_block: usize,
    seed: u64,
) -> Module {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut mb = ModuleBuilder::new(format!("rand{seed}"));
    let g = mb.add_global("buf", 64);
    let g2 = mb.add_global_init("tab", 4, vec![Value::Int(7), Value::Float(0.5)]);
    // Declare all functions first so calls can target any of them.
    let ids: Vec<_> = (0..functions)
        .map(|i| mb.declare_function(format!("f{i}"), 1))
        .collect();
    for (fi, id) in ids.iter().enumerate() {
        let mut fb = FunctionBuilder::new(format!("f{fi}"), 1);
        let p = fb.param(0);
        let mut last = p;
        // A chain of blocks starting at the entry; each is terminated into the next.
        let mut blocks = vec![fb.current_block()];
        blocks.extend((1..blocks_per_fn).map(|_| fb.new_block()));
        for bi in 0..blocks.len() {
            fb.switch_to(blocks[bi]);
            for _ in 0..instrs_per_block {
                match next() % 12 {
                    0 => {
                        let d = fb.new_var();
                        fb.const_int(d, next() as i64);
                        last = d;
                    }
                    1 => {
                        let d = fb.new_var();
                        fb.const_float(d, (next() % 1000) as f64 / 8.0);
                        last = d;
                    }
                    2 => {
                        let ops = BinOp::ALL;
                        let op = ops[(next() % ops.len() as u64) as usize];
                        last = fb.binary_to_new(op, Operand::Var(last), Operand::int(3));
                    }
                    3 => {
                        let ops = UnOp::ALL;
                        let op = ops[(next() % ops.len() as u64) as usize];
                        let d = fb.new_var();
                        fb.unary(d, op, Operand::Var(last));
                        last = d;
                    }
                    4 => {
                        let preds = Pred::ALL;
                        let pr = preds[(next() % preds.len() as u64) as usize];
                        last = fb.cmp_to_new(pr, Operand::Var(last), Operand::int(5));
                    }
                    5 => {
                        let d = fb.new_var();
                        fb.select(d, Operand::Var(last), Operand::int(1), Operand::float(2.5));
                        last = d;
                    }
                    6 => {
                        let d = fb.new_var();
                        let off = (next() % 8) as i64 - 4;
                        fb.load(d, Operand::Global(g), off.max(0));
                        last = d;
                    }
                    7 => {
                        fb.store(Operand::Global(g), (next() % 32) as i64, Operand::Var(last));
                    }
                    8 => {
                        let d = fb.new_var();
                        fb.alloc(d, Operand::int(2));
                        last = d;
                    }
                    9 => {
                        let callee = ids[(next() % ids.len() as u64) as usize];
                        let d = fb.new_var();
                        fb.call(Some(d), callee, vec![Operand::Var(last)]);
                        last = d;
                    }
                    10 => {
                        fb.wait(DepId::new((next() % 3) as u32));
                        fb.signal(DepId::new((next() % 3) as u32));
                    }
                    _ => {
                        let d = fb.new_var();
                        fb.copy(d, Operand::Global(g2));
                        last = d;
                    }
                }
            }
            // Terminate: branch on to the next block, conditionally when possible.
            if bi + 1 < blocks.len() {
                if next() % 2 == 0 {
                    let c = fb.cmp_to_new(Pred::Gt, Operand::Var(last), Operand::int(0));
                    fb.cond_br(Operand::Var(c), blocks[bi + 1], blocks[bi + 1]);
                } else {
                    fb.br(blocks[bi + 1]);
                }
            } else if next() % 2 == 0 {
                fb.ret(Some(Operand::Var(last)));
            } else {
                fb.ret(None);
            }
        }
        mb.define_function(*id, fb.finish());
    }
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_builder_modules_round_trip(
        functions in 1usize..4,
        blocks in 1usize..5,
        instrs in 0usize..8,
        seed in 1u64..1_000_000,
    ) {
        let module = random_module(functions, blocks, instrs, seed);
        helix::ir::verify_module(&module).expect("random module verifies");
        let printed = format_module(&module);
        let parsed = parse_module(&printed).expect("printed module parses");
        prop_assert_eq!(&module, &parsed);
        // Printing is a fixpoint of parse∘print.
        prop_assert_eq!(printed, format_module(&parsed));
    }
}
