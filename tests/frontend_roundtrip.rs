//! Round-trip tests pinning the printer/parser symmetry: the text `helix_ir::printer` emits
//! is the canonical grammar, so `parse(print(m)) == m` must hold for every module the system
//! can produce — the full synthetic workload suite, the checked-in corpus, and programs
//! drawn from the `helix::gen` structured generator (the same one behind `helix fuzz`, with
//! sync noise enabled so `wait`/`signal` flow through the parser too).

use helix::frontend::{parse_and_verify, parse_module};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::printer::format_module;
use helix::ir::{DepId, Machine, Operand, UnOp, Value};
use proptest::prelude::*;

#[test]
fn every_workload_round_trips_through_the_frontend() {
    for bench in helix::workloads::all_benchmarks() {
        let (module, _main) = bench.build();
        let printed = format_module(&module);
        let parsed = parse_and_verify(&printed)
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e}", bench.name));
        assert_eq!(module, parsed, "{}: parse(print(m)) != m", bench.name);
        assert_eq!(
            printed,
            format_module(&parsed),
            "{}: printing is not a fixpoint",
            bench.name
        );
    }
}

#[test]
fn every_corpus_file_round_trips_and_runs() {
    let programs = helix::workloads::load_corpus().expect("corpus loads");
    assert!(programs.len() >= 6, "corpus must hold at least 6 programs");
    for (name, module, main) in programs {
        // Canonical fixpoint: printing then re-parsing reproduces the module exactly.
        let printed = format_module(&module);
        let parsed = parse_and_verify(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form does not re-parse: {e}"));
        assert_eq!(module, parsed, "{name}: parse(print(m)) != m");
        // And the parsed copy still runs to the same checksum.
        let mut m1 = Machine::new(&module);
        m1.set_fuel(500_000_000);
        let mut m2 = Machine::new(&parsed);
        m2.set_fuel(500_000_000);
        let r1 = m1.call(main, &[]).unwrap();
        let r2 = m2.call(main, &[]).unwrap();
        assert_eq!(
            r1, r2,
            "{name}: reparsed module computes a different result"
        );
    }
}

#[test]
fn exotic_names_and_values_round_trip() {
    let mut mb = ModuleBuilder::new("weird name \"quoted\"");
    mb.add_global_init(
        "init\\escapes\n",
        6,
        vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(2.5),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(1e-300),
        ],
    );
    let mut fb = FunctionBuilder::new("0numeric name", 1);
    let p = fb.param(0);
    let f = fb.new_var();
    fb.const_float(f, -0.0);
    let u = fb.new_var();
    fb.unary(u, UnOp::ToFloat, Operand::Var(p));
    fb.ret(Some(Operand::Var(u)));
    mb.add_function(fb.finish());
    let module = mb.finish();
    let printed = format_module(&module);
    let parsed = parse_module(&printed).expect("exotic module parses");
    assert_eq!(module, parsed);
}

/// One instruction kind the grammar must round-trip but the structured generator never
/// emits in the exact exotic combination below (select between a global base and a float
/// immediate, negative store offsets clamped away, unary chains on immediates).
#[test]
fn grammar_corner_instructions_round_trip() {
    let mut mb = ModuleBuilder::new("corners");
    let g = mb.add_global("buf", 8);
    let g2 = mb.add_global_init("tab", 4, vec![Value::Int(7), Value::Float(0.5)]);
    let mut fb = FunctionBuilder::new("f", 1);
    let p = fb.param(0);
    let s = fb.new_var();
    fb.select(s, Operand::Var(p), Operand::Global(g2), Operand::float(2.5));
    let u = fb.new_var();
    fb.unary(u, UnOp::Not, Operand::int(-1));
    let c = fb.new_var();
    fb.copy(c, Operand::Global(g));
    fb.store(Operand::Global(g), 7, Operand::Var(u));
    fb.wait(DepId::new(2));
    fb.signal(DepId::new(2));
    fb.ret(None);
    mb.add_function(fb.finish());
    let module = mb.finish();
    let printed = format_module(&module);
    let parsed = parse_module(&printed).expect("corner module parses");
    assert_eq!(module, parsed);
    assert_eq!(printed, format_module(&parsed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_modules_round_trip(
        gp in helix::gen::strategy::roundtrip_programs(),
    ) {
        // The roundtrip preset draws from the full shape mix — nested loops, pointer
        // chases, calls with in-loop ret, float reductions, allocs — plus balanced
        // wait/signal noise, so every mnemonic the printer can emit flows through the
        // parser here.
        helix::ir::verify_module(&gp.module).expect("generated module verifies");
        let printed = format_module(&gp.module);
        let parsed = parse_module(&printed).expect("printed module parses");
        prop_assert_eq!(&gp.module, &parsed);
        // Printing is a fixpoint of parse∘print.
        prop_assert_eq!(printed, format_module(&parsed));
    }

    #[test]
    fn generated_modules_reparse_to_the_same_behaviour(
        gp in helix::gen::strategy::small_programs(),
    ) {
        // Beyond structural equality: the re-parsed module must *execute* identically
        // (same result, same instruction count), pinning printer/parser agreement on
        // value semantics, not just shape.
        let printed = format_module(&gp.module);
        let parsed = helix::frontend::parse_and_verify(&printed).expect("parses and verifies");
        let mut m1 = Machine::new(&gp.module);
        m1.set_fuel(20_000_000);
        let mut m2 = Machine::new(&parsed);
        m2.set_fuel(20_000_000);
        let main2 = parsed.function_by_name("main").expect("main survives");
        prop_assert_eq!(m1.call(gp.main, &[]).unwrap(), m2.call(main2, &[]).unwrap());
        prop_assert_eq!(m1.stats(), m2.stats());
    }
}
