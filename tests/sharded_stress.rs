//! Concurrency stress tests for [`helix::runtime::ShardedMemory`].
//!
//! The parallel executor funnels every load, store and allocation of every worker through
//! the sharded memory, so its guarantees are load-bearing for HELIX soundness: the CAS bump
//! allocator must never hand out overlapping blocks, striped locks must never lose a write,
//! and `snapshot` must reproduce exactly what a sequential [`Memory`] would contain after
//! the same (order-independent) writes. These tests hammer those properties with many
//! threads on deliberately contended address patterns.

use helix::ir::{Memory, Module, Value};
use helix::runtime::ShardedMemory;
use std::sync::Arc;

const THREADS: i64 = 8;
const ALLOCS_PER_THREAD: i64 = 200;
const BLOCK_WORDS: i64 = 5;

/// A deterministic per-thread value pattern: recoverable from the address alone.
fn pattern(thread: i64, k: i64) -> Value {
    Value::Int(thread * 1_000_000 + k)
}

#[test]
fn concurrent_allocs_and_stores_match_a_sequential_replay() {
    // Globals region seeded from a real module snapshot, as the executor does.
    let mut module = Module::new("stress");
    module.add_global_init("table", 64, vec![Value::Int(7), Value::Float(2.5)]);
    let template = Memory::for_module(&module);
    let sharded = Arc::new(ShardedMemory::from_memory(&template));

    // Each thread bump-allocates private blocks and fills them with its pattern, while also
    // writing a striped slice of the globals region (addresses ≡ thread mod THREADS) so
    // neighbouring threads keep hitting the same shard locks with disjoint words.
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let sharded = Arc::clone(&sharded);
        handles.push(std::thread::spawn(move || {
            let mut blocks = Vec::new();
            for k in 0..ALLOCS_PER_THREAD {
                let base = sharded.alloc(BLOCK_WORDS as usize).expect("alloc");
                for w in 0..BLOCK_WORDS {
                    sharded
                        .store(base + w, pattern(t, k * BLOCK_WORDS + w))
                        .expect("store in range");
                }
                // Immediate read-back: the thread must observe its own writes.
                for w in 0..BLOCK_WORDS {
                    assert_eq!(
                        sharded.load(base + w).unwrap(),
                        pattern(t, k * BLOCK_WORDS + w)
                    );
                }
                blocks.push(base);
            }
            for g in (3 + t..65).step_by(THREADS as usize) {
                sharded.store(g, pattern(t, g)).expect("global in range");
            }
            blocks
        }));
    }
    let per_thread_blocks: Vec<Vec<i64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The bump allocator must hand out disjoint, exactly-sized blocks.
    let mut all_blocks: Vec<i64> = per_thread_blocks.iter().flatten().copied().collect();
    all_blocks.sort_unstable();
    let total_blocks = (THREADS * ALLOCS_PER_THREAD) as usize;
    assert_eq!(all_blocks.len(), total_blocks);
    for pair in all_blocks.windows(2) {
        assert!(
            pair[1] - pair[0] >= BLOCK_WORDS,
            "blocks at {} and {} overlap",
            pair[0],
            pair[1]
        );
    }
    assert_eq!(
        sharded.heap_used(),
        (THREADS * ALLOCS_PER_THREAD * BLOCK_WORDS) as usize,
        "heap bookkeeping must equal the sum of allocations"
    );

    // Sequential replay: build the expected flat memory from the recorded blocks. Allocation
    // *order* is nondeterministic, but content is addressed by base, so a single bulk alloc
    // plus the recorded stores reproduces the exact final state.
    let mut expected = template.clone();
    expected
        .alloc((THREADS * ALLOCS_PER_THREAD * BLOCK_WORDS) as usize)
        .expect("bulk alloc fits");
    for (t, blocks) in per_thread_blocks.iter().enumerate() {
        for (k, base) in blocks.iter().enumerate() {
            for w in 0..BLOCK_WORDS {
                expected
                    .store(base + w, pattern(t as i64, k as i64 * BLOCK_WORDS + w))
                    .unwrap();
            }
        }
        for g in (3 + t as i64..65).step_by(THREADS as usize) {
            expected.store(g, pattern(t as i64, g)).unwrap();
        }
    }
    let snapshot = sharded.snapshot(&template);
    assert_eq!(
        snapshot, expected,
        "snapshot must equal the sequential replay"
    );
    // Untouched globals survive the stampede.
    assert_eq!(snapshot.load(1).unwrap(), Value::Int(7));
    assert_eq!(snapshot.load(2).unwrap(), Value::Float(2.5));
}

#[test]
fn contended_single_word_updates_never_lose_a_lock_protected_increment() {
    // All threads increment the same word under the shard lock discipline the executor's
    // Wait/Signal protocol provides (here simulated with a mutex, since ShardedMemory's
    // loads/stores are individually atomic but read-modify-write needs external ordering).
    // This pins the weaker property that no *store* is ever lost: each thread owns a
    // distinct bit and ORs it in repeatedly; the final word must contain every bit.
    let template = Memory::new();
    let sharded = Arc::new(ShardedMemory::from_memory(&template));
    let target = 1i64; // everyone hits the same shard and the same word
    sharded.store(target, Value::Int(0)).unwrap();
    let lock = Arc::new(std::sync::Mutex::new(()));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sharded = &sharded;
            let lock = Arc::clone(&lock);
            scope.spawn(move || {
                for _ in 0..2000 {
                    let _guard = lock.lock().unwrap();
                    let cur = sharded.load(target).unwrap().as_int();
                    sharded.store(target, Value::Int(cur | (1 << t))).unwrap();
                }
            });
        }
    });
    let got = sharded.load(target).unwrap().as_int();
    assert_eq!(got, (1 << THREADS) - 1, "a bit went missing: {got:b}");
}

#[test]
fn mixed_alloc_and_striped_store_traffic_is_linearizable_per_word() {
    // Interleave allocation stampedes with striped writes where each address is written by
    // exactly one thread but neighbouring addresses belong to different threads (maximum
    // false-sharing pressure on the chunk locks). Every word must end with its writer's
    // final value.
    let template = Memory::new();
    let sharded = Arc::new(ShardedMemory::from_memory(&template));
    let region_base = 1i64;
    let region_words = 4096i64;
    // Reserve the striped region via the allocator itself so stores are within the
    // allocated prefix and survive snapshotting.
    let base = sharded.alloc(region_words as usize).unwrap();
    assert_eq!(base, region_base);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sharded = &sharded;
            scope.spawn(move || {
                for round in 0..4 {
                    for addr in
                        (region_base + t..region_base + region_words).step_by(THREADS as usize)
                    {
                        sharded.store(addr, Value::Int(addr * 10 + round)).unwrap();
                    }
                    // Interleave some allocator pressure.
                    let scratch = sharded.alloc(3).unwrap();
                    sharded.store(scratch, Value::Int(t)).unwrap();
                }
            });
        }
    });
    for addr in region_base..region_base + region_words {
        assert_eq!(
            sharded.load(addr).unwrap(),
            Value::Int(addr * 10 + 3),
            "word {addr} lost its final round"
        );
    }
    let snap = sharded.snapshot(&template);
    for addr in region_base..region_base + region_words {
        assert_eq!(snap.load(addr).unwrap(), Value::Int(addr * 10 + 3));
    }
}
