//! Concurrency stress tests for the new parallel-image runtime: padded signal lanes under
//! many threads, and pooled-runtime determinism across consecutive `execute` calls.
//!
//! The [`helix::runtime::SignalLanes`] test mirrors `sharded_stress.rs`'s style: it hammers
//! *one* dependence from N threads across a 10k-iteration window, with every iteration's
//! critical section writing an unprotected shared cell. If the lane protocol (windowed
//! `fetch_max` cells + the in-flight completion gate) ever let iteration `i` pass its `Wait`
//! before iteration `i-1`'s `Signal`, the cell updates would race and the final tally would
//! be wrong with overwhelming probability.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig, TransformedProgram};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::{BinOp, Machine, Operand};
use helix::profiler::profile_program_image;
use helix::runtime::{ParallelExecutor, ParallelImage, SignalLanes, WaitProfile, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ITERATIONS: u64 = 10_000;
const THREADS: usize = 6;

/// One shared, deliberately unsynchronized cell: only the lane protocol orders access.
struct RacyCell(std::cell::UnsafeCell<u64>);
// SAFETY: the test's lane protocol serializes all access (that is the property under test;
// a protocol bug shows up as a corrupted tally, not as UB the test relies on).
unsafe impl Sync for RacyCell {}

#[test]
fn one_dependence_hammered_from_many_threads_across_a_10k_window() {
    // Window sized like the executor sizes it for THREADS workers.
    let window = (THREADS * 2).next_power_of_two().max(8);
    let lanes = Arc::new(SignalLanes::new(1, window));
    let next = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let cell = Arc::new(RacyCell(std::cell::UnsafeCell::new(0)));

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (lanes, next, done, cell) = (
                Arc::clone(&lanes),
                Arc::clone(&next),
                Arc::clone(&done),
                Arc::clone(&cell),
            );
            scope.spawn(move || loop {
                // Claim the next iteration, bounded by the in-flight window (the same gate
                // the executor's completion ring provides).
                let i = next.load(Ordering::Acquire);
                if i >= ITERATIONS {
                    return;
                }
                if done.load(Ordering::Acquire) + window as u64 <= i {
                    std::hint::spin_loop();
                    continue;
                }
                if next
                    .compare_exchange(i, i + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Wait for the predecessor iteration's signal on the single dependence.
                while !lanes.poll(0, i) {
                    std::hint::spin_loop();
                }
                // The protected critical section: must be perfectly serialized in
                // iteration order by the lane protocol alone.
                unsafe {
                    let p = cell.0.get();
                    let seen = *p;
                    assert_eq!(seen, i, "iteration {i} entered before {seen} finished");
                    *p = i + 1;
                }
                lanes.signal(0, i);
                done.fetch_add(1, Ordering::AcqRel);
            });
        }
    });
    assert_eq!(next.load(Ordering::Relaxed), ITERATIONS);
    assert_eq!(unsafe { *cell.0.get() }, ITERATIONS);
    assert!(lanes.poll(0, ITERATIONS), "final signal published");
}

/// Builds an accumulator program whose loop carries a synchronized dependence.
fn accumulator(n: i64) -> (helix::ir::Module, helix::ir::FuncId, TransformedProgram) {
    let mut mb = ModuleBuilder::new("m");
    let acc = mb.add_global("acc", 1);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
    let mixed = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(lh.induction_var),
        Operand::int(2654435761),
    );
    let x = fb.binary_to_new(BinOp::Xor, Operand::Var(mixed), Operand::int(0x9e37));
    let cur = fb.new_var();
    fb.load(cur, Operand::Global(acc), 0);
    let nextv = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(x));
    fb.store(Operand::Global(acc), 0, Operand::Var(nextv));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    let out = fb.new_var();
    fb.load(out, Operand::Global(acc), 0);
    fb.ret(Some(Operand::Var(out)));
    let main = mb.add_function(fb.finish());
    let module = mb.finish();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let plan = output
        .plans
        .values()
        .find(|p| p.synchronized_segments() > 0)
        .expect("synchronized plan")
        .clone();
    let transformed = transform::apply(&module, &plan);
    (module, main, transformed)
}

#[test]
fn pooled_runtime_stays_deterministic_across_consecutive_executes() {
    let (module, main, transformed) = accumulator(512);
    let mut machine = Machine::new(&module);
    let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
    let pimg = ParallelImage::lower(&transformed);
    // The dedicated profile forces the full multi-worker claim protocol (on this machine the
    // adaptive profile may run the loop solo), and the process-global pool is reused across
    // every call — the regression this guards is a stale counter or lane leaking from one
    // execute into the next.
    let executor = ParallelExecutor::new(4).with_wait_profile(WaitProfile::DEDICATED);
    let first = executor
        .run_parallel(&pimg, &[])
        .expect("first pooled run")
        .unwrap()
        .as_int();
    assert_eq!(first, expected);
    let helpers_after_first = WorkerPool::global().spawned_helpers();
    assert!(
        helpers_after_first >= 3,
        "the pooled run must have spawned persistent helpers"
    );
    for round in 0..5 {
        let got = executor
            .run_parallel(&pimg, &[])
            .unwrap_or_else(|e| panic!("round {round}: {e}"))
            .unwrap()
            .as_int();
        assert_eq!(got, expected, "round {round} diverged");
    }
    assert_eq!(
        WorkerPool::global().spawned_helpers(),
        helpers_after_first,
        "helpers are reused across executes, never respawned"
    );
}

#[test]
fn oversubscribed_and_dedicated_profiles_agree() {
    // The solo fast path (oversubscribed) and the full claim protocol (dedicated) must be
    // observationally identical.
    let (_module, _main, transformed) = accumulator(384);
    let pimg = ParallelImage::lower(&transformed);
    let dedicated = ParallelExecutor::new(4)
        .with_wait_profile(WaitProfile::DEDICATED)
        .run_parallel(&pimg, &[])
        .unwrap();
    let oversubscribed = ParallelExecutor::new(4)
        .with_wait_profile(WaitProfile::OVERSUBSCRIBED)
        .run_parallel(&pimg, &[])
        .unwrap();
    assert_eq!(dedicated, oversubscribed);
}
