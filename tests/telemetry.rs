//! Runtime-telemetry validation under the forced `DEDICATED` wait profile.
//!
//! Telemetry must be an *observer*: enabling it cannot change results, and the event
//! streams it produces must be structurally well-formed — every worker's `WaitBegin`/
//! `WaitEnd` events balance, and under full tracing with no ring drops the recorded
//! iteration claims across all workers form a contiguous permutation (no iteration runs
//! twice, none is skipped). The fuzz-oracle test drives generated programs through the
//! whole stack with telemetry on and demands zero divergences at 1/2/4/6 threads.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig, TransformedProgram};
use helix::gen::{differential_check, generate, telemetry_violations, GenConfig, OracleConfig};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::{BinOp, Machine, Operand};
use helix::profiler::profile_program_image;
use helix::runtime::{DispatchTier, EventKind, ParallelExecutor, TelemetryMode, WaitProfile};

/// Builds an accumulator whose loop carries a synchronized dependence (same shape as
/// `parallel_stress.rs`): every iteration loads, mixes and stores one global cell.
fn accumulator(n: i64) -> (helix::ir::Module, helix::ir::FuncId, TransformedProgram) {
    let mut mb = ModuleBuilder::new("m");
    let acc = mb.add_global("acc", 1);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
    let mixed = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(lh.induction_var),
        Operand::int(2654435761),
    );
    let x = fb.binary_to_new(BinOp::Xor, Operand::Var(mixed), Operand::int(0x9e37));
    let cur = fb.new_var();
    fb.load(cur, Operand::Global(acc), 0);
    let nextv = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(x));
    fb.store(Operand::Global(acc), 0, Operand::Var(nextv));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    let out = fb.new_var();
    fb.load(out, Operand::Global(acc), 0);
    fb.ret(Some(Operand::Var(out)));
    let main = mb.add_function(fb.finish());
    let module = mb.finish();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    let plan = output
        .plans
        .values()
        .find(|p| p.synchronized_segments() > 0)
        .expect("synchronized plan")
        .clone();
    let transformed = transform::apply(&module, &plan);
    (module, main, transformed)
}

#[test]
fn full_traces_are_well_formed_at_every_thread_count() {
    // Small enough that every worker's event ring stays lossless, so the structural
    // checks (balanced waits, claim permutation) apply with full force.
    let (module, main, transformed) = accumulator(256);
    let mut seq = Machine::new(&module);
    let expected = seq.call(main, &[]).unwrap();

    for threads in [1usize, 2, 4, 6] {
        let executor = ParallelExecutor::new(threads)
            .with_wait_profile(WaitProfile::DEDICATED)
            .with_telemetry(TelemetryMode::Full);
        let (run, report) = executor.run_traced(&transformed, &[]);
        let got = run.unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        assert_eq!(got, expected, "telemetry changed the result at {threads}t");
        let report = report.expect("telemetry enabled, report expected");
        assert_eq!(report.workers.len(), executor.effective_workers());

        for w in &report.workers {
            assert_eq!(
                w.events_dropped, 0,
                "{threads}t worker {}: 256 iterations must fit the ring",
                w.worker
            );
        }
        let violations = telemetry_violations(&report);
        assert!(
            violations.is_empty(),
            "{threads}t: malformed stream: {violations:?}"
        );

        // The claim permutation, asserted directly: every loop iteration 0..n appears
        // exactly once across all workers (the executor may legally claim a few
        // iterations past the exit; those cancel and never run).
        let mut claims: Vec<u64> = report
            .workers
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| e.kind == EventKind::Claim)
            .map(|e| e.iteration)
            .collect();
        claims.sort_unstable();
        claims.dedup();
        let n = report.total_iterations();
        assert!(n >= 256, "{threads}t: {n} iterations ran, expected >= 256");
        assert!(
            claims.len() as u64 >= n,
            "{threads}t: {} distinct claims for {n} iterations",
            claims.len()
        );
        for (ix, &it) in claims.iter().enumerate() {
            assert_eq!(it, ix as u64, "{threads}t: claim stream has a hole");
        }
    }
}

#[test]
fn dispatch_tiers_produce_identical_telemetry() {
    // Telemetry must be dispatch-tier-agnostic: the direct-threaded engine drives the
    // exact same hooks as the switch interpreter. Under the forced DEDICATED profile the
    // structural invariants (balanced waits, claim permutation) must hold in both tiers,
    // and with one worker — where the schedule is deterministic — the counters must be
    // *identical*, not merely well-formed.
    let (module, main, transformed) = accumulator(256);
    let mut seq = Machine::new(&module);
    let expected = seq.call(main, &[]).unwrap();

    for threads in [1usize, 2, 4] {
        let run_with = |tier: DispatchTier| {
            let executor = ParallelExecutor::new(threads)
                .with_wait_profile(WaitProfile::DEDICATED)
                .with_telemetry(TelemetryMode::Full)
                .with_dispatch_tier(tier);
            let (run, report) = executor.run_traced(&transformed, &[]);
            let got = run.unwrap_or_else(|e| panic!("{threads}t/{tier}: {e}"));
            assert_eq!(
                got, expected,
                "{tier} tier changed the result at {threads}t"
            );
            report.expect("telemetry enabled, report expected")
        };
        let switch = run_with(DispatchTier::Switch);
        let threaded = run_with(DispatchTier::Threaded);

        for (tier, report) in [("switch", &switch), ("threaded", &threaded)] {
            let violations = telemetry_violations(report);
            assert!(
                violations.is_empty(),
                "{threads}t/{tier}: unbalanced or malformed stream: {violations:?}"
            );
            assert!(
                report.total_iterations() >= 256,
                "{threads}t/{tier}: only {} iterations recorded",
                report.total_iterations()
            );
        }

        if threads == 1 {
            // Single worker, in-order schedule: every counter the tiers produce must
            // match exactly — claims, executed bodies, sampled bodies, recorded events.
            let totals = |r: &helix::runtime::TelemetryReport| {
                let w = &r.workers[0];
                (
                    w.counters.claims,
                    w.counters.iterations,
                    w.counters.sampled_iterations,
                    w.events.len(),
                    w.events_dropped,
                )
            };
            assert_eq!(
                totals(&switch),
                totals(&threaded),
                "1t: tiers disagree on deterministic counters"
            );
            // And the event streams agree kind-for-kind and iteration-for-iteration
            // (timestamps naturally differ).
            let kinds = |r: &helix::runtime::TelemetryReport| {
                r.workers[0]
                    .events
                    .iter()
                    .map(|e| (e.kind, e.iteration))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                kinds(&switch),
                kinds(&threaded),
                "1t: event streams diverge"
            );
        }
    }
}

#[test]
fn sampled_mode_keeps_counters_exact_with_fewer_events() {
    let (_module, _main, transformed) = accumulator(512);
    let run_with = |mode: TelemetryMode| {
        let executor = ParallelExecutor::new(4)
            .with_wait_profile(WaitProfile::DEDICATED)
            .with_telemetry(mode);
        let (run, report) = executor.run_traced(&transformed, &[]);
        run.unwrap();
        report.expect("report")
    };
    let full = run_with(TelemetryMode::Full);
    let sampled = run_with(TelemetryMode::Sampled(64));

    // Counters are exact in both modes: every iteration is counted whether or not its
    // events were sampled.
    assert_eq!(full.total_iterations(), sampled.total_iterations());
    let total = |r: &helix::runtime::TelemetryReport| {
        r.workers.iter().map(|w| w.counters.claims).sum::<u64>()
    };
    assert_eq!(total(&full), total(&sampled));

    // Sampling records strictly fewer events, and stays structurally sound.
    let events = |r: &helix::runtime::TelemetryReport| {
        r.workers
            .iter()
            .map(|w| w.events.len() as u64 + w.events_dropped)
            .sum::<u64>()
    };
    assert!(
        events(&sampled) < events(&full),
        "sampled({}) vs full({})",
        events(&sampled),
        events(&full)
    );
    let violations = telemetry_violations(&sampled);
    assert!(
        violations.is_empty(),
        "sampled stream malformed: {violations:?}"
    );
}

#[test]
fn disabled_telemetry_produces_no_report() {
    let (_module, _main, transformed) = accumulator(64);
    let executor = ParallelExecutor::new(2).with_wait_profile(WaitProfile::DEDICATED);
    let (run, report) = executor.run_traced(&transformed, &[]);
    run.unwrap();
    assert!(report.is_none(), "disabled telemetry must not aggregate");
}

#[test]
fn oracle_with_telemetry_sees_zero_divergences_across_thread_counts() {
    // Satellite check: enabling telemetry inside the differential oracle (which pins the
    // DEDICATED wait profile) must cause 0 divergences over a seed sweep at 1/2/4/6
    // threads — and the oracle now also validates each traced run's event streams.
    let gen_config = GenConfig::fuzz();
    let oracle = OracleConfig {
        threads: vec![1, 2, 4, 6],
        repeats: 1,
        helix: HelixConfig::i7_980x()
            .with_spin_budget(20_000_000)
            .with_telemetry_sampling(1),
        ..OracleConfig::default()
    };
    let mut exercised = 0;
    for seed in 0..10 {
        let gp = generate(seed, &gen_config);
        let report = differential_check(&gp.module, gp.main, &oracle)
            .unwrap_or_else(|d| panic!("seed {seed} diverged under telemetry: {d}"));
        if !report.parallel_skipped {
            exercised += 1;
        }
    }
    assert!(
        exercised > 0,
        "the sweep should exercise the traced parallel stage at least once"
    );
}
