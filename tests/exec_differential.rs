//! Differential tests between the two execution engines.
//!
//! The flat-bytecode engine (`helix_ir::exec` over a lowered `ExecImage`) must be
//! observationally identical to the reference tree-walking interpreter (`helix_ir::interp`):
//! same return values, same [`ExecStats`] (instruction counts, cycles, loads/stores/calls,
//! block counts), same final memory state, and — because the analysis pipeline consumes
//! profiles — the same [`ProgramProfile`] when both engines run under their profilers.
//!
//! Every checked-in corpus program and every synthetic workload kernel goes through both
//! engines here; any divergence is a lowering or dispatch bug.

use helix::analysis::LoopNestingGraph;
use helix::ir::{ExecImage, ExecStats, ImageMachine, Machine, Memory, Module, Value};
use helix::profiler::{profile_program, profile_program_image};

/// Runs `main` on both engines and asserts identical observable behaviour; returns both
/// engines' outcomes for further checks.
fn assert_engines_agree(
    name: &str,
    module: &Module,
    main: helix::ir::FuncId,
    args: &[Value],
) -> (Option<Value>, ExecStats) {
    let image = ExecImage::lower(module);
    let mut tree = Machine::new(module);
    let mut flat = ImageMachine::new(&image);
    let tree_result = tree
        .call(main, args)
        .unwrap_or_else(|e| panic!("{name}: tree-walk engine failed: {e}"));
    let flat_result = flat
        .call(main, args)
        .unwrap_or_else(|e| panic!("{name}: bytecode engine failed: {e}"));
    assert_eq!(tree_result, flat_result, "{name}: return values differ");
    assert_eq!(tree.stats(), flat.stats(), "{name}: ExecStats differ");
    let tree_memory: &Memory = tree.memory();
    assert_eq!(tree_memory, flat.memory(), "{name}: final memory differs");
    (flat_result, flat.stats())
}

#[test]
fn every_corpus_program_is_identical_on_both_engines() {
    let programs = helix::workloads::load_corpus().expect("corpus loads");
    assert!(programs.len() >= 6, "corpus went missing");
    for (name, module, main) in &programs {
        let (result, stats) = assert_engines_agree(name, module, *main, &[]);
        assert!(result.is_some(), "{name}: corpus programs return a value");
        assert!(stats.instrs > 0, "{name}: nothing executed");
    }
}

#[test]
fn every_workload_kernel_is_identical_on_both_engines() {
    for bench in helix::workloads::all_benchmarks() {
        let (module, main) = bench.build();
        let (result, stats) = assert_engines_agree(bench.name, &module, main, &[]);
        assert!(
            result.is_some(),
            "{}: workloads return a checksum",
            bench.name
        );
        assert!(stats.blocks > 0);
    }
}

#[test]
fn corpus_profiles_are_identical_on_both_engines() {
    for (name, module, main) in helix::workloads::load_corpus().expect("corpus loads") {
        let nesting = LoopNestingGraph::new(&module);
        let tree = profile_program(&module, &nesting, main, &[])
            .unwrap_or_else(|e| panic!("{name}: tree profiler failed: {e}"));
        let flat = profile_program_image(&module, &nesting, main, &[])
            .unwrap_or_else(|e| panic!("{name}: image profiler failed: {e}"));
        assert_eq!(tree, flat, "{name}: profiles differ between engines");
    }
}

#[test]
fn workload_profiles_are_identical_on_both_engines() {
    for bench in helix::workloads::all_benchmarks() {
        let (module, main) = bench.build();
        let nesting = LoopNestingGraph::new(&module);
        let tree = profile_program(&module, &nesting, main, &[]).unwrap();
        let flat = profile_program_image(&module, &nesting, main, &[]).unwrap();
        assert_eq!(tree, flat, "{}: profiles differ", bench.name);
    }
}

#[test]
fn fuel_exhaustion_points_are_identical() {
    // Truncated runs must stop at exactly the same dynamic instruction on both engines.
    let (module, main) = helix::workloads::all_benchmarks()[0].build();
    let image = ExecImage::lower(&module);
    for fuel in [0u64, 1, 100, 10_000] {
        let mut tree = Machine::new(&module);
        tree.set_fuel(fuel);
        let mut flat = ImageMachine::new(&image);
        flat.set_fuel(fuel);
        assert_eq!(
            tree.call(main, &[]),
            flat.call(main, &[]),
            "fuel {fuel}: outcomes differ"
        );
        assert_eq!(tree.stats(), flat.stats(), "fuel {fuel}: stats differ");
        assert_eq!(tree.memory(), flat.memory(), "fuel {fuel}: memory differs");
    }
}

#[test]
fn regression_repros_converge_on_main_and_still_exercise_the_merge_path() {
    // The auto-shrunk repros under corpus/regressions/ pin the PR 2 Step-6 signal-merge
    // soundness bug. On the fixed pipeline they must (a) agree between both engines,
    // (b) produce the sequential result on real threads at every thread count, and
    // (c) still trip the structural signal-placement check when the pre-fix behaviour is
    // re-injected — if a refactor ever makes a repro stop exercising the merge path, this
    // fails and the repro must be regenerated with `helix fuzz --inject-fault`.
    use helix::core::HelixConfig;
    use helix::gen::{differential_check, signal_placement_violations, OracleConfig};
    use helix::profiler::profile_program_image;

    let repros = helix::workloads::load_regressions().expect("regressions load");
    assert!(
        repros.len() >= 2,
        "expected at least two checked-in regression repros, found {}",
        repros.len()
    );
    for (name, module, main) in &repros {
        // (a) + (b): the full differential oracle on the production configuration.
        let report = differential_check(module, *main, &OracleConfig::default())
            .unwrap_or_else(|d| panic!("{name}: diverges on the fixed pipeline: {d}"));
        assert!(!report.errored, "{name}: repros must run to completion");
        assert!(
            !report.parallel_skipped,
            "{name}: repros must exercise the parallel executor"
        );
        // (c): the injected fault must still produce the unsound placement.
        let nesting = helix::analysis::LoopNestingGraph::new(module);
        let profile = profile_program_image(module, &nesting, *main, &[]).expect("profiles");
        let unsound = helix::core::Helix::new(HelixConfig::i7_980x().with_unsound_union_merge())
            .analyze(module, &profile);
        assert!(
            !signal_placement_violations(module, &unsound).is_empty(),
            "{name}: no longer exercises the signal-merge path; regenerate it"
        );
        // And the fixed pipeline must place every signal after its endpoints.
        let sound = helix::core::Helix::new(HelixConfig::i7_980x()).analyze(module, &profile);
        assert!(
            signal_placement_violations(module, &sound).is_empty(),
            "{name}: the fixed pipeline itself violates signal placement"
        );
    }
}

#[test]
fn parallel_execution_matches_the_bytecode_sequential_result() {
    // `helix run --parallel` correctness over the corpus: for every corpus program whose
    // entry function gets a selected plan, the parallel image-engine execution must produce
    // the sequential result.
    use helix::core::{transform, Helix, HelixConfig};
    use helix::runtime::ParallelExecutor;
    for (name, module, main) in helix::workloads::load_corpus().expect("corpus loads") {
        let helix_driver = Helix::new(HelixConfig::i7_980x());
        let (profile, output) = helix_driver
            .profile_and_analyze(&module, main, &[], helix::ir::interp::DEFAULT_FUEL)
            .unwrap_or_else(|e| panic!("{name}: profiling failed: {e}"));
        let Some(plan) = output
            .selected_plans()
            .into_iter()
            .filter(|p| p.func == main)
            .max_by_key(|p| profile.loop_profile((p.func, p.loop_id)).cycles)
        else {
            continue;
        };
        let transformed = transform::apply(&module, plan);
        let image = ExecImage::lower(&module);
        let mut machine = ImageMachine::new(&image);
        let expected = machine.call(main, &[]).unwrap();
        for threads in [1, 2, 4, 6] {
            let got = ParallelExecutor::new(threads)
                .run(&transformed, &[])
                .unwrap_or_else(|e| panic!("{name}: parallel run ({threads} threads): {e}"));
            assert_eq!(
                expected, got,
                "{name}: parallel diverged on {threads} threads"
            );
        }
    }
}
