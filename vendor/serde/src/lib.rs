//! Offline stand-in for the real `serde`.
//!
//! The build container has no network access to crates.io, so this crate satisfies the
//! `use serde::{Deserialize, Serialize};` imports in the IR and pipeline crates without
//! pulling in the real framework. The traits are markers with blanket impls (every type
//! trivially "serializes") and the derive macros expand to nothing. Nothing in the workspace
//! performs actual serialization through serde — the `helix` CLI emits JSON by hand — so the
//! stand-in is behaviorally invisible.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
