//! Offline stand-in for the real `serde_derive`.
//!
//! The build container has no network access, so this crate provides the two derive macros
//! the codebase uses as no-ops: `#[derive(Serialize, Deserialize)]` compiles but generates no
//! trait impls beyond the blanket impls in the companion `serde` stub. `#[serde(...)]` helper
//! attributes are accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
