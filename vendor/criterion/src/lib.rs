//! Offline stand-in for the real `criterion`.
//!
//! Implements the subset of the criterion API the bench targets use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and reports the median per-iteration wall-clock time. No
//! statistics beyond that: the point is that `cargo bench` builds and produces usable
//! numbers without network access.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing driver handed to the closure of `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up to populate caches and resolve lazy statics.
        std_black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std_black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                samples: Vec::with_capacity(1),
                iters_per_sample: 1,
            };
            f(&mut b);
            samples.extend(b.samples);
        }
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "{}/{}: median {:?} over {} samples",
            self.name,
            id,
            median,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; printing happens eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a function that runs the listed benchmark functions with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target, invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        group.finish();
        assert!(runs >= 3, "closure must run at least once per sample");
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macros_expand_to_runnable_functions() {
        smoke();
    }
}
