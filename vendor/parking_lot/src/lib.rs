//! Offline stand-in for the real `parking_lot`.
//!
//! Provides the `Mutex` API surface the runtime executor uses — `new`, non-poisoning `lock`,
//! `try_lock`, `into_inner` — backed by `std::sync::Mutex`. Poisoning is papered over by
//! recovering the inner guard, matching parking_lot's "no poisoning" semantics.

use std::sync::{self, TryLockError};

/// A parking_lot-style mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread. Never poisons: a panic while holding
    /// the lock leaves the data accessible, exactly like parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
