//! Offline stand-in for the real `parking_lot`.
//!
//! Provides the `Mutex` and `Condvar` API surface the runtime uses — `new`, non-poisoning
//! `lock`, `try_lock`, `into_inner`, `wait`, `wait_for`, `notify_one`/`notify_all` — backed
//! by `std::sync`. Poisoning is papered over by recovering the inner guard, matching
//! parking_lot's "no poisoning" semantics.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A parking_lot-style mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread. Never poisons: a panic while holding
    /// the lock leaves the data accessible, exactly like parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Result of a timed [`Condvar::wait_for`]: did the wait give up before a notification?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A parking_lot-style condition variable that pairs with [`Mutex`] and never poisons.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Parks the current thread until notified, atomically releasing `guard` while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(sync::PoisonError::into_inner)
        });
    }

    /// Parks like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(sync::PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one parked thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Runs `f` on the guard owned by `*slot`, replacing it with the guard `f` returns.
///
/// `std`'s `Condvar::wait` consumes the guard by value while parking_lot's takes `&mut`;
/// this adapter moves the guard out for the duration of the wait. Should `f` ever panic
/// (std's wait only fails with poisoning, which the callers recover, but the guard exists
/// so the invariant never depends on that), the bitwise copy left in `*slot` would be a
/// second owner of the same lock — unwinding would double-unlock it. The abort bomb turns
/// that impossible-by-construction case into a process abort instead of undefined behavior.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            if std::thread::panicking() {
                std::process::abort();
            }
        }
    }
    let bomb = AbortOnUnwind;
    // SAFETY: `slot` is immediately overwritten with the guard returned by `f` (std
    // Condvar::wait always returns a re-acquired guard for the same mutex); if `f` unwinds
    // instead, `bomb` aborts before the duplicated guard in `*slot` can be dropped again.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        handle.join().unwrap();
        // A timed wait with no notification reports the timeout.
        let (lock, cvar) = &*pair;
        let mut guard = lock.lock();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(1));
        assert!(result.timed_out());
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
