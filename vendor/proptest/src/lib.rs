//! Offline stand-in for the real `proptest`.
//!
//! The build container has no network access, so this crate implements the subset of the
//! proptest surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]` inner attribute,
//! * `prop_assert!` / `prop_assert_eq!`,
//! * range strategies (`1i64..64`), `any::<bool>()`, and `prop::sample::select(vec)`.
//!
//! Sampling is deterministic: every test case derives its RNG seed from the test name and
//! case index, so failures are reproducible across runs without persisted regression files.
//! There is no shrinking — a failing case reports its inputs via the panic message instead.

use std::fmt;
use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* RNG used for sampling.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a test name and case index (FNV-1a over the name).
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Self(if h == 0 { 0xdead_beef } else { h })
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A sampling strategy: maps an RNG to a value.
pub trait Strategy {
    /// The type of sampled values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types that can be sampled without parameters (the `any::<T>()` entry point).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl<T> Strategy for Any<T>
where
    T: Arbitrary,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy sampling any value of `T` (only the types the tests need are implemented).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` namespace mirror.
pub mod prop {
    /// Sampling combinators.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly among a fixed set of values.
        #[derive(Clone, Debug)]
        pub struct Select<T>(Vec<T>);

        /// Chooses uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property body, failing the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0i64..10, flag in any::<bool>()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {} with inputs {:?}: {}",
                        stringify!($name),
                        case,
                        ($(&$arg,)*),
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a = TestRng::deterministic("t", 0).next_u64();
        let b = TestRng::deterministic("t", 0).next_u64();
        let c = TestRng::deterministic("t", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
            let u = Strategy::sample(&(0usize..5), &mut rng);
            assert!(u < 5);
        }
    }

    #[test]
    fn select_draws_from_items() {
        let mut rng = TestRng::deterministic("select", 0);
        for _ in 0..100 {
            let v = Strategy::sample(&prop::sample::select(vec![1, 3, 7]), &mut rng);
            assert!([1, 3, 7].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_asserts(x in 1i64..50, flag in any::<bool>()) {
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
