//! Demonstrates the loop-selection algorithm of Section 2.2 on the interprocedural
//! nesting-graph shape of the paper's 179.art example (Figure 8), and shows how the chosen
//! loops move to outer nesting levels as the assumed signal latency grows (Figure 13).
//!
//! Run with `cargo run --example loop_selection_demo`.

use helix::analysis::LoopNestingGraph;
use helix::core::{Helix, HelixConfig};
use helix::profiler::profile_program;

fn main() {
    let bench = helix::workloads::all_benchmarks()[1]; // vpr: has helper-call loops
    let (module, main) = bench.build();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("benchmark runs");

    println!(
        "static loop nesting graph: {} loops, {} roots",
        nesting.len(),
        nesting.roots().len()
    );
    for node in nesting.iter() {
        println!(
            "  loop {:?} in {} at depth {} ({} parents, {} children)",
            node.loop_id,
            module.function(node.func).name,
            node.depth,
            node.parents.len(),
            node.children.len()
        );
    }

    for latency in [4u64, 110] {
        let config = HelixConfig::i7_980x().with_selection_latency(latency);
        let output = Helix::new(config).analyze(&module, &profile);
        let dist = output.selected_level_distribution();
        println!(
            "\nassumed signal latency {latency} cycles: {} loops selected, by nesting level: {:?}",
            output.selection.len(),
            dist
        );
    }
}
