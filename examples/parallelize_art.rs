//! End-to-end run of the `art` SPEC stand-in — the paper's best case (4.12x on 6 cores):
//! profile, analyze, simulate the speedup on 2/4/6 cores, and validate the transformation by
//! executing the hottest selected loop with real threads.
//!
//! Run with `cargo run --release --example parallelize_art`.

use helix::analysis::LoopNestingGraph;
use helix::core::{transform, Helix, HelixConfig};
use helix::ir::Machine;
use helix::profiler::profile_program;
use helix::runtime::ParallelExecutor;
use helix::simulator::{simulate_program, SimConfig};

fn main() {
    let bench = helix::workloads::all_benchmarks()[3];
    assert_eq!(bench.name, "art");
    let (module, main) = bench.build();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("art runs");
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    println!(
        "art: {} candidate loops, {} selected",
        output.plans.len(),
        output.selection.len()
    );

    for cores in [2usize, 4, 6] {
        let sim = simulate_program(
            &output,
            &profile,
            &SimConfig::helix_6_cores().with_cores(cores),
        );
        println!(
            "simulated speedup on {cores} cores: {:.2}x (paper: 4.12x on 6 cores)",
            sim.speedup
        );
    }

    // Correctness check: run the hottest main-level selected loop with real threads.
    let mut machine = Machine::new(&module);
    let expected = machine
        .call(main, &[])
        .expect("sequential run")
        .unwrap()
        .as_int();
    if let Some(plan) = output
        .selected_plans()
        .into_iter()
        .filter(|p| p.func == main)
        .max_by(|a, b| {
            profile
                .loop_profile((a.func, a.loop_id))
                .cycles
                .cmp(&profile.loop_profile((b.func, b.loop_id)).cycles)
        })
    {
        let transformed = transform::apply(&module, plan);
        let got = ParallelExecutor::new(6)
            .run(&transformed, &[])
            .expect("parallel run")
            .unwrap()
            .as_int();
        println!("checksum sequential = {expected}, parallel (6 threads) = {got}");
        assert_eq!(expected, got, "the transformation must preserve semantics");
        println!("parallel execution matches sequential execution");
    }
}
