//! Quickstart: build a small program, profile it, run the HELIX pipeline, and print what was
//! selected and why.
//!
//! Run with `cargo run --example quickstart`.

use helix::analysis::LoopNestingGraph;
use helix::core::{Helix, HelixConfig, PrefetchMode};
use helix::ir::builder::{FunctionBuilder, ModuleBuilder};
use helix::ir::{BinOp, Operand};
use helix::profiler::profile_program;

fn main() {
    // 1. Build a program: main() fills an array with an expensive per-element hash.
    let mut mb = ModuleBuilder::new("quickstart");
    let arr = mb.add_global("arr", 2048);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(1024), 1);
    let addr = fb.binary_to_new(
        BinOp::Add,
        Operand::Global(arr),
        Operand::Var(lh.induction_var),
    );
    let mut v = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(lh.induction_var),
        Operand::int(2654435761),
    );
    for round in 0..32 {
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(v), Operand::int(31 + round));
        v = fb.binary_to_new(BinOp::Xor, Operand::Var(m), Operand::int(0x9e3779b9));
    }
    fb.store(Operand::Var(addr), 0, Operand::Var(v));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    fb.ret(None);
    let main_fn = mb.add_function(fb.finish());
    let module = mb.finish();

    // 2. Profile it with the training input (the sequential interpreter).
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main_fn, &[]).expect("program runs");
    println!(
        "profiled {} cycles, {} candidate loops",
        profile.total_cycles,
        nesting.len()
    );

    // 3. Run the HELIX analysis and selection.
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    for (key, plan) in &output.plans {
        println!(
            "loop {:?}: {} synchronized segments, {:.0} cycles/iteration, selected = {}",
            key,
            plan.synchronized_segments(),
            plan.total_cycles_per_iter,
            output.selection.is_selected(*key)
        );
    }
    println!(
        "estimated whole-program speedup on 6 cores: {:.2}x",
        output.estimated_speedup(PrefetchMode::Helix)
    );
}
