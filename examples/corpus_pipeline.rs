//! Load a textual `.hir` program through the frontend and push it through the whole HELIX
//! pipeline: profile, analyze, select, and simulate.
//!
//! Run with `cargo run --example corpus_pipeline [corpus/stencil.hir]`.

use helix::analysis::LoopNestingGraph;
use helix::core::{Helix, HelixConfig, PrefetchMode};
use helix::frontend::parse_file;
use helix::profiler::profile_program;
use helix::simulator::{simulate_program, SimConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "corpus/stencil.hir".to_string());

    // 1. The program comes from a file, not a builder: the frontend parses and verifies it.
    let module = parse_file(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let main = module
        .function_by_name("main")
        .expect("corpus programs define main");
    println!(
        "parsed `{}` from {path}: {} functions, {} instructions",
        module.name,
        module.functions.len(),
        module.instr_count()
    );

    // 2. Profile with the sequential interpreter.
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("program runs");
    println!(
        "profiled {} cycles over {} candidate loops",
        profile.total_cycles,
        nesting.len()
    );

    // 3. HELIX analysis and loop selection.
    let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
    for (key, plan) in &output.plans {
        println!(
            "loop {}/{}: {} synchronized segments, {:.0} cycles/iteration, selected = {}",
            module.function(key.0).name,
            key.1,
            plan.synchronized_segments(),
            plan.total_cycles_per_iter,
            output.selection.is_selected(*key)
        );
    }

    // 4. Simulate the parallelized program on the paper's six-core platform.
    let sim = simulate_program(&output, &profile, &SimConfig::helix_6_cores());
    println!(
        "simulated speedup on 6 cores: {:.2}x (model estimate {:.2}x)",
        sim.speedup,
        output.estimated_speedup(PrefetchMode::Helix)
    );
}
