//! Generates the parallel-kernel corpus programs (`corpus/hash_sweep.hir`,
//! `corpus/blend_mix.hir`, `corpus/scratch_fold.hir`): loop-dominated kernels whose setup
//! lives in global initializers rather than sequential init loops, so nearly all of their
//! runtime is the parallelizable loop. Re-run with `cargo run --example
//! gen_parallel_corpus` after changing the builders; output is canonical `.hir`.

use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
use helix_ir::{printer, verify_module, BinOp, Module, Operand, UnOp};

/// 16k-iteration integer hash sweep: 40 ALU rounds per element, one store.
fn hash_sweep() -> Module {
    let n = 16_384i64;
    let mut mb = ModuleBuilder::new("hash_sweep");
    let out = mb.add_global("out", n as usize);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
    let mut v = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(lh.induction_var),
        Operand::int(2654435761),
    );
    for round in 0..20 {
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(v), Operand::int(31 + round));
        v = fb.binary_to_new(BinOp::Xor, Operand::Var(m), Operand::int(0x9e3779b9));
    }
    let slot = fb.binary_to_new(
        BinOp::Add,
        Operand::Global(out),
        Operand::Var(lh.induction_var),
    );
    fb.store(Operand::Var(slot), 0, Operand::Var(v));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    // Checksum a few fixed slots so the kernel's result observes the stores.
    let a = fb.load_to_new(Operand::Global(out), 1);
    let b = fb.load_to_new(Operand::Global(out), n / 2);
    let c = fb.load_to_new(Operand::Global(out), n - 1);
    let ab = fb.binary_to_new(BinOp::Xor, Operand::Var(a), Operand::Var(b));
    let abc = fb.binary_to_new(BinOp::Xor, Operand::Var(ab), Operand::Var(c));
    fb.ret(Some(Operand::Var(abc)));
    mb.add_function(fb.finish());
    mb.finish()
}

/// 12k-iteration float blend: a chain of float multiply/add/min/max rounds per element.
fn blend_mix() -> Module {
    let n = 12_288i64;
    let mut mb = ModuleBuilder::new("blend_mix");
    let out = mb.add_global("out", n as usize);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
    let x = fb.unary_to_new(UnOp::ToFloat, Operand::Var(lh.induction_var));
    let mut v = fb.binary_to_new(BinOp::Mul, Operand::Var(x), Operand::float(0.6180339887));
    for round in 0..14 {
        let scale = 1.0 + (round as f64) * 0.125;
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(v), Operand::float(scale));
        let s = fb.binary_to_new(BinOp::Add, Operand::Var(m), Operand::float(0.25));
        let lo = fb.binary_to_new(BinOp::Max, Operand::Var(s), Operand::float(-1.0e9));
        v = fb.binary_to_new(BinOp::Min, Operand::Var(lo), Operand::float(1.0e9));
    }
    let slot = fb.binary_to_new(
        BinOp::Add,
        Operand::Global(out),
        Operand::Var(lh.induction_var),
    );
    fb.store(Operand::Var(slot), 0, Operand::Var(v));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    let a = fb.load_to_new(Operand::Global(out), 3);
    let b = fb.load_to_new(Operand::Global(out), n - 2);
    let sum = fb.binary_to_new(BinOp::Add, Operand::Var(a), Operand::Var(b));
    let as_int = fb.unary_to_new(UnOp::ToInt, Operand::Var(sum));
    fb.ret(Some(Operand::Var(as_int)));
    mb.add_function(fb.finish());
    mb.finish()
}

/// 10k-iteration fold through a per-iteration scratch buffer: the privatization showcase.
/// Each iteration allocates an 6-word scratch, fills it with derived values at constant
/// offsets, folds it back and accumulates into a global through the synchronized segment.
fn scratch_fold() -> Module {
    let n = 10_000i64;
    let mut mb = ModuleBuilder::new("scratch_fold");
    let acc = mb.add_global("acc", 1);
    let mut fb = FunctionBuilder::new("main", 0);
    let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
    let p = fb.new_var();
    fb.alloc(p, Operand::int(6));
    let mut h = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(lh.induction_var),
        Operand::int(1099087573),
    );
    for slot in 0..6i64 {
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(h), Operand::int(37 + slot));
        h = fb.binary_to_new(BinOp::Xor, Operand::Var(m), Operand::int(0x5bd1e995));
        fb.store(Operand::Var(p), slot, Operand::Var(h));
    }
    let mut fold = fb.load_to_new(Operand::Var(p), 0);
    for slot in 1..6i64 {
        let w = fb.load_to_new(Operand::Var(p), slot);
        let sh = fb.binary_to_new(BinOp::Shr, Operand::Var(w), Operand::int(7));
        fold = fb.binary_to_new(BinOp::Add, Operand::Var(fold), Operand::Var(sh));
    }
    let cur = fb.load_to_new(Operand::Global(acc), 0);
    let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(fold));
    fb.store(Operand::Global(acc), 0, Operand::Var(next));
    fb.br(lh.latch);
    fb.switch_to(lh.exit);
    let r = fb.load_to_new(Operand::Global(acc), 0);
    fb.ret(Some(Operand::Var(r)));
    mb.add_function(fb.finish());
    mb.finish()
}

/// The selection-recalibration witness: two sibling top-level loops whose best plan
/// flips between paper-constant and measured-cost signal pricing.
///
/// Loop `A` is hot, tight and signal-bound: 24576 iterations of ~15 cycles of hash work
/// around a 3-op read-modify-write of the carried global `acc` — every iteration pays one
/// synchronized segment. Priced with the paper's 4-cycle prefetched signal, the segment
/// overhead (two signals per iteration) is small next to the parallel work, and `A` is the
/// hottest selected loop. Priced with *measured* costs — on a host where a cross-thread
/// signal costs a scheduler handoff, hundreds to thousands of model cycles — `A`'s 24576
/// signal pairs drown its savings and selection correctly drops it, keeping only loop `B`:
/// 16 heavy iterations (a 1600-element doall body each), whose per-iteration work dwarfs
/// even the measured signal cost. The flip is asserted in `tests/corpus_pipeline.rs`, and
/// the parallel-runtime bench executes both choices to confirm the measured one is the
/// faster plan on the actual runtime.
fn nest_flip() -> Module {
    let mut mb = ModuleBuilder::new("nest_flip");
    let acc = mb.add_global("acc", 1);
    let out = mb.add_global("out", 1600);
    let mut fb = FunctionBuilder::new("main", 0);

    // A: tight signal-bound accumulator, the paper-constant favourite.
    let a = fb.counted_loop(Operand::int(0), Operand::int(24_576), 1);
    let mut v = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(a.induction_var),
        Operand::int(2654435761),
    );
    for round in 0..5 {
        let m = fb.binary_to_new(BinOp::Mul, Operand::Var(v), Operand::int(89 + round));
        v = fb.binary_to_new(BinOp::Xor, Operand::Var(m), Operand::int(0x9e3779b9));
    }
    let cur = fb.load_to_new(Operand::Global(acc), 0);
    let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(v));
    fb.store(Operand::Global(acc), 0, Operand::Var(next));
    fb.br(a.latch);
    fb.switch_to(a.exit);

    // B: few heavy iterations (each a 1600-element doall), the measured-cost favourite.
    let b = fb.counted_loop(Operand::int(0), Operand::int(16), 1);
    let c = fb.counted_loop(Operand::int(0), Operand::int(1600), 1);
    let mut w = fb.binary_to_new(
        BinOp::Mul,
        Operand::Var(c.induction_var),
        Operand::int(1099087573),
    );
    w = fb.binary_to_new(BinOp::Xor, Operand::Var(w), Operand::Var(b.induction_var));
    let m1 = fb.binary_to_new(BinOp::Mul, Operand::Var(w), Operand::int(131));
    let x1 = fb.binary_to_new(BinOp::Xor, Operand::Var(m1), Operand::int(0x85eb));
    let m2 = fb.binary_to_new(BinOp::Mul, Operand::Var(x1), Operand::int(197));
    w = fb.binary_to_new(BinOp::Xor, Operand::Var(m2), Operand::int(0x27d4));
    let slot = fb.binary_to_new(
        BinOp::Add,
        Operand::Global(out),
        Operand::Var(c.induction_var),
    );
    fb.store(Operand::Var(slot), 0, Operand::Var(w));
    fb.br(c.latch);
    fb.switch_to(c.exit);
    fb.br(b.latch);
    fb.switch_to(b.exit);

    // Checksum observing both the carried accumulator and the doall output.
    let rg = fb.load_to_new(Operand::Global(acc), 0);
    let r0 = fb.load_to_new(Operand::Global(out), 7);
    let r1 = fb.load_to_new(Operand::Global(out), 1599);
    let x = fb.binary_to_new(BinOp::Xor, Operand::Var(rg), Operand::Var(r0));
    let r = fb.binary_to_new(BinOp::Xor, Operand::Var(x), Operand::Var(r1));
    fb.ret(Some(Operand::Var(r)));
    mb.add_function(fb.finish());
    mb.finish()
}

fn main() {
    for module in [hash_sweep(), blend_mix(), scratch_fold(), nest_flip()] {
        verify_module(&module).expect("kernel verifies");
        let path = format!("corpus/{}.hir", module.name);
        std::fs::write(&path, printer::format_module(&module)).expect("write corpus file");
        println!("wrote {path}");
    }
}
