//! Reproduces the Figure 10 ablation on a single benchmark: disabling Step 6 (signal
//! minimization) and Step 8 (helper threads) individually and together.
//!
//! Run with `cargo run --release --example ablation_study`.

use helix::analysis::LoopNestingGraph;
use helix::core::{Helix, HelixConfig, PrefetchMode};
use helix::profiler::profile_program;
use helix::simulator::{simulate_program, SimConfig};

fn main() {
    let bench = helix::workloads::all_benchmarks()[2]; // mesa
    let (module, main) = bench.build();
    let nesting = LoopNestingGraph::new(&module);
    let profile = profile_program(&module, &nesting, main, &[]).expect("benchmark runs");

    let configs = [
        (
            "neither step 6 nor step 8",
            HelixConfig::i7_980x()
                .without_signal_minimization()
                .without_helper_threads(),
        ),
        (
            "no step 8 (no helper threads)",
            HelixConfig::i7_980x().without_helper_threads(),
        ),
        (
            "no step 6 (no signal minimization)",
            HelixConfig::i7_980x().without_signal_minimization(),
        ),
        ("full HELIX", HelixConfig::i7_980x()),
    ];
    println!("{} ablation on six cores:", bench.name);
    for (label, config) in configs {
        let output = Helix::new(config).analyze(&module, &profile);
        let sim = simulate_program(
            &output,
            &profile,
            &SimConfig {
                helix: config,
                mode: PrefetchMode::Helix,
            },
        );
        println!(
            "  {label:<36} speedup {:.2}x ({} loops selected)",
            sim.speedup,
            output.selection.len()
        );
    }
}
