//! # helix-profiler
//!
//! The profiling interpreter that produces the feedback data HELIX's loop selection consumes
//! (Section 2.2 of the paper):
//!
//! * per-loop invocation and iteration counts (`Invoc_i`, used by Equation 1),
//! * per-loop inclusive cycle counts (the saved-time attribute `T` is derived from these),
//! * per-instruction dynamic execution counts and cycles (used to price sequential segments
//!   and prologues, and Figure 11's time breakdown),
//! * the *dynamic loop nesting graph* edges — which static nesting edges were actually
//!   traversed with the training input.
//!
//! The profiler is an observer attached to the sequential interpreter of `helix-ir`; it does
//! not modify the program, mirroring how the paper instruments code at the IR level.
//!
//! Two implementations produce the same [`ProgramProfile`]:
//!
//! * [`Profiler`] observes the tree-walking interpreter ([`helix_ir::Machine`]) — the
//!   reference implementation;
//! * [`ImageProfiler`] observes the flat-bytecode engine ([`helix_ir::ImageMachine`]) with
//!   dense per-pc counters and delta-based inclusive attribution — the fast path used by the
//!   pipeline and the CLI.

pub mod image;
pub mod profile;
pub mod profiler;

pub use image::{profile_image, profile_program_image, ImageProfiler};
pub use profile::{FunctionProfile, InstrProfile, LoopKey, LoopProfile, ProgramProfile};
pub use profiler::{profile_program, Profiler};
