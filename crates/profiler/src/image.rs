//! The bytecode-engine profiling observer.
//!
//! [`ImageProfiler`] is the lowered counterpart of [`crate::Profiler`]: it observes a
//! [`helix_ir::ImageMachine`] run through the [`ImageObserver`] hooks and produces the same
//! [`ProgramProfile`] the tree-walking profiler does — but instead of hashing an [`InstrRef`]
//! per dynamic instruction it keeps *dense* per-pc execution/cycle counters (folded back to
//! `InstrRef`s once, in [`ImageProfiler::finish`]) and per-block loop-header lookups indexed
//! by dense block id.
//!
//! Inclusive cycle attribution (per call site and per active loop) uses entry/exit deltas of
//! the running total instead of touching every pending frame and active loop on every
//! instruction: a frame entered at total `t0` and left at `t1` accumulated exactly `t1 - t0`
//! inclusive cycles. The per-event work is O(1) instead of O(stack depth), and the resulting
//! profile is identical (addition is commutative; `tests/exec_differential.rs` asserts
//! equality against the tree-walking profiler over the whole corpus).

use crate::profile::{FunctionProfile, LoopKey, ProgramProfile};
use helix_analysis::{LoopForest, LoopId, LoopNestingGraph};
use helix_ir::interp::ExecError;
use helix_ir::{BlockId, ExecImage, FuncId, ImageMachine, ImageObserver, InstrRef, Module, Value};
use std::collections::HashMap;

/// One entry of the active-loop stack.
#[derive(Clone, Copy, Debug)]
struct ActiveLoop {
    key: LoopKey,
    /// Index of the call frame the loop belongs to.
    frame: usize,
    /// Running cycle total when the loop was entered (for inclusive-delta attribution).
    cycles_at_entry: u64,
}

/// One call frame.
#[derive(Clone, Copy, Debug)]
struct Frame {
    /// The caller and call site, absent for the root invocation.
    callsite: Option<(FuncId, InstrRef)>,
    /// Loop-stack depth when the frame was pushed (restored on return).
    loop_baseline: usize,
    /// Running cycle total when the frame was pushed.
    cycles_at_push: u64,
}

/// The profiling observer for the bytecode engine. Attach to an
/// [`ImageMachine::call_observed`] run, or use [`profile_image`] / [`profile_program_image`].
#[derive(Debug)]
pub struct ImageProfiler<'i> {
    image: &'i ExecImage,
    forests: HashMap<FuncId, LoopForest>,
    /// Per function, the loop whose header each block is (dense, indexed by block id).
    header_of: Vec<Vec<Option<LoopId>>>,
    /// Dense per-pc execution counts, indexed `[func][pc]`.
    counts: Vec<Vec<u64>>,
    /// Dense per-pc exclusive cycles, indexed `[func][pc]`.
    op_cycles: Vec<Vec<u64>>,
    /// Per-function invocation counts.
    invocations: Vec<u64>,
    /// Inclusive callee cycles per call site, flushed when frames pop.
    callsite_cycles: HashMap<FuncId, HashMap<InstrRef, u64>>,
    loops: HashMap<LoopKey, crate::profile::LoopProfile>,
    dynamic_edges: std::collections::BTreeSet<(LoopKey, LoopKey)>,
    dynamic_roots: std::collections::BTreeSet<LoopKey>,
    total_cycles: u64,
    outside_cycles: u64,
    /// Running total when the loop stack last became (or started) empty.
    outside_since: u64,
    frames: Vec<Frame>,
    active_loops: Vec<ActiveLoop>,
}

impl<'i> ImageProfiler<'i> {
    /// Creates a profiler for `image`, reusing the loop forests of a pre-computed nesting
    /// graph.
    pub fn new(image: &'i ExecImage, nesting: &LoopNestingGraph) -> Self {
        let forests = nesting.forests.clone();
        let mut header_of: Vec<Vec<Option<LoopId>>> = image
            .funcs
            .iter()
            .map(|f| vec![None; f.num_blocks()])
            .collect();
        for (func, forest) in &forests {
            if let Some(headers) = header_of.get_mut(func.index()) {
                for l in forest.iter() {
                    if let Some(slot) = headers.get_mut(l.header.index()) {
                        *slot = Some(l.id);
                    }
                }
            }
        }
        Self {
            forests,
            header_of,
            counts: image.funcs.iter().map(|f| vec![0; f.code.len()]).collect(),
            op_cycles: image.funcs.iter().map(|f| vec![0; f.code.len()]).collect(),
            invocations: vec![0; image.funcs.len()],
            callsite_cycles: HashMap::new(),
            loops: HashMap::new(),
            dynamic_edges: std::collections::BTreeSet::new(),
            dynamic_roots: std::collections::BTreeSet::new(),
            total_cycles: 0,
            outside_cycles: 0,
            outside_since: 0,
            frames: Vec::new(),
            active_loops: Vec::new(),
            image,
        }
    }

    /// Consumes the profiler and folds the dense counters into a [`ProgramProfile`].
    pub fn finish(mut self) -> ProgramProfile {
        // Flush attribution for anything still live (an errored run leaves frames and loops
        // on the stack; the tree-walking profiler attributed their cycles eagerly).
        while let Some(frame) = self.frames.pop() {
            if let Some((caller, site)) = frame.callsite {
                *self
                    .callsite_cycles
                    .entry(caller)
                    .or_default()
                    .entry(site)
                    .or_default() += self.total_cycles - frame.cycles_at_push;
            }
        }
        while !self.active_loops.is_empty() {
            self.deactivate_top();
        }
        self.outside_cycles += self.total_cycles - self.outside_since;
        self.outside_since = self.total_cycles;

        let mut functions: HashMap<FuncId, FunctionProfile> = HashMap::new();
        for (idx, counts) in self.counts.iter().enumerate() {
            let func = FuncId::new(idx as u32);
            let invocations = self.invocations[idx];
            let callsites = self.callsite_cycles.remove(&func).unwrap_or_default();
            let any_count = counts.iter().any(|&c| c > 0);
            if invocations == 0 && !any_count && callsites.is_empty() {
                continue;
            }
            let fi = &self.image.funcs[idx];
            let mut fp = FunctionProfile {
                invocations,
                ..FunctionProfile::default()
            };
            for (pc, &count) in counts.iter().enumerate() {
                if count > 0 {
                    let entry = fp.instrs.entry(fi.pc_to_ref[pc]).or_default();
                    entry.count += count;
                    entry.cycles += self.op_cycles[idx][pc];
                }
            }
            fp.callsite_cycles = callsites;
            functions.insert(func, fp);
        }
        // Call sites of functions that never executed an op themselves still need their
        // attribution (not reachable in practice, but keep the fold total).
        for (func, callsites) in self.callsite_cycles.drain() {
            functions.entry(func).or_default().callsite_cycles = callsites;
        }

        ProgramProfile {
            functions,
            loops: self.loops,
            dynamic_edges: self.dynamic_edges,
            dynamic_roots: self.dynamic_roots,
            total_cycles: self.total_cycles,
            cycles_outside_loops: self.outside_cycles,
        }
    }

    fn ensure_root_frame(&mut self, func: FuncId) {
        if self.frames.is_empty() {
            self.frames.push(Frame {
                callsite: None,
                loop_baseline: 0,
                cycles_at_push: self.total_cycles,
            });
            self.invocations[func.index()] += 1;
        }
    }

    fn current_frame_index(&self) -> usize {
        self.frames.len().saturating_sub(1)
    }

    /// Pops the top active loop, attributing its inclusive cycle delta.
    fn deactivate_top(&mut self) {
        let Some(top) = self.active_loops.pop() else {
            return;
        };
        self.loops.entry(top.key).or_default().cycles += self.total_cycles - top.cycles_at_entry;
        if self.active_loops.is_empty() {
            self.outside_since = self.total_cycles;
        }
    }

    /// Pops loops of the current frame that do not contain `block`.
    fn pop_exited_loops(&mut self, func: FuncId, block: BlockId) {
        let frame = self.current_frame_index();
        while let Some(top) = self.active_loops.last() {
            if top.frame != frame {
                break;
            }
            let (f, lid) = top.key;
            debug_assert_eq!(f, func);
            let still_inside = self
                .forests
                .get(&f)
                .map(|forest| forest.get(lid).contains(block))
                .unwrap_or(false);
            if still_inside {
                break;
            }
            self.deactivate_top();
        }
    }
}

impl ImageObserver for ImageProfiler<'_> {
    fn on_block_enter(&mut self, func: FuncId, block: u32) {
        self.ensure_root_frame(func);
        self.pop_exited_loops(func, BlockId::new(block));
        let frame = self.current_frame_index();
        if let Some(lid) = self.header_of[func.index()][block as usize] {
            let key = (func, lid);
            let is_new_iteration_of_top = self
                .active_loops
                .last()
                .map(|t| t.frame == frame && t.key == key)
                .unwrap_or(false);
            if is_new_iteration_of_top {
                // A back edge into the header completes one iteration.
                self.loops.entry(key).or_default().iterations += 1;
            } else {
                match self.active_loops.last() {
                    Some(parent) => {
                        self.dynamic_edges.insert((parent.key, key));
                    }
                    None => {
                        self.dynamic_roots.insert(key);
                        self.outside_cycles += self.total_cycles - self.outside_since;
                    }
                }
                self.loops.entry(key).or_default().invocations += 1;
                self.active_loops.push(ActiveLoop {
                    key,
                    frame,
                    cycles_at_entry: self.total_cycles,
                });
            }
        }
    }

    fn on_op(&mut self, func: FuncId, pc: u32, cycles: u64) {
        self.ensure_root_frame(func);
        let idx = func.index();
        self.counts[idx][pc as usize] += 1;
        self.op_cycles[idx][pc as usize] += cycles;
        self.total_cycles += cycles;
    }

    fn on_call(&mut self, caller: FuncId, pc: u32, callee: FuncId) {
        self.ensure_root_frame(caller);
        let site = self.image.funcs[caller.index()].pc_to_ref[pc as usize];
        self.frames.push(Frame {
            callsite: Some((caller, site)),
            loop_baseline: self.active_loops.len(),
            cycles_at_push: self.total_cycles,
        });
        self.invocations[callee.index()] += 1;
    }

    fn on_return(&mut self, _func: FuncId) {
        if self.frames.len() > 1 {
            let frame = self.frames.pop().expect("frame stack underflow");
            if let Some((caller, site)) = frame.callsite {
                *self
                    .callsite_cycles
                    .entry(caller)
                    .or_default()
                    .entry(site)
                    .or_default() += self.total_cycles - frame.cycles_at_push;
            }
            while self.active_loops.len() > frame.loop_baseline {
                self.deactivate_top();
            }
        } else {
            // Returning from the root invocation: deactivate all loops.
            while !self.active_loops.is_empty() {
                self.deactivate_top();
            }
        }
    }
}

/// Runs `main` of `image` with `args` under the bytecode profiler and returns the profile.
///
/// # Errors
///
/// Returns the engine error if the program faults or exhausts its fuel.
pub fn profile_image(
    image: &ExecImage,
    nesting: &LoopNestingGraph,
    main: FuncId,
    args: &[Value],
) -> Result<ProgramProfile, ExecError> {
    let mut machine = ImageMachine::new(image);
    let mut profiler = ImageProfiler::new(image, nesting);
    machine.call_observed(main, args, &mut profiler)?;
    Ok(profiler.finish())
}

/// Lowers `module` and profiles it through the bytecode engine — the drop-in, faster
/// replacement for [`crate::profile_program`].
///
/// # Errors
///
/// Returns the engine error if the program faults or exhausts its fuel.
pub fn profile_program_image(
    module: &Module,
    nesting: &LoopNestingGraph,
    main: FuncId,
    args: &[Value],
) -> Result<ProgramProfile, ExecError> {
    let image = ExecImage::lower(module);
    profile_image(&image, nesting, main, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile_program;
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{BinOp, Operand};

    /// The same doubly nested + interprocedural module the tree-walking profiler tests use.
    fn profiled_module() -> (Module, FuncId, LoopNestingGraph) {
        let mut mb = ModuleBuilder::new("prof");
        let helper_id = mb.declare_function("helper", 1);
        let mut helper = FunctionBuilder::new("helper", 1);
        let hn = helper.param(0);
        let acc = helper.new_var();
        helper.const_int(acc, 0);
        let hl = helper.counted_loop(Operand::int(0), Operand::Var(hn), 1);
        helper.binary(
            acc,
            BinOp::Add,
            Operand::Var(acc),
            Operand::Var(hl.induction_var),
        );
        helper.br(hl.latch);
        helper.switch_to(hl.exit);
        helper.ret(Some(Operand::Var(acc)));
        mb.define_function(helper_id, helper.finish());

        let mut main = FunctionBuilder::new("main", 0);
        let s = main.new_var();
        main.const_int(s, 0);
        let outer = main.counted_loop(Operand::int(0), Operand::int(10), 1);
        let inner = main.counted_loop(Operand::int(0), Operand::int(5), 1);
        main.binary(
            s,
            BinOp::Add,
            Operand::Var(s),
            Operand::Var(inner.induction_var),
        );
        main.br(inner.latch);
        main.switch_to(inner.exit);
        let h = main.new_var();
        main.call(Some(h), helper_id, vec![Operand::int(3)]);
        main.binary(s, BinOp::Add, Operand::Var(s), Operand::Var(h));
        main.br(outer.latch);
        main.switch_to(outer.exit);
        main.ret(Some(Operand::Var(s)));
        let main_id = mb.add_function(main.finish());
        let module = mb.finish();
        let nesting = LoopNestingGraph::new(&module);
        (module, main_id, nesting)
    }

    #[test]
    fn image_profile_is_identical_to_tree_walk_profile() {
        let (module, main_id, nesting) = profiled_module();
        let tree = profile_program(&module, &nesting, main_id, &[]).unwrap();
        let flat = profile_program_image(&module, &nesting, main_id, &[]).unwrap();
        assert_eq!(tree, flat);
    }

    #[test]
    fn loop_counts_match_trip_counts() {
        let (module, main_id, nesting) = profiled_module();
        let profile = profile_program_image(&module, &nesting, main_id, &[]).unwrap();
        let main_forest = &nesting.forests[&main_id];
        let outer_key = (main_id, main_forest.top_level()[0]);
        let outer = profile.loop_profile(outer_key);
        assert_eq!(outer.invocations, 1);
        assert_eq!(outer.iterations, 10);
        assert!(profile.total_cycles > outer.cycles);
        assert!(profile.cycles_outside_loops > 0);
    }

    #[test]
    fn interprocedural_nesting_edges_are_recorded() {
        let (module, main_id, nesting) = profiled_module();
        let helper_id = module.function_by_name("helper").unwrap();
        let profile = profile_program_image(&module, &nesting, main_id, &[]).unwrap();
        let outer_key = (main_id, nesting.forests[&main_id].top_level()[0]);
        let helper_key = (helper_id, nesting.forests[&helper_id].top_level()[0]);
        assert!(profile.dynamic_edges.contains(&(outer_key, helper_key)));
        assert!(profile.dynamic_roots.contains(&outer_key));
        assert_eq!(profile.functions[&helper_id].invocations, 10);
    }
}
