//! Profile data structures.

use helix_analysis::LoopId;
use helix_ir::{FuncId, InstrRef};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Identifies one loop program-wide: the function plus the loop id within that function's
/// loop forest.
pub type LoopKey = (FuncId, LoopId);

/// Dynamic execution data for one static instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrProfile {
    /// Number of times the instruction executed.
    pub count: u64,
    /// Cycles charged to the instruction itself (exclusive: a call's callee time is recorded
    /// separately in [`FunctionProfile::callsite_cycles`]).
    pub cycles: u64,
}

/// Profile of one function.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// Number of invocations of the function.
    pub invocations: u64,
    /// Per-instruction execution counts and exclusive cycles.
    pub instrs: HashMap<InstrRef, InstrProfile>,
    /// Inclusive cycles spent inside the callee (transitively) per call site.
    pub callsite_cycles: HashMap<InstrRef, u64>,
}

impl FunctionProfile {
    /// Exclusive cycles of one instruction.
    pub fn cycles_of(&self, at: InstrRef) -> u64 {
        self.instrs.get(&at).map_or(0, |p| p.cycles)
    }

    /// Execution count of one instruction.
    pub fn count_of(&self, at: InstrRef) -> u64 {
        self.instrs.get(&at).map_or(0, |p| p.count)
    }

    /// Inclusive cycles of one instruction: its own cycles plus, for calls, the callee time.
    pub fn inclusive_cycles_of(&self, at: InstrRef) -> u64 {
        self.cycles_of(at) + self.callsite_cycles.get(&at).copied().unwrap_or(0)
    }
}

/// Profile of one loop (inclusive of everything executed while the loop is active, including
/// callees and nested loops).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopProfile {
    /// Number of times the loop was entered.
    pub invocations: u64,
    /// Total number of iterations across all invocations.
    pub iterations: u64,
    /// Cycles spent while the loop was active (inclusive).
    pub cycles: u64,
}

impl LoopProfile {
    /// Average number of iterations per invocation.
    pub fn iterations_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.iterations as f64 / self.invocations as f64
        }
    }
}

/// Whole-program profile produced by one training run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramProfile {
    /// Per-function data.
    pub functions: HashMap<FuncId, FunctionProfile>,
    /// Per-loop data.
    pub loops: HashMap<LoopKey, LoopProfile>,
    /// Edges of the dynamic loop nesting graph actually traversed: `(parent, child)`.
    pub dynamic_edges: BTreeSet<(LoopKey, LoopKey)>,
    /// Loops that were entered while no other loop was active (dynamic roots).
    pub dynamic_roots: BTreeSet<LoopKey>,
    /// Total cycles of the whole run.
    pub total_cycles: u64,
    /// Cycles spent while no loop was active.
    pub cycles_outside_loops: u64,
}

impl ProgramProfile {
    /// Profile of a loop, or the zero profile if it never ran.
    pub fn loop_profile(&self, key: LoopKey) -> LoopProfile {
        self.loops.get(&key).copied().unwrap_or_default()
    }

    /// Returns `true` if the loop executed at least one iteration during profiling.
    pub fn executed(&self, key: LoopKey) -> bool {
        self.loop_profile(key).iterations > 0
    }

    /// Inclusive cycles attributed to a set of instructions of `func` (sums each instruction's
    /// own cycles plus callee time for calls).
    pub fn cycles_of_instrs(&self, func: FuncId, instrs: &[InstrRef]) -> u64 {
        let Some(fp) = self.functions.get(&func) else {
            return 0;
        };
        instrs.iter().map(|r| fp.inclusive_cycles_of(*r)).sum()
    }

    /// The fraction of total cycles spent inside `key` (0 when the program did not run).
    pub fn loop_time_fraction(&self, key: LoopKey) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.loop_profile(key).cycles as f64 / self.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::BlockId;

    #[test]
    fn loop_profile_averages() {
        let p = LoopProfile {
            invocations: 4,
            iterations: 40,
            cycles: 400,
        };
        assert_eq!(p.iterations_per_invocation(), 10.0);
        assert_eq!(LoopProfile::default().iterations_per_invocation(), 0.0);
    }

    #[test]
    fn function_profile_inclusive_cycles() {
        let mut fp = FunctionProfile::default();
        let at = InstrRef::new(BlockId::new(0), 3);
        fp.instrs.insert(
            at,
            InstrProfile {
                count: 2,
                cycles: 20,
            },
        );
        fp.callsite_cycles.insert(at, 100);
        assert_eq!(fp.cycles_of(at), 20);
        assert_eq!(fp.count_of(at), 2);
        assert_eq!(fp.inclusive_cycles_of(at), 120);
        let other = InstrRef::new(BlockId::new(0), 4);
        assert_eq!(fp.inclusive_cycles_of(other), 0);
    }

    #[test]
    fn program_profile_queries() {
        let mut pp = ProgramProfile {
            total_cycles: 1000,
            ..Default::default()
        };
        let key = (FuncId::new(0), LoopId(0));
        pp.loops.insert(
            key,
            LoopProfile {
                invocations: 1,
                iterations: 10,
                cycles: 250,
            },
        );
        assert!(pp.executed(key));
        assert!(!pp.executed((FuncId::new(1), LoopId(0))));
        assert_eq!(pp.loop_time_fraction(key), 0.25);
        assert_eq!(pp.cycles_of_instrs(FuncId::new(9), &[]), 0);
    }
}
