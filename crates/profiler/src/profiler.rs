//! The profiling observer.
//!
//! [`Profiler`] tracks, while the sequential interpreter runs, which loops are active (a stack
//! spanning function calls), how many times each is invoked and iterated, how many cycles are
//! spent while each is active, and which nesting edges are dynamically traversed. The
//! resulting [`ProgramProfile`] is exactly the feedback data the HELIX loop-selection
//! algorithm consumes.

use crate::profile::{FunctionProfile, LoopKey, ProgramProfile};
use helix_analysis::{LoopForest, LoopNestingGraph};
use helix_ir::interp::{ExecError, Observer};
use helix_ir::{BlockId, FuncId, Instr, InstrRef, Machine, Module, Value};
use std::collections::HashMap;

/// One entry of the active-loop stack.
#[derive(Clone, Copy, Debug)]
struct ActiveLoop {
    key: LoopKey,
    /// Index of the call frame the loop belongs to; loops are popped when their frame returns.
    frame: usize,
}

/// One call frame.
#[derive(Clone, Copy, Debug)]
struct Frame {
    /// The executing function (kept for debugging/tracing output).
    #[allow(dead_code)]
    func: FuncId,
    /// The caller and call site, absent for the root invocation.
    callsite: Option<(FuncId, InstrRef)>,
    /// Loop-stack depth when the frame was pushed (restored on return).
    loop_baseline: usize,
}

/// The profiling observer. Attach to a [`Machine`] run via
/// [`helix_ir::Machine::call_observed`], or use the [`profile_program`] convenience function.
#[derive(Debug)]
pub struct Profiler {
    forests: HashMap<FuncId, LoopForest>,
    header_index: HashMap<(FuncId, BlockId), helix_analysis::LoopId>,
    profile: ProgramProfile,
    frames: Vec<Frame>,
    active_loops: Vec<ActiveLoop>,
}

impl Profiler {
    /// Creates a profiler for `module`, reusing the loop forests of a pre-computed nesting
    /// graph.
    pub fn new(module: &Module, nesting: &LoopNestingGraph) -> Self {
        let forests = nesting.forests.clone();
        let mut header_index = HashMap::new();
        for (func, forest) in &forests {
            for l in forest.iter() {
                header_index.insert((*func, l.header), l.id);
            }
        }
        let _ = module;
        Self {
            forests,
            header_index,
            profile: ProgramProfile::default(),
            frames: Vec::new(),
            active_loops: Vec::new(),
        }
    }

    /// Consumes the profiler and returns the collected profile.
    pub fn finish(self) -> ProgramProfile {
        self.profile
    }

    fn ensure_root_frame(&mut self, func: FuncId) {
        if self.frames.is_empty() {
            self.frames.push(Frame {
                func,
                callsite: None,
                loop_baseline: 0,
            });
            self.profile.functions.entry(func).or_default().invocations += 1;
        }
    }

    fn current_frame_index(&self) -> usize {
        self.frames.len().saturating_sub(1)
    }

    /// Pops loops of the current frame that do not contain `block`.
    fn pop_exited_loops(&mut self, func: FuncId, block: BlockId) {
        let frame = self.current_frame_index();
        while let Some(top) = self.active_loops.last() {
            if top.frame != frame {
                break;
            }
            let (f, lid) = top.key;
            debug_assert_eq!(f, func);
            let still_inside = self
                .forests
                .get(&f)
                .map(|forest| forest.get(lid).contains(block))
                .unwrap_or(false);
            if still_inside {
                break;
            }
            self.active_loops.pop();
        }
    }
}

impl Observer for Profiler {
    fn on_block_enter(&mut self, func: FuncId, block: BlockId) {
        self.ensure_root_frame(func);
        self.pop_exited_loops(func, block);
        let frame = self.current_frame_index();
        if let Some(&lid) = self.header_index.get(&(func, block)) {
            let key = (func, lid);
            let is_new_iteration_of_top = self
                .active_loops
                .last()
                .map(|t| t.frame == frame && t.key == key)
                .unwrap_or(false);
            if is_new_iteration_of_top {
                // Re-entering the header through a back edge completes one iteration. The
                // initial header entry is not counted, so trip counts match body executions.
                self.profile.loops.entry(key).or_default().iterations += 1;
            } else {
                // Entering the loop: record an invocation and a dynamic edge from the
                // enclosing active loop (if any).
                match self.active_loops.last() {
                    Some(parent) => {
                        self.profile.dynamic_edges.insert((parent.key, key));
                    }
                    None => {
                        self.profile.dynamic_roots.insert(key);
                    }
                }
                self.profile.loops.entry(key).or_default().invocations += 1;
                self.active_loops.push(ActiveLoop { key, frame });
            }
        }
    }

    fn on_instr(&mut self, func: FuncId, at: InstrRef, _instr: &Instr, cycles: u64) {
        self.ensure_root_frame(func);
        self.profile.total_cycles += cycles;
        let fp: &mut FunctionProfile = self.profile.functions.entry(func).or_default();
        let ip = fp.instrs.entry(at).or_default();
        ip.count += 1;
        ip.cycles += cycles;
        // Attribute inclusive time to every pending call site up the stack.
        for frame in &self.frames {
            if let Some((caller, site)) = frame.callsite {
                *self
                    .profile
                    .functions
                    .entry(caller)
                    .or_default()
                    .callsite_cycles
                    .entry(site)
                    .or_default() += cycles;
            }
        }
        // Attribute inclusive time to every active loop.
        if self.active_loops.is_empty() {
            self.profile.cycles_outside_loops += cycles;
        } else {
            for l in &self.active_loops {
                self.profile.loops.entry(l.key).or_default().cycles += cycles;
            }
        }
    }

    fn on_call(&mut self, caller: FuncId, at: InstrRef, callee: FuncId) {
        self.ensure_root_frame(caller);
        self.frames.push(Frame {
            func: callee,
            callsite: Some((caller, at)),
            loop_baseline: self.active_loops.len(),
        });
        self.profile
            .functions
            .entry(callee)
            .or_default()
            .invocations += 1;
    }

    fn on_return(&mut self, _func: FuncId) {
        if self.frames.len() > 1 {
            let frame = self.frames.pop().expect("frame stack underflow");
            self.active_loops.truncate(frame.loop_baseline);
        } else {
            // Returning from the root invocation: deactivate all loops.
            self.active_loops.clear();
        }
    }
}

/// Runs `main` of `module` with `args` under the profiler and returns the program profile.
///
/// # Errors
///
/// Returns the interpreter error if the program faults or exhausts its fuel.
pub fn profile_program(
    module: &Module,
    nesting: &LoopNestingGraph,
    main: FuncId,
    args: &[Value],
) -> Result<ProgramProfile, ExecError> {
    let mut machine = Machine::new(module);
    let mut profiler = Profiler::new(module, nesting);
    machine.call_observed(main, args, &mut profiler)?;
    Ok(profiler.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{BinOp, Operand};

    /// main: for i in 0..10 { for j in 0..5 { s += j } }; plus a helper called in the outer
    /// loop whose own loop becomes a dynamic child of the outer loop.
    fn profiled_module() -> (Module, FuncId, LoopNestingGraph) {
        let mut mb = ModuleBuilder::new("prof");
        let helper_id = mb.declare_function("helper", 1);
        let mut helper = FunctionBuilder::new("helper", 1);
        let hn = helper.param(0);
        let acc = helper.new_var();
        helper.const_int(acc, 0);
        let hl = helper.counted_loop(Operand::int(0), Operand::Var(hn), 1);
        helper.binary(
            acc,
            BinOp::Add,
            Operand::Var(acc),
            Operand::Var(hl.induction_var),
        );
        helper.br(hl.latch);
        helper.switch_to(hl.exit);
        helper.ret(Some(Operand::Var(acc)));
        mb.define_function(helper_id, helper.finish());

        let mut main = FunctionBuilder::new("main", 0);
        let s = main.new_var();
        main.const_int(s, 0);
        let outer = main.counted_loop(Operand::int(0), Operand::int(10), 1);
        let inner = main.counted_loop(Operand::int(0), Operand::int(5), 1);
        main.binary(
            s,
            BinOp::Add,
            Operand::Var(s),
            Operand::Var(inner.induction_var),
        );
        main.br(inner.latch);
        main.switch_to(inner.exit);
        let h = main.new_var();
        main.call(Some(h), helper_id, vec![Operand::int(3)]);
        main.binary(s, BinOp::Add, Operand::Var(s), Operand::Var(h));
        main.br(outer.latch);
        main.switch_to(outer.exit);
        main.ret(Some(Operand::Var(s)));
        let main_id = mb.add_function(main.finish());
        let module = mb.finish();
        let nesting = LoopNestingGraph::new(&module);
        (module, main_id, nesting)
    }

    #[test]
    fn loop_counts_match_trip_counts() {
        let (module, main_id, nesting) = profiled_module();
        let profile = profile_program(&module, &nesting, main_id, &[]).unwrap();
        // Identify loops by their per-function forest.
        let main_forest = &nesting.forests[&main_id];
        let outer_id = main_forest.top_level()[0];
        let outer_key = (main_id, outer_id);
        let inner_id = main_forest.get(outer_id).children[0];
        let inner_key = (main_id, inner_id);

        let outer = profile.loop_profile(outer_key);
        assert_eq!(outer.invocations, 1);
        assert_eq!(outer.iterations, 10);
        let inner = profile.loop_profile(inner_key);
        assert_eq!(inner.invocations, 10);
        assert_eq!(inner.iterations, 50);
        assert!(inner.iterations_per_invocation() > 4.9);
        assert!(profile.executed(outer_key));
        assert!(outer.cycles > inner.cycles);
        assert!(profile.total_cycles > outer.cycles);
        assert!(profile.cycles_outside_loops > 0);
    }

    #[test]
    fn dynamic_edges_include_interprocedural_nesting() {
        let (module, main_id, nesting) = profiled_module();
        let helper_id = module.function_by_name("helper").unwrap();
        let profile = profile_program(&module, &nesting, main_id, &[]).unwrap();
        let main_forest = &nesting.forests[&main_id];
        let outer_key = (main_id, main_forest.top_level()[0]);
        let helper_forest = &nesting.forests[&helper_id];
        let helper_key = (helper_id, helper_forest.top_level()[0]);
        // The helper's loop ran inside the outer loop.
        assert!(profile.dynamic_edges.contains(&(outer_key, helper_key)));
        // The outer loop is a dynamic root.
        assert!(profile.dynamic_roots.contains(&outer_key));
        // The helper loop is not a root.
        assert!(!profile.dynamic_roots.contains(&helper_key));
        // Helper loop ran 10 times (once per outer iteration), 3 iterations each.
        let hp = profile.loop_profile(helper_key);
        assert_eq!(hp.invocations, 10);
        assert_eq!(hp.iterations, 30);
    }

    #[test]
    fn callsite_cycles_are_attributed_to_the_caller() {
        let (module, main_id, nesting) = profiled_module();
        let profile = profile_program(&module, &nesting, main_id, &[]).unwrap();
        let fp = &profile.functions[&main_id];
        // Exactly one call site in main, and it accumulated inclusive callee cycles.
        assert_eq!(fp.callsite_cycles.len(), 1);
        let (&site, &cycles) = fp.callsite_cycles.iter().next().unwrap();
        assert!(cycles > 0);
        assert!(fp.inclusive_cycles_of(site) > fp.cycles_of(site));
        // The helper function was invoked 10 times.
        let helper_id = module.function_by_name("helper").unwrap();
        assert_eq!(profile.functions[&helper_id].invocations, 10);
        assert_eq!(profile.functions[&main_id].invocations, 1);
    }

    #[test]
    fn instruction_counts_are_recorded() {
        let (module, main_id, nesting) = profiled_module();
        let profile = profile_program(&module, &nesting, main_id, &[]).unwrap();
        let fp = &profile.functions[&main_id];
        // The store into `s` inside the inner loop body ran 50 times.
        let main_fn = module.function(main_id);
        let add_count: u64 = main_fn
            .instr_refs()
            .filter(|(_, i)| matches!(i, Instr::Binary { op: BinOp::Add, .. }))
            .map(|(r, _)| fp.count_of(r))
            .max()
            .unwrap();
        assert!(add_count >= 50);
        // Total cycles are the sum over functions of per-instruction cycles.
        let summed: u64 = profile
            .functions
            .values()
            .flat_map(|f| f.instrs.values())
            .map(|p| p.cycles)
            .sum();
        assert_eq!(summed, profile.total_cycles);
    }
}
