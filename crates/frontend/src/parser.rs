//! Recursive-descent parser for the textual HIR format.
//!
//! The grammar is exactly what [`helix_ir::printer`] emits (see `docs/hir-grammar.md` for the
//! EBNF). The parser builds a [`Module`] directly and performs the structural checks the
//! printer guarantees by construction — globals and blocks declared in id order, exactly one
//! `(entry)` block per function, registers below the declared `vars` count, branch targets
//! and callees in range — each reported with the 1-based line/column of the offending token.
//! Deeper semantic invariants (terminator placement, dominance of definitions) are left to
//! [`helix_ir::verify`], which [`crate::parse_and_verify`] runs on the parsed result.

use crate::lexer::{lex, Span, Token, TokenKind};
use helix_ir::printer::{binop_mnemonic, pred_mnemonic, unop_mnemonic};
use helix_ir::{
    BasicBlock, BinOp, BlockId, DepId, FuncId, Function, GlobalId, Instr, Module, Operand, Pred,
    UnOp, Value, VarId,
};
use std::fmt;

/// A parse (or lex) error with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Where the offending token starts.
    pub span: Span,
    /// What went wrong, phrased as "expected X, found Y" where possible.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `src` into a [`Module`] without running the IR verifier.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        span: e.span,
        message: e.message,
    })?;
    Parser::new(tokens).module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            span,
            message: message.into(),
        }
    }

    fn error_here(&self, expected: &str) -> ParseError {
        let t = self.peek();
        self.error(
            t.span,
            format!("expected {expected}, found {}", t.kind.describe()),
        )
    }

    fn expect(&mut self, kind: TokenKind, expected: &str) -> Result<Span, ParseError> {
        if self.peek().kind == kind {
            Ok(self.next().span)
        } else {
            Err(self.error_here(expected))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<Span, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == word => Ok(self.next().span),
            _ => Err(self.error_here(&format!("keyword `{word}`"))),
        }
    }

    fn expect_int(&mut self, expected: &str) -> Result<(i64, Span), ParseError> {
        match self.peek().kind {
            TokenKind::Int(i) => {
                let span = self.next().span;
                Ok((i, span))
            }
            _ => Err(self.error_here(expected)),
        }
    }

    /// Parses a module or function name: a bare identifier or a quoted string.
    fn name(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.next();
                Ok(s)
            }
            TokenKind::Str(s) => {
                self.next();
                Ok(s)
            }
            _ => Err(self.error_here(&format!("{what} name (identifier or string)"))),
        }
    }

    /// Parses an identifier of the form `<prefix><digits>` (e.g. `bb3`, `fn0`, `dep2`).
    fn prefixed_id(&mut self, prefix: &str, what: &str) -> Result<(u32, Span), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) if s.starts_with(prefix) => {
                if let Ok(n) = s[prefix.len()..].parse::<u32>() {
                    let span = self.next().span;
                    return Ok((n, span));
                }
                Err(self.error_here(&format!("{what} (`{prefix}N`)")))
            }
            _ => Err(self.error_here(&format!("{what} (`{prefix}N`)"))),
        }
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword("module")?;
        let name = self.name("module")?;
        let mut module = Module::new(name);
        // Call sites referencing functions, checked once the whole module is known.
        let mut call_sites: Vec<(Span, FuncId)> = Vec::new();

        loop {
            match self.peek().kind.clone() {
                TokenKind::Ident(ref s) if s == "global" => {
                    self.global(&mut module)?;
                }
                TokenKind::Ident(ref s) if s == "func" => {
                    let f = self.function(&mut call_sites)?;
                    module.functions.push(f);
                }
                TokenKind::Eof => break,
                _ => return Err(self.error_here("`global`, `func` or end of input")),
            }
        }

        for (span, callee) in call_sites {
            if callee.index() >= module.functions.len() {
                return Err(self.error(
                    span,
                    format!(
                        "call target {callee} does not exist (module has {} functions)",
                        module.functions.len()
                    ),
                ));
            }
        }
        Ok(module)
    }

    fn global(&mut self, module: &mut Module) -> Result<(), ParseError> {
        self.expect_keyword("global")?;
        let (id, id_span) = match self.peek().kind {
            TokenKind::GlobalRef(g) => {
                let span = self.next().span;
                (g, span)
            }
            _ => return Err(self.error_here("a global id (`@gN`)")),
        };
        if id as usize != module.globals.len() {
            return Err(self.error(
                id_span,
                format!(
                    "global ids must be declared in order: expected `@g{}`, found `@g{id}`",
                    module.globals.len()
                ),
            ));
        }
        let name = match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.next();
                s
            }
            _ => return Err(self.error_here("the global's quoted name")),
        };
        self.expect(TokenKind::LBracket, "`[`")?;
        let (words, words_span) = self.expect_int("the global's size in words")?;
        if words < 0 {
            return Err(self.error(words_span, "global size cannot be negative"));
        }
        self.expect_keyword("words")?;
        self.expect(TokenKind::RBracket, "`]`")?;

        let mut init = Vec::new();
        if self.peek().kind == TokenKind::Eq {
            self.next();
            self.expect(TokenKind::LBracket, "`[`")?;
            loop {
                match self.peek().kind {
                    TokenKind::Int(i) => {
                        self.next();
                        init.push(Value::Int(i));
                    }
                    TokenKind::Float(x) => {
                        self.next();
                        init.push(Value::Float(x));
                    }
                    _ => return Err(self.error_here("an initializer value")),
                }
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.next();
                    }
                    TokenKind::RBracket => break,
                    _ => return Err(self.error_here("`,` or `]`")),
                }
            }
            let close = self.expect(TokenKind::RBracket, "`]`")?;
            if init.len() > words as usize {
                return Err(self.error(
                    close,
                    format!(
                        "initializer has {} values but the global only holds {words} words",
                        init.len()
                    ),
                ));
            }
        }

        module.globals.push(helix_ir::Global {
            id: GlobalId::new(id),
            name,
            words: words as usize,
            init,
        });
        Ok(())
    }

    fn function(&mut self, call_sites: &mut Vec<(Span, FuncId)>) -> Result<Function, ParseError> {
        self.expect_keyword("func")?;
        let name = self.name("function")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let (num_params, params_span) = self.expect_int("the parameter count")?;
        if num_params < 0 {
            return Err(self.error(params_span, "parameter count cannot be negative"));
        }
        self.expect_keyword("params")?;
        self.expect(TokenKind::Comma, "`,`")?;
        let (num_vars, vars_span) = self.expect_int("the register count")?;
        self.expect_keyword("vars")?;
        self.expect(TokenKind::RParen, "`)`")?;
        if num_vars < num_params {
            return Err(self.error(
                vars_span,
                format!(
                    "register count ({num_vars}) must cover the {num_params} parameter registers"
                ),
            ));
        }
        self.expect(TokenKind::LBrace, "`{`")?;

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut entry: Option<(BlockId, Span)> = None;
        // Branch targets referencing blocks, checked once the function is complete.
        let mut branch_targets: Vec<(Span, BlockId)> = Vec::new();

        while self.peek().kind != TokenKind::RBrace {
            let (id, id_span) = self.prefixed_id("bb", "a block label")?;
            if id as usize != blocks.len() {
                return Err(self.error(
                    id_span,
                    format!(
                        "block ids must appear in order: expected `bb{}`, found `bb{id}`",
                        blocks.len()
                    ),
                ));
            }
            self.expect(TokenKind::Colon, "`:` after the block label")?;
            let block_id = BlockId::new(id);
            if self.peek().kind == TokenKind::LParen {
                let span = self.next().span;
                self.expect_keyword("entry")?;
                self.expect(TokenKind::RParen, "`)`")?;
                if let Some((first, _)) = entry {
                    return Err(self.error(
                        span,
                        format!("duplicate `(entry)` marker: {first} is already the entry block"),
                    ));
                }
                entry = Some((block_id, span));
            }

            let mut block = BasicBlock::new(block_id);
            loop {
                match self.peek().kind.clone() {
                    TokenKind::RBrace => break,
                    TokenKind::Ident(ref s) if self.is_block_label(s) => break,
                    _ => {}
                }
                let instr = self.instruction(num_vars as usize, call_sites, &mut branch_targets)?;
                block.instrs.push(instr);
            }
            blocks.push(block);
        }
        let close = self.expect(TokenKind::RBrace, "`}`")?;

        if blocks.is_empty() {
            return Err(self.error(close, format!("function `{name}` has no blocks")));
        }
        let Some((entry, _)) = entry else {
            return Err(self.error(
                close,
                format!("function `{name}` has no block marked `(entry)`"),
            ));
        };
        for (span, target) in branch_targets {
            if target.index() >= blocks.len() {
                return Err(self.error(
                    span,
                    format!(
                        "branch target {target} does not exist (function has {} blocks)",
                        blocks.len()
                    ),
                ));
            }
        }

        Ok(Function {
            name,
            num_params: num_params as usize,
            num_vars: num_vars as usize,
            blocks,
            entry,
        })
    }

    /// Is the identifier at the lookahead a `bbN` label followed by `:`?
    fn is_block_label(&self, word: &str) -> bool {
        word.starts_with("bb")
            && word[2..].parse::<u32>().is_ok()
            && self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.kind == TokenKind::Colon)
    }

    fn instruction(
        &mut self,
        num_vars: usize,
        call_sites: &mut Vec<(Span, FuncId)>,
        branch_targets: &mut Vec<(Span, BlockId)>,
    ) -> Result<Instr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Var(_) => {
                let dst = self.register(num_vars)?;
                self.expect(TokenKind::Eq, "`=`")?;
                self.instruction_with_dst(dst, num_vars, call_sites)
            }
            TokenKind::Ident(op) => match op.as_str() {
                "store" => {
                    self.next();
                    let (addr, offset) = self.address(num_vars)?;
                    self.expect(TokenKind::Comma, "`,`")?;
                    let value = self.operand(num_vars)?;
                    Ok(Instr::Store {
                        addr,
                        offset,
                        value,
                    })
                }
                "call" => {
                    self.next();
                    let (callee, args) = self.call_tail(num_vars, call_sites)?;
                    Ok(Instr::Call {
                        dst: None,
                        callee,
                        args,
                    })
                }
                "wait" => {
                    self.next();
                    let (dep, _) = self.prefixed_id("dep", "a dependence id")?;
                    Ok(Instr::Wait {
                        dep: DepId::new(dep),
                    })
                }
                "signal" => {
                    self.next();
                    let (dep, _) = self.prefixed_id("dep", "a dependence id")?;
                    Ok(Instr::Signal {
                        dep: DepId::new(dep),
                    })
                }
                "br" => {
                    self.next();
                    let (target, span) = self.prefixed_id("bb", "a block id")?;
                    let target = BlockId::new(target);
                    branch_targets.push((span, target));
                    Ok(Instr::Br { target })
                }
                "condbr" => {
                    self.next();
                    let cond = self.operand(num_vars)?;
                    self.expect(TokenKind::Comma, "`,`")?;
                    let (then_bb, then_span) = self.prefixed_id("bb", "a block id")?;
                    self.expect(TokenKind::Comma, "`,`")?;
                    let (else_bb, else_span) = self.prefixed_id("bb", "a block id")?;
                    let (then_bb, else_bb) = (BlockId::new(then_bb), BlockId::new(else_bb));
                    branch_targets.push((then_span, then_bb));
                    branch_targets.push((else_span, else_bb));
                    Ok(Instr::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    })
                }
                "ret" => {
                    self.next();
                    let value = if self.starts_operand() {
                        Some(self.operand(num_vars)?)
                    } else {
                        None
                    };
                    Ok(Instr::Ret { value })
                }
                _ => Err(self.error_here("an instruction")),
            },
            _ => Err(self.error_here("an instruction")),
        }
    }

    fn instruction_with_dst(
        &mut self,
        dst: VarId,
        num_vars: usize,
        call_sites: &mut Vec<(Span, FuncId)>,
    ) -> Result<Instr, ParseError> {
        let TokenKind::Ident(op) = self.peek().kind.clone() else {
            return Err(self.error_here("an opcode after `=`"));
        };
        if let Some(pred) = op.strip_prefix("cmp.") {
            let Some(pred) = Pred::ALL.into_iter().find(|p| pred_mnemonic(*p) == pred) else {
                return Err(self.error_here("a comparison predicate (`cmp.eq`, `cmp.lt`, ...)"));
            };
            self.next();
            let lhs = self.operand(num_vars)?;
            self.expect(TokenKind::Comma, "`,`")?;
            let rhs = self.operand(num_vars)?;
            return Ok(Instr::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            });
        }
        if let Some(binop) = BinOp::ALL.into_iter().find(|b| binop_mnemonic(*b) == op) {
            self.next();
            let lhs = self.operand(num_vars)?;
            self.expect(TokenKind::Comma, "`,`")?;
            let rhs = self.operand(num_vars)?;
            return Ok(Instr::Binary {
                dst,
                op: binop,
                lhs,
                rhs,
            });
        }
        if let Some(unop) = UnOp::ALL.into_iter().find(|u| unop_mnemonic(*u) == op) {
            self.next();
            let src = self.operand(num_vars)?;
            return Ok(Instr::Unary { dst, op: unop, src });
        }
        match op.as_str() {
            "const" => {
                self.next();
                let value = self.operand(num_vars)?;
                Ok(Instr::Const { dst, value })
            }
            "copy" => {
                self.next();
                let src = self.operand(num_vars)?;
                Ok(Instr::Copy { dst, src })
            }
            "select" => {
                self.next();
                let cond = self.operand(num_vars)?;
                self.expect(TokenKind::Comma, "`,`")?;
                let on_true = self.operand(num_vars)?;
                self.expect(TokenKind::Comma, "`,`")?;
                let on_false = self.operand(num_vars)?;
                Ok(Instr::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                })
            }
            "load" => {
                self.next();
                let (addr, offset) = self.address(num_vars)?;
                Ok(Instr::Load { dst, addr, offset })
            }
            "alloc" => {
                self.next();
                let words = self.operand(num_vars)?;
                Ok(Instr::Alloc { dst, words })
            }
            "call" => {
                self.next();
                let (callee, args) = self.call_tail(num_vars, call_sites)?;
                Ok(Instr::Call {
                    dst: Some(dst),
                    callee,
                    args,
                })
            }
            _ => Err(self.error(self.peek().span, format!("unknown opcode `{op}`"))),
        }
    }

    /// Parses `fnN(arg, ...)`.
    fn call_tail(
        &mut self,
        num_vars: usize,
        call_sites: &mut Vec<(Span, FuncId)>,
    ) -> Result<(FuncId, Vec<Operand>), ParseError> {
        let (callee, span) = self.prefixed_id("fn", "a function id")?;
        let callee = FuncId::new(callee);
        call_sites.push((span, callee));
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.operand(num_vars)?);
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.next();
                    }
                    TokenKind::RParen => break,
                    _ => return Err(self.error_here("`,` or `)`")),
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok((callee, args))
    }

    /// Parses `[<operand> + <offset>]`.
    fn address(&mut self, num_vars: usize) -> Result<(Operand, i64), ParseError> {
        self.expect(TokenKind::LBracket, "`[`")?;
        let addr = self.operand(num_vars)?;
        self.expect(TokenKind::Plus, "`+`")?;
        let (offset, _) = self.expect_int("a word offset")?;
        self.expect(TokenKind::RBracket, "`]`")?;
        Ok((addr, offset))
    }

    fn starts_operand(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Var(_) | TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::GlobalRef(_)
        )
    }

    fn register(&mut self, num_vars: usize) -> Result<VarId, ParseError> {
        match self.peek().kind {
            TokenKind::Var(v) => {
                let span = self.next().span;
                if v as usize >= num_vars {
                    return Err(self.error(
                        span,
                        format!(
                            "register `%v{v}` is out of range: the function declares {num_vars} vars"
                        ),
                    ));
                }
                Ok(VarId::new(v))
            }
            _ => Err(self.error_here("a register (`%vN`)")),
        }
    }

    fn operand(&mut self, num_vars: usize) -> Result<Operand, ParseError> {
        match self.peek().kind {
            TokenKind::Var(_) => Ok(Operand::Var(self.register(num_vars)?)),
            TokenKind::Int(i) => {
                self.next();
                Ok(Operand::ConstInt(i))
            }
            TokenKind::Float(x) => {
                self.next();
                Ok(Operand::ConstFloat(x))
            }
            TokenKind::GlobalRef(g) => {
                self.next();
                Ok(Operand::Global(GlobalId::new(g)))
            }
            _ => Err(self.error_here("an operand (register, immediate or `@gN`)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_ir::printer::format_module;

    const SMALL: &str = r#"
module demo
global @g0 "acc" [1 words]
func main(0 params, 3 vars) {
bb0: (entry)
  %v0 = const 0
  %v1 = const 10
  br bb1
bb1:
  %v2 = cmp.lt %v0, %v1
  condbr %v2, bb2, bb3
bb2:
  %v0 = add %v0, 1
  store [@g0 + 0], %v0
  br bb1
bb3:
  ret %v0
}
"#;

    #[test]
    fn parses_a_small_module() {
        let m = parse_module(SMALL).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.entry, BlockId::new(0));
        helix_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn parsed_module_round_trips_through_the_printer() {
        let m = parse_module(SMALL).unwrap();
        let printed = format_module(&m);
        let again = parse_module(&printed).unwrap();
        assert_eq!(m, again);
        assert_eq!(printed, format_module(&again));
    }

    #[test]
    fn runs_after_parsing() {
        let m = parse_module(SMALL).unwrap();
        let main = m.function_by_name("main").unwrap();
        let mut machine = helix_ir::Machine::new(&m);
        let out = machine.call(main, &[]).unwrap().unwrap();
        assert_eq!(out.as_int(), 10);
    }

    #[test]
    fn parses_global_initializers_and_floats() {
        let src = "module m\nglobal @g0 \"t\" [4 words] = [1, -2, 2.5f, nanf]\n";
        let m = parse_module(src).unwrap();
        let g = &m.globals[0];
        assert_eq!(g.init[0], Value::Int(1));
        assert_eq!(g.init[1], Value::Int(-2));
        assert_eq!(g.init[2], Value::Float(2.5));
        assert!(matches!(g.init[3], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn parses_calls_with_forward_references() {
        let src = r#"
module m
func main(0 params, 1 vars) {
bb0: (entry)
  %v0 = call fn1(41)
  ret %v0
}
func helper(1 params, 2 vars) {
bb0: (entry)
  %v1 = add %v0, 1
  ret %v1
}
"#;
        let m = parse_module(src).unwrap();
        let main = m.function_by_name("main").unwrap();
        let mut machine = helix_ir::Machine::new(&m);
        assert_eq!(machine.call(main, &[]).unwrap().unwrap().as_int(), 42);
    }

    fn err(src: &str) -> ParseError {
        parse_module(src).unwrap_err()
    }

    #[test]
    fn reports_positions_and_expectations() {
        let e = err("func main");
        assert_eq!((e.span.line, e.span.col), (1, 1));
        assert!(e.message.contains("keyword `module`"), "{e}");

        let e = err("module m\nfunc main(0 params 0 vars) {\nbb0: (entry)\n  ret\n}\n");
        assert_eq!((e.span.line, e.span.col), (2, 20));
        assert!(e.message.contains("expected `,`"), "{e}");

        let e = err(
            "module m\nfunc main(0 params, 1 vars) {\nbb0: (entry)\n  %v4 = const 1\n  ret\n}\n",
        );
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!((e.span.line, e.span.col), (4, 3));

        let e = err("module m\nfunc main(0 params, 0 vars) {\nbb0: (entry)\n  br bb7\n}\n");
        assert!(
            e.message.contains("branch target bb7 does not exist"),
            "{e}"
        );

        let e = err("module m\nfunc main(0 params, 0 vars) {\nbb0:\n  ret\n}\n");
        assert!(e.message.contains("no block marked `(entry)`"), "{e}");

        let e = err("module m\nfunc main(0 params, 1 vars) {\nbb0: (entry)\n  %v0 = frobnicate 1\n  ret\n}\n");
        assert!(e.message.contains("unknown opcode `frobnicate`"), "{e}");

        let e =
            err("module m\nfunc main(0 params, 0 vars) {\nbb0: (entry)\n  call fn3()\n  ret\n}\n");
        assert!(e.message.contains("call target fn3 does not exist"), "{e}");

        let e = err("module m\nglobal @g1 \"x\" [1 words]\n");
        assert!(e.message.contains("declared in order"), "{e}");

        let e = err("module m\nglobal @g0 \"x\" [1 words] = [1, 2]\n");
        assert!(e.message.contains("only holds 1 words"), "{e}");
    }

    #[test]
    fn block_order_is_enforced() {
        let e = err("module m\nfunc main(0 params, 0 vars) {\nbb1: (entry)\n  ret\n}\n");
        assert!(e.message.contains("expected `bb0`, found `bb1`"), "{e}");
    }

    #[test]
    fn duplicate_entry_is_rejected() {
        let e = err(
            "module m\nfunc main(0 params, 0 vars) {\nbb0: (entry)\n  ret\nbb1: (entry)\n  ret\n}\n",
        );
        assert!(e.message.contains("duplicate `(entry)`"), "{e}");
    }
}
