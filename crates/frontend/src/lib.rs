//! # helix-frontend
//!
//! The textual frontend of the HELIX reproduction: a lexer and recursive-descent parser for
//! the `.hir` format, the canonical textual form of [`helix_ir`] modules.
//!
//! The grammar is *defined* as whatever [`helix_ir::printer`] emits: for every module `m`,
//! `parse(print(m)) == m`. This makes the format trivially dumpable from any stage of the
//! pipeline and is enforced by round-trip tests over the whole synthetic workload suite. On
//! top of the printed subset, the lexer also accepts `#` and `;` line comments so the
//! checked-in corpus under `corpus/` can be annotated.
//!
//! Diagnostics carry 1-based line/column spans and "expected X, found Y" messages; see
//! [`parser::ParseError`].
//!
//! ## Quick example
//!
//! ```
//! let src = r#"
//! module example
//! func main(0 params, 1 vars) {
//! bb0: (entry)
//!   %v0 = const 42
//!   ret %v0
//! }
//! "#;
//! let module = helix_frontend::parse_and_verify(src).unwrap();
//! let main = module.function_by_name("main").unwrap();
//! let mut machine = helix_ir::Machine::new(&module);
//! assert_eq!(machine.call(main, &[]).unwrap().unwrap().as_int(), 42);
//! ```

use helix_ir::{verify_module, Module, VerifyError};
use std::fmt;
use std::path::Path;

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Span, Token, TokenKind};
pub use parser::{parse_module, ParseError};

/// Any error produced while loading a textual module.
#[derive(Debug)]
pub enum FrontendError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The text does not conform to the grammar.
    Parse(ParseError),
    /// The text parsed but the module violates an IR invariant.
    Verify(VerifyError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Io(e) => write!(f, "io error: {e}"),
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Verify(e) => write!(f, "verify error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<VerifyError> for FrontendError {
    fn from(e: VerifyError) -> Self {
        FrontendError::Verify(e)
    }
}

impl From<std::io::Error> for FrontendError {
    fn from(e: std::io::Error) -> Self {
        FrontendError::Io(e)
    }
}

/// Parses `src` and runs the IR verifier on the result.
pub fn parse_and_verify(src: &str) -> Result<Module, FrontendError> {
    let module = parse_module(src)?;
    verify_module(&module)?;
    Ok(module)
}

/// Reads, parses and verifies a `.hir` file.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Module, FrontendError> {
    let src = std::fs::read_to_string(path)?;
    parse_and_verify(&src)
}
