//! The `.hir` lexer: source text to a span-carrying token stream.
//!
//! The token set mirrors what `helix_ir::printer` emits (the canonical grammar) plus two
//! conveniences the printer never produces but hand-written corpus files want: `#` and `;`
//! line comments. All spans are 1-based line/column positions pointing at the first
//! character of the token.

use std::fmt;

/// A 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A bare identifier or keyword: `module`, `func`, opcodes, `bb0`, `fn1`, `dep0`, ...
    Ident(String),
    /// A virtual register `%vN`.
    Var(u32),
    /// A global reference `@gN`.
    GlobalRef(u32),
    /// A signed integer literal.
    Int(i64),
    /// A float literal (`2.5f`, `-3f`, `inff`, `nanf`).
    Float(f64),
    /// A quoted string with `\\`, `\"` and `\n` escapes.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Eq,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable rendering used in diagnostics ("found `X`").
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Var(v) => format!("`%v{v}`"),
            TokenKind::GlobalRef(g) => format!("`@g{g}`"),
            TokenKind::Int(i) => format!("`{i}`"),
            TokenKind::Float(x) => format!("`{x}f`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token plus the span of its first character.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// A lexical error with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Where the offending character sits.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes `src` into tokens, ending with a single [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, span: Span, message: impl Into<String>) -> LexError {
        LexError {
            span,
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        while let Some(&c) = self.chars.peek() {
            let span = self.span();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '#' | ';' => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '(' | ')' | '{' | '}' | '[' | ']' | '=' | ',' | ':' | '+' => {
                    self.bump();
                    let kind = match c {
                        '(' => TokenKind::LParen,
                        ')' => TokenKind::RParen,
                        '{' => TokenKind::LBrace,
                        '}' => TokenKind::RBrace,
                        '[' => TokenKind::LBracket,
                        ']' => TokenKind::RBracket,
                        '=' => TokenKind::Eq,
                        ',' => TokenKind::Comma,
                        ':' => TokenKind::Colon,
                        _ => TokenKind::Plus,
                    };
                    tokens.push(Token { kind, span });
                }
                '%' => {
                    self.bump();
                    if self.chars.peek() != Some(&'v') {
                        return Err(self.error(span, "expected `v` after `%` in a register name"));
                    }
                    self.bump();
                    let index = self.lex_index(span, "register")?;
                    tokens.push(Token {
                        kind: TokenKind::Var(index),
                        span,
                    });
                }
                '@' => {
                    self.bump();
                    if self.chars.peek() != Some(&'g') {
                        return Err(self.error(span, "expected `g` after `@` in a global name"));
                    }
                    self.bump();
                    let index = self.lex_index(span, "global")?;
                    tokens.push(Token {
                        kind: TokenKind::GlobalRef(index),
                        span,
                    });
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.error(span, "unterminated string literal")),
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => {
                                    return Err(self.error(
                                        span,
                                        format!(
                                            "invalid escape `\\{}` in string literal",
                                            other.map(String::from).unwrap_or_default()
                                        ),
                                    ))
                                }
                            },
                            Some(c) => s.push(c),
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str(s),
                        span,
                    });
                }
                '-' => {
                    self.bump();
                    match self.chars.peek() {
                        Some(c) if c.is_ascii_digit() => {
                            tokens.push(self.lex_number(span, true)?);
                        }
                        Some('i') => {
                            // The only word the printer emits after `-` is `inff`.
                            let word = self.lex_word();
                            if word == "inff" {
                                tokens.push(Token {
                                    kind: TokenKind::Float(f64::NEG_INFINITY),
                                    span,
                                });
                            } else {
                                return Err(self.error(
                                    span,
                                    format!("expected a number after `-`, found `-{word}`"),
                                ));
                            }
                        }
                        _ => return Err(self.error(span, "expected a number after `-`")),
                    }
                }
                c if c.is_ascii_digit() => {
                    let token = self.lex_number(span, false)?;
                    tokens.push(token);
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word = self.lex_word();
                    let kind = match word.as_str() {
                        // Non-finite float keywords from `printer::format_float`; classified
                        // here so identifiers never start an operand.
                        "inff" => TokenKind::Float(f64::INFINITY),
                        "nanf" => TokenKind::Float(f64::NAN),
                        _ => TokenKind::Ident(word),
                    };
                    tokens.push(Token { kind, span });
                }
                other => {
                    return Err(self.error(span, format!("unexpected character `{other}`")));
                }
            }
        }
        tokens.push(Token {
            kind: TokenKind::Eof,
            span: self.span(),
        });
        Ok(tokens)
    }

    /// Lexes the digits of `%vN` / `@gN`.
    fn lex_index(&mut self, span: Span, what: &str) -> Result<u32, LexError> {
        let mut digits = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.error(span, format!("expected digits in {what} name")));
        }
        digits
            .parse()
            .map_err(|_| self.error(span, format!("{what} index out of range: {digits}")))
    }

    /// Lexes an identifier-shaped word (letters, digits, `_`, `.`).
    fn lex_word(&mut self) -> String {
        let mut word = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    /// Lexes an integer or float literal starting at the current digit.
    fn lex_number(&mut self, span: Span, negative: bool) -> Result<Token, LexError> {
        let mut text = String::new();
        if negative {
            text.push('-');
        }
        let mut is_float = false;
        let mut saw_suffix = false;
        while let Some(&c) = self.chars.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    // Allow a sign right after the exponent marker.
                    if (c == 'e' || c == 'E') && matches!(self.chars.peek(), Some('-' | '+')) {
                        text.push(*self.chars.peek().unwrap());
                        self.bump();
                    }
                }
                'f' => {
                    self.bump();
                    is_float = true;
                    saw_suffix = true;
                    break;
                }
                c if c.is_ascii_alphanumeric() || c == '_' => {
                    return Err(self.error(span, format!("malformed number `{text}{c}...`")));
                }
                _ => break,
            }
        }
        if is_float && !saw_suffix {
            return Err(self.error(
                span,
                format!("float literal `{text}` is missing its `f` suffix"),
            ));
        }
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| self.error(span, format!("malformed float literal `{text}f`")))?;
            Ok(Token {
                kind: TokenKind::Float(value),
                span,
            })
        } else {
            let value: i64 = text.parse().map_err(|_| {
                self.error(
                    span,
                    format!("integer literal `{text}` out of 64-bit range"),
                )
            })?;
            Ok(Token {
                kind: TokenKind::Int(value),
                span,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_canonical_header() {
        let toks = kinds("module prog\nglobal @g0 \"buf\" [32 words]");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("module".into()),
                TokenKind::Ident("prog".into()),
                TokenKind::Ident("global".into()),
                TokenKind::GlobalRef(0),
                TokenKind::Str("buf".into()),
                TokenKind::LBracket,
                TokenKind::Int(32),
                TokenKind::Ident("words".into()),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_instructions_with_registers_and_immediates() {
        let toks = kinds("  %v1 = add %v0, -7\n  store [%v2 + -1], 2.5f");
        assert!(toks.contains(&TokenKind::Var(1)));
        assert!(toks.contains(&TokenKind::Int(-7)));
        assert!(toks.contains(&TokenKind::Int(-1)));
        assert!(toks.contains(&TokenKind::Float(2.5)));
    }

    #[test]
    fn lexes_float_keywords_and_suffixes() {
        assert_eq!(kinds("2f")[0], TokenKind::Float(2.0));
        assert_eq!(kinds("inff")[0], TokenKind::Float(f64::INFINITY));
        assert_eq!(kinds("-inff")[0], TokenKind::Float(f64::NEG_INFINITY));
        match kinds("nanf")[0] {
            TokenKind::Float(x) => assert!(x.is_nan()),
            ref other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("# a comment\nmodule m ; trailing\nfunc");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0], TokenKind::Ident("module".into()));
        assert_eq!(toks[2], TokenKind::Ident("func".into()));
    }

    #[test]
    fn spans_are_one_based_line_and_column() {
        let toks = lex("module m\n  %v0 = const 1").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 1, col: 8 });
        assert_eq!(toks[2].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn string_escapes_roundtrip() {
        let toks = kinds(r#""a\"b\\c\n""#);
        assert_eq!(toks[0], TokenKind::Str("a\"b\\c\n".into()));
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("module m\n  ^bad").unwrap_err();
        assert_eq!(e.span, Span { line: 2, col: 3 });
        assert!(e.message.contains("unexpected character"));
        let e = lex("%x1").unwrap_err();
        assert!(e.message.contains("expected `v`"));
        let e = lex("1.5").unwrap_err();
        assert!(e.message.contains("missing its `f` suffix"));
        let e = lex("99999999999999999999").unwrap_err();
        assert!(e.message.contains("out of 64-bit range"));
        let e = lex("\"unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
