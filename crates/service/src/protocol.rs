//! The `helix serve` wire protocol: length-prefixed UTF-8 frames.
//!
//! Every message — request or response — is one *frame*: a `u32` big-endian byte
//! length followed by that many bytes of UTF-8 text. The text itself is a block of
//! `key=value` header lines, then a blank line, then an optional body (the `.hir`
//! program source for `run` requests; responses have no body).
//!
//! The same framing runs over a Unix socket and over the daemon's stdin/stdout
//! batch mode, so a client library and a shell pipe speak the identical protocol.
//! Frames larger than [`MAX_FRAME`] are rejected before allocation.

use std::fmt;
use std::io::{self, Read, Write};

use helix_ir::Value;

/// Upper bound on a single frame's payload, guarding the length-prefix read.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at a frame
/// boundary; EOF *inside* a frame is an error.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match reader.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    Ok(Some(text))
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame<W: Write>(writer: &mut W, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// What a request asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Compile (or fetch from cache) and execute the body's entry function.
    Run,
    /// Liveness check; answered in FIFO order like any other job.
    Ping,
    /// Report cache and job counters.
    Stats,
    /// Acknowledge, stop accepting jobs, drain the queue, and exit.
    Shutdown,
}

impl Op {
    fn as_str(self) -> &'static str {
        match self {
            Op::Run => "run",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// Fault injection requested by a job (testing hook; see `docs/service.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Fault {
    /// No injected fault.
    #[default]
    None,
    /// Panic inside the worker that claims the given iteration of the parallel loop.
    PanicAt(u64),
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id echoed on the response so concurrent replies can be matched.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Entry function name (`run` only). Defaults to `main`.
    pub entry: String,
    /// Worker-thread override for the parallel executor.
    pub threads: Option<usize>,
    /// Arguments for the entry function.
    pub args: Vec<Value>,
    /// Per-job iteration budget for the parallel loop.
    pub max_iterations: Option<u64>,
    /// Per-job deadline, measured from the moment the daemon accepts the frame. A job
    /// still queued when its deadline lapses is answered `deadline` without running;
    /// `0` means "already expired" and is useful for testing.
    pub deadline_ms: Option<u64>,
    /// Fault injection.
    pub fault: Fault,
    /// The `.hir` program text (`run` only).
    pub source: String,
}

impl Request {
    /// A minimal request for `op` with the given id.
    pub fn new(op: Op, id: u64) -> Request {
        Request {
            id,
            op,
            entry: "main".to_string(),
            threads: None,
            args: Vec::new(),
            max_iterations: None,
            deadline_ms: None,
            fault: Fault::None,
            source: String::new(),
        }
    }

    /// A `run` request for `source`'s `main` with no arguments.
    pub fn run(id: u64, source: &str) -> Request {
        Request {
            source: source.to_string(),
            ..Request::new(Op::Run, id)
        }
    }

    /// Serializes to frame-payload text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("op={}\n", self.op.as_str()));
        out.push_str(&format!("id={}\n", self.id));
        if self.entry != "main" {
            out.push_str(&format!("entry={}\n", self.entry));
        }
        if let Some(t) = self.threads {
            out.push_str(&format!("threads={t}\n"));
        }
        if !self.args.is_empty() {
            let args: Vec<String> = self.args.iter().map(|v| format_value(*v)).collect();
            out.push_str(&format!("args={}\n", args.join(",")));
        }
        if let Some(m) = self.max_iterations {
            out.push_str(&format!("max_iterations={m}\n"));
        }
        if let Some(d) = self.deadline_ms {
            out.push_str(&format!("deadline_ms={d}\n"));
        }
        if let Fault::PanicAt(i) = self.fault {
            out.push_str(&format!("fault=panic:{i}\n"));
        }
        out.push('\n');
        out.push_str(&self.source);
        out
    }

    /// Parses a frame payload. The error string is safe to echo to the client.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let (headers, body) = split_headers(payload);
        let mut req = Request::new(Op::Ping, 0);
        let mut op = None;
        for line in headers.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed header line {line:?}"))?;
            match key {
                "op" => {
                    op = Some(match value {
                        "run" => Op::Run,
                        "ping" => Op::Ping,
                        "stats" => Op::Stats,
                        "shutdown" => Op::Shutdown,
                        other => return Err(format!("unknown op {other:?}")),
                    })
                }
                "id" => req.id = parse_u64(key, value)?,
                "entry" => req.entry = value.to_string(),
                "threads" => req.threads = Some(parse_u64(key, value)? as usize),
                "args" => {
                    req.args = value
                        .split(',')
                        .filter(|t| !t.is_empty())
                        .map(parse_value)
                        .collect::<Result<_, _>>()?
                }
                "max_iterations" => req.max_iterations = Some(parse_u64(key, value)?),
                "deadline_ms" => req.deadline_ms = Some(parse_u64(key, value)?),
                "fault" => {
                    let iter = value
                        .strip_prefix("panic:")
                        .ok_or_else(|| format!("unknown fault {value:?} (want panic:<iter>)"))?;
                    req.fault = Fault::PanicAt(parse_u64("fault", iter)?);
                }
                other => return Err(format!("unknown header {other:?}")),
            }
        }
        req.op = op.ok_or_else(|| "missing op header".to_string())?;
        req.source = body.to_string();
        Ok(req)
    }
}

/// Response status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The job ran to completion.
    Ok,
    /// The job failed (parse/verify error, missing entry, engine fault, deadlock).
    Error,
    /// A worker panicked during the parallel run; the daemon recovered and keeps serving.
    Panic,
    /// The job's deadline lapsed before it was dequeued; it never ran.
    Deadline,
    /// The request frame itself was malformed.
    Protocol,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Panic => "panic",
            Status::Deadline => "deadline",
            Status::Protocol => "protocol",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether the job's prepared image came from the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// Not a `run` request, or the job failed before the cache was consulted.
    #[default]
    NotApplicable,
    /// Served from the content-hash cache (parse/analyze/lower skipped or shared).
    Hit,
    /// Compiled fresh and inserted.
    Miss,
}

impl CacheOutcome {
    fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::NotApplicable => "-",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// One response frame.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Outcome class.
    pub status: Option<Status>,
    /// Cache outcome for `run` jobs.
    pub cache: CacheOutcome,
    /// `parallel` when the job ran on the parallel executor, `sequential` otherwise.
    pub plan: Option<String>,
    /// Formatted return value (`none` when the entry returns nothing).
    pub result: Option<String>,
    /// FNV-1a digest of final program memory (hex), for differential testing.
    pub memory_hash: Option<u64>,
    /// Nanoseconds spent preparing (profile + analyze + transform + lower); `0` on a hit.
    pub prep_ns: Option<u64>,
    /// Nanoseconds spent executing.
    pub exec_ns: Option<u64>,
    /// Human-readable error message (newlines escaped).
    pub error: Option<String>,
    /// Extra `k=v` pairs (the `stats` op reports counters here).
    pub extra: Vec<(String, String)>,
}

impl Response {
    /// A response for `id` with the given status.
    pub fn new(id: u64, status: Status) -> Response {
        Response {
            id,
            status: Some(status),
            ..Response::default()
        }
    }

    /// An error-class response carrying `message`.
    pub fn fail(id: u64, status: Status, message: impl Into<String>) -> Response {
        let mut r = Response::new(id, status);
        r.error = Some(message.into());
        r
    }

    /// Serializes to frame-payload text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("id={}\n", self.id));
        if let Some(s) = self.status {
            out.push_str(&format!("status={}\n", s.as_str()));
        }
        if self.cache != CacheOutcome::NotApplicable {
            out.push_str(&format!("cache={}\n", self.cache.as_str()));
        }
        if let Some(p) = &self.plan {
            out.push_str(&format!("plan={p}\n"));
        }
        if let Some(r) = &self.result {
            out.push_str(&format!("result={r}\n"));
        }
        if let Some(h) = self.memory_hash {
            out.push_str(&format!("memory_hash={h:016x}\n"));
        }
        if let Some(n) = self.prep_ns {
            out.push_str(&format!("prep_ns={n}\n"));
        }
        if let Some(n) = self.exec_ns {
            out.push_str(&format!("exec_ns={n}\n"));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!("error={}\n", escape(e)));
        }
        for (k, v) in &self.extra {
            out.push_str(&format!("{k}={}\n", escape(v)));
        }
        out.push('\n');
        out
    }

    /// Parses a frame payload back into a `Response` (used by clients and tests).
    pub fn parse(payload: &str) -> Result<Response, String> {
        let (headers, _body) = split_headers(payload);
        let mut resp = Response::default();
        for line in headers.lines() {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed header line {line:?}"))?;
            match key {
                "id" => resp.id = parse_u64(key, value)?,
                "status" => {
                    resp.status = Some(match value {
                        "ok" => Status::Ok,
                        "error" => Status::Error,
                        "panic" => Status::Panic,
                        "deadline" => Status::Deadline,
                        "protocol" => Status::Protocol,
                        other => return Err(format!("unknown status {other:?}")),
                    })
                }
                "cache" => {
                    resp.cache = match value {
                        "hit" => CacheOutcome::Hit,
                        "miss" => CacheOutcome::Miss,
                        "-" => CacheOutcome::NotApplicable,
                        other => return Err(format!("unknown cache outcome {other:?}")),
                    }
                }
                "plan" => resp.plan = Some(value.to_string()),
                "result" => resp.result = Some(value.to_string()),
                "memory_hash" => {
                    resp.memory_hash = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|e| format!("bad memory_hash {value:?}: {e}"))?,
                    )
                }
                "prep_ns" => resp.prep_ns = Some(parse_u64(key, value)?),
                "exec_ns" => resp.exec_ns = Some(parse_u64(key, value)?),
                "error" => resp.error = Some(unescape(value)),
                _ => resp.extra.push((key.to_string(), unescape(value))),
            }
        }
        Ok(resp)
    }
}

/// Formats a [`Value`] the way `args=`/`result=` headers carry it.
pub fn format_value(v: Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
    }
}

fn parse_value(token: &str) -> Result<Value, String> {
    if token.contains(['.', 'e', 'E']) || token == "inf" || token == "-inf" || token == "NaN" {
        token
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad float arg {token:?}: {e}"))
    } else {
        token
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad int arg {token:?}: {e}"))
    }
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|e| format!("bad {key} value {value:?}: {e}"))
}

fn split_headers(payload: &str) -> (&str, &str) {
    match payload.split_once("\n\n") {
        Some((h, b)) => (h, b),
        None => (payload, ""),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_encode_and_parse() {
        let mut req = Request::run(42, "module m\nfunc main(0 params, 0 vars) {\n}\n");
        req.entry = "kernel".to_string();
        req.threads = Some(4);
        req.args = vec![Value::Int(-3), Value::Float(1.5)];
        req.max_iterations = Some(1000);
        req.deadline_ms = Some(250);
        req.fault = Fault::PanicAt(7);
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_round_trips_including_escaped_error() {
        let mut resp = Response::new(9, Status::Panic);
        resp.cache = CacheOutcome::Hit;
        resp.plan = Some("parallel".to_string());
        resp.memory_hash = Some(0xdead_beef);
        resp.exec_ns = Some(1234);
        resp.error = Some("worker 1 panicked: line one\nline two \\ backslash".to_string());
        resp.extra.push(("cache_hits".to_string(), "3".to_string()));
        let parsed = Response::parse(&resp.encode()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
