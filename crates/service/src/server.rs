//! The daemon: a FIFO job queue drained by service workers that all share one
//! process-wide [`helix_runtime::WorkerPool`].
//!
//! Two transports feed the same queue — a length-prefixed stdin/stdout batch mode and
//! a Unix socket accept loop — so a shell pipe and a long-lived client see identical
//! semantics. Jobs are answered in completion order (ids match responses to requests);
//! they are *dequeued* in arrival order across all connections, which is the fairness
//! guarantee: a flood from one client cannot starve an earlier request from another.
//!
//! A job whose injected fault (or genuine bug) panics a pool worker gets a structured
//! `panic` response; the pool poisons, respawns on the next submit, and the daemon
//! keeps serving — that recovery path is what the prerequisite bugfix in
//! `helix-runtime` exists for.

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use helix_core::{content_hash, Helix, HelixConfig};
use helix_ir::{ExecImage, ImageMachine, Memory, Value};
use helix_runtime::{
    CalibrationProfile, DispatchTier, ParallelExecutor, ParallelImage, RuntimeError, WorkerPool,
};
use parking_lot::{Condvar, Mutex};

use crate::cache::{raw_hash, CacheStats, ImageCache, ServedImage};
use crate::protocol::{
    read_frame, write_frame, CacheOutcome, Fault, Op, Request, Response, Status,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Capacity of the content-hash image cache.
    pub cache_cap: usize,
    /// Number of service worker threads draining the job queue. Each runs one job at a
    /// time; parallel phases of concurrent jobs serialize on the shared `WorkerPool`,
    /// so this controls prepare/execute overlap, not oversubscription.
    pub service_threads: usize,
    /// Default parallel-executor worker count for jobs that don't send `threads=`.
    pub default_threads: usize,
    /// Default per-job iteration budget for jobs that don't send `max_iterations=`.
    pub max_iterations: u64,
    /// Fuel for the profiling run of a cache miss and for sequential fallback execution.
    pub fuel: u64,
    /// Run the runtime calibrator once at startup and fold its measured costs into the
    /// pipeline's cost model (the daemon analogue of `helix run --calibrate`).
    pub calibrate: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_cap: 64,
            service_threads: 2,
            default_threads: helix_runtime::detect_hardware_threads(),
            max_iterations: 10_000_000,
            fuel: 200_000_000,
            calibrate: true,
        }
    }
}

/// Monotonic job counters, reported by the `stats` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobStats {
    /// Jobs that completed with `status=ok`.
    pub ok: u64,
    /// Jobs answered `error` or `protocol`.
    pub failed: u64,
    /// Jobs whose run panicked (structured recovery).
    pub panicked: u64,
    /// Jobs expired in the queue.
    pub deadline: u64,
}

/// The `helix serve` daemon state. One instance serves any number of transports.
pub struct Server {
    helix: Helix,
    config: ServeConfig,
    cache: ImageCache,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_deadline: AtomicU64,
}

impl Server {
    /// Builds the daemon. When `config.calibrate` is set this runs the runtime
    /// calibrator once (cached per process) before the first job — cache misses are
    /// then priced with measured costs instead of paper constants.
    pub fn new(config: ServeConfig) -> Server {
        let helix = if config.calibrate {
            let calibration = CalibrationProfile::cached();
            Helix::new(calibration.helix_config(HelixConfig::default()))
                .with_cost_model(calibration.cost_model())
        } else {
            Helix::new(HelixConfig::default())
        };
        Server {
            helix,
            cache: ImageCache::new(config.cache_cap),
            config,
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_deadline: AtomicU64::new(0),
        }
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Job counter snapshot.
    pub fn job_stats(&self) -> JobStats {
        JobStats {
            ok: self.jobs_ok.load(Ordering::Relaxed),
            failed: self.jobs_failed.load(Ordering::Relaxed),
            panicked: self.jobs_panicked.load(Ordering::Relaxed),
            deadline: self.jobs_deadline.load(Ordering::Relaxed),
        }
    }

    /// Handles one request synchronously. This is the whole job pipeline minus
    /// transport and queueing — tests drive it directly.
    pub fn handle(&self, req: &Request) -> Response {
        let resp = match req.op {
            Op::Ping => {
                let mut r = Response::new(req.id, Status::Ok);
                r.result = Some("pong".to_string());
                r
            }
            Op::Stats => self.stats_response(req.id),
            Op::Shutdown => Response::new(req.id, Status::Ok),
            Op::Run => {
                // A panic anywhere in the job pipeline must never take down a service
                // worker: the executor already converts pool panics into structured
                // errors, so anything escaping here is a daemon bug — report it as one
                // and keep serving.
                match catch_unwind(AssertUnwindSafe(|| self.run_job(req))) {
                    Ok(resp) => resp,
                    Err(payload) => Response::fail(
                        req.id,
                        Status::Error,
                        format!(
                            "internal error: job pipeline panicked: {}",
                            panic_text(payload.as_ref())
                        ),
                    ),
                }
            }
        };
        match resp.status {
            Some(Status::Ok) => self.jobs_ok.fetch_add(1, Ordering::Relaxed),
            Some(Status::Panic) => self.jobs_panicked.fetch_add(1, Ordering::Relaxed),
            Some(Status::Deadline) => self.jobs_deadline.fetch_add(1, Ordering::Relaxed),
            _ => self.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        resp
    }

    fn stats_response(&self, id: u64) -> Response {
        let cache = self.cache.stats();
        let jobs = self.job_stats();
        let mut r = Response::new(id, Status::Ok);
        let pairs = [
            ("cache_hits", cache.hits),
            ("cache_misses", cache.misses),
            ("cache_evictions", cache.evictions),
            ("cache_entries", cache.entries as u64),
            ("jobs_ok", jobs.ok),
            ("jobs_failed", jobs.failed),
            ("jobs_panicked", jobs.panicked),
            ("jobs_deadline", jobs.deadline),
            ("pool_generation", WorkerPool::global().generation()),
        ];
        for (k, v) in pairs {
            r.extra.push((k.to_string(), v.to_string()));
        }
        // The dispatch engine every parallel job resolves to: `Auto` goes through the
        // process-wide calibration cache, exactly as `run_job`'s executors do, so this
        // is the engine the next job will run on — plus the measured per-op ALU
        // dispatch costs behind the choice.
        let calibration = CalibrationProfile::cached();
        let push = |r: &mut Response, k: &str, v: String| r.extra.push((k.to_string(), v));
        push(
            &mut r,
            "dispatch_tier",
            calibration.selected_tier().to_string(),
        );
        push(
            &mut r,
            "jit_supported",
            helix_runtime::jit_supported().to_string(),
        );
        for (name, tier) in [
            ("calibration_alu_switch_ns", DispatchTier::Switch),
            ("calibration_alu_threaded_ns", DispatchTier::Threaded),
            ("calibration_alu_jit_ns", DispatchTier::Jit),
        ] {
            push(
                &mut r,
                name,
                format!("{:.2}", calibration.dispatch_ns(tier)[0]),
            );
        }
        push(
            &mut r,
            "calibration_ns_per_cycle",
            format!("{:.2}", calibration.ns_per_cycle()),
        );
        r
    }

    /// Cache lookup → (prepare on miss) → execute.
    fn run_job(&self, req: &Request) -> Response {
        let raw = raw_hash(&req.source, &req.entry);
        let (image, outcome) = match self.cache.lookup_raw(raw) {
            Some(image) => (image, CacheOutcome::Hit),
            None => {
                let module = match helix_frontend::parse_and_verify(&req.source) {
                    Ok(m) => m,
                    Err(e) => {
                        return Response::fail(req.id, Status::Error, format!("parse error: {e}"))
                    }
                };
                let Some(entry) = module.function_by_name(&req.entry) else {
                    return Response::fail(
                        req.id,
                        Status::Error,
                        format!("entry function {:?} not found", req.entry),
                    );
                };
                let key = content_hash(&module, &req.entry);
                match self.cache.lookup_canonical(key, raw) {
                    Some(image) => (image, CacheOutcome::Hit),
                    None => {
                        let start = Instant::now();
                        let prepared =
                            match self
                                .helix
                                .prepare(&module, entry, &req.args, self.config.fuel)
                            {
                                Ok(p) => p,
                                Err(e) => {
                                    return Response::fail(
                                        req.id,
                                        Status::Error,
                                        format!("prepare failed: {e}"),
                                    )
                                }
                            };
                        let image = Arc::new(ServedImage {
                            key,
                            entry,
                            entry_name: req.entry.clone(),
                            exec: ExecImage::lower(&module),
                            parallel: prepared.transformed.as_ref().map(ParallelImage::lower),
                            plan_selected: prepared.plan_selected,
                            prep: start.elapsed(),
                        });
                        (self.cache.insert(raw, image), CacheOutcome::Miss)
                    }
                }
            }
        };

        let mut resp = self.execute(req, &image);
        resp.cache = outcome;
        resp.prep_ns = Some(match outcome {
            CacheOutcome::Miss => image.prep.as_nanos() as u64,
            _ => 0,
        });
        resp
    }

    fn execute(&self, req: &Request, image: &ServedImage) -> Response {
        let start = Instant::now();
        let mut resp = match &image.parallel {
            Some(pimg) => {
                let threads = req.threads.unwrap_or(self.config.default_threads).max(1);
                let budget = req.max_iterations.unwrap_or(self.config.max_iterations);
                let mut executor = ParallelExecutor::new(threads)
                    .with_max_iterations(budget)
                    .with_capture_memory(true);
                if let Fault::PanicAt(i) = req.fault {
                    executor = executor.with_injected_panic(i);
                }
                let out = executor.run_parallel_out(pimg, &req.args);
                match out.result {
                    Ok(value) => {
                        let mut r = Response::new(req.id, Status::Ok);
                        r.result = Some(format_result(value));
                        r.memory_hash = out.memory.as_ref().map(memory_digest);
                        r
                    }
                    Err(RuntimeError::WorkerPanicked {
                        worker, message, ..
                    }) => Response::fail(
                        req.id,
                        Status::Panic,
                        format!("worker {worker} panicked: {message}"),
                    ),
                    Err(e) => Response::fail(req.id, Status::Error, e.to_string()),
                }
            }
            None => {
                if let Fault::PanicAt(_) = req.fault {
                    return Response::fail(
                        req.id,
                        Status::Error,
                        "fault injection targets the parallel executor, but no loop of this \
                         program qualified for parallelization",
                    );
                }
                let mut machine = ImageMachine::new(&image.exec);
                machine.set_fuel(self.config.fuel);
                match machine.call(image.entry, &req.args) {
                    Ok(value) => {
                        let mut r = Response::new(req.id, Status::Ok);
                        r.result = Some(format_result(value));
                        r.memory_hash = Some(memory_digest(machine.memory()));
                        r
                    }
                    Err(e) => {
                        Response::fail(req.id, Status::Error, format!("execution failed: {e}"))
                    }
                }
            }
        };
        resp.plan = Some(
            if image.parallel.is_some() {
                "parallel"
            } else {
                "sequential"
            }
            .to_string(),
        );
        resp.exec_ns = Some(start.elapsed().as_nanos() as u64);
        resp
    }

    /// Serves one framed connection: `input` frames are parsed and queued, responses
    /// are written to `output` in completion order. Returns after a `shutdown` frame
    /// (acknowledged immediately; queued jobs drain first) or at input EOF.
    ///
    /// This is both the stdin batch mode (`helix serve --stdio`) and, via
    /// `UnixStream` halves, the per-connection loop of the socket mode.
    pub fn serve_connection<R, W>(&self, mut input: R, output: W)
    where
        R: Read,
        W: Write + Send,
    {
        let queue = JobQueue::new();
        let output = Mutex::new(output);
        let reply = |resp: Response| {
            let _ = write_frame(&mut *output.lock(), &resp.encode());
        };
        std::thread::scope(|scope| {
            for _ in 0..self.config.service_threads.max(1) {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        reply(self.process_queued(job));
                    }
                });
            }
            loop {
                let frame = match read_frame(&mut input) {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(e) => {
                        reply(Response::fail(
                            0,
                            Status::Protocol,
                            format!("bad frame: {e}"),
                        ));
                        break;
                    }
                };
                match Request::parse(&frame) {
                    Ok(req) if req.op == Op::Shutdown => {
                        reply(self.handle(&req));
                        break;
                    }
                    Ok(req) => queue.push(req),
                    Err(e) => reply(Response::fail(0, Status::Protocol, e)),
                }
            }
            queue.close();
        });
    }

    /// Binds `path` and serves socket connections until a `shutdown` frame arrives on
    /// any of them. All connections feed one FIFO queue drained by one set of service
    /// workers, so cross-client fairness is arrival order.
    pub fn serve_unix(&self, path: &Path) -> std::io::Result<()> {
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let queue: SocketQueue = Queue::new();
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..self.config.service_threads.max(1) {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        let resp = self.process_queued(job.job);
                        let _ = write_frame(&mut *job.writer.lock(), &resp.encode());
                    }
                });
            }
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        let queue = &queue;
                        let shutdown = &shutdown;
                        scope.spawn(move || {
                            connection_reader(stream, queue, shutdown, |req| {
                                // `handle` so the ack still ticks counters.
                                self.handle(req)
                            });
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
            queue.close();
        });
        Ok(())
    }

    fn process_queued(&self, job: QueuedJob) -> Response {
        if let Some(deadline) = job.request.deadline_ms {
            if job.accepted.elapsed() >= Duration::from_millis(deadline) {
                // Counters are normally ticked by `handle`; an expired job bypasses it.
                self.jobs_deadline.fetch_add(1, Ordering::Relaxed);
                return Response::fail(
                    job.request.id,
                    Status::Deadline,
                    format!("deadline of {deadline}ms lapsed before the job was dequeued"),
                );
            }
        }
        self.handle(&job.request)
    }
}

/// Socket-mode reader: parses frames from one connection into the shared queue.
fn connection_reader<F>(
    stream: std::os::unix::net::UnixStream,
    queue: &SocketQueue,
    shutdown: &AtomicBool,
    ack: F,
) where
    F: Fn(&Request) -> Response,
{
    let _ = stream.set_nonblocking(false);
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                let resp = Response::fail(0, Status::Protocol, format!("bad frame: {e}"));
                let _ = write_frame(&mut *writer.lock(), &resp.encode());
                return;
            }
        };
        match Request::parse(&frame) {
            Ok(req) if req.op == Op::Shutdown => {
                let resp = ack(&req);
                let _ = write_frame(&mut *writer.lock(), &resp.encode());
                shutdown.store(true, Ordering::Release);
                queue.close();
                return;
            }
            Ok(req) => queue.push_socket(req, Arc::clone(&writer)),
            Err(e) => {
                let resp = Response::fail(0, Status::Protocol, e);
                let _ = write_frame(&mut *writer.lock(), &resp.encode());
            }
        }
    }
}

type SharedWriter = Arc<Mutex<std::os::unix::net::UnixStream>>;

struct QueuedJob {
    request: Request,
    accepted: Instant,
}

struct SocketJob {
    job: QueuedJob,
    writer: SharedWriter,
}

/// FIFO queue: `Mutex<VecDeque>` + `Condvar`. `pop` blocks until a job arrives or the
/// queue is closed *and* drained — closing never drops accepted jobs.
struct Queue<T> {
    state: Mutex<(std::collections::VecDeque<T>, bool)>,
    ready: Condvar,
}

impl<T> Queue<T> {
    fn new() -> Queue<T> {
        Queue {
            state: Mutex::new((std::collections::VecDeque::new(), true)),
            ready: Condvar::new(),
        }
    }

    fn push_item(&self, item: T) {
        let mut state = self.state.lock();
        if state.1 {
            state.0.push_back(item);
            self.ready.notify_one();
        }
    }

    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.0.pop_front() {
                return Some(item);
            }
            if !state.1 {
                return None;
            }
            self.ready.wait(&mut state);
        }
    }

    fn close(&self) {
        self.state.lock().1 = false;
        self.ready.notify_all();
    }
}

struct JobQueue(Queue<QueuedJob>);
type SocketQueue = Queue<SocketJob>;

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue(Queue::new())
    }

    fn push(&self, request: Request) {
        self.0.push_item(QueuedJob {
            request,
            accepted: Instant::now(),
        });
    }

    fn pop(&self) -> Option<QueuedJob> {
        self.0.pop()
    }

    fn close(&self) {
        self.0.close();
    }
}

impl SocketQueue {
    fn push_socket(&self, request: Request, writer: SharedWriter) {
        self.push_item(SocketJob {
            job: QueuedJob {
                request,
                accepted: Instant::now(),
            },
            writer,
        });
    }
}

/// FNV-1a digest of final program memory: heap bounds plus every word's bit pattern
/// (floats by `to_bits`, so the digest is exact, not approximate).
pub fn memory_digest(memory: &Memory) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&memory.heap_base().to_le_bytes());
    eat(&(memory.heap_used() as u64).to_le_bytes());
    for &word in memory.words() {
        match word {
            Value::Int(i) => {
                eat(&[0]);
                eat(&i.to_le_bytes());
            }
            Value::Float(f) => {
                eat(&[1]);
                eat(&f.to_bits().to_le_bytes());
            }
        }
    }
    state
}

fn format_result(value: Option<Value>) -> String {
    match value {
        Some(v) => crate::protocol::format_value(v),
        None => "none".to_string(),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
