//! A minimal synchronous client for the `helix serve` protocol.
//!
//! Works over anything `Read + Write` — a `UnixStream` for the socket mode, or a
//! child process's stdin/stdout pair for the batch mode (see
//! [`Client::from_halves`]). Used by the CLI smoke test and the service bench.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::protocol::{read_frame, write_frame, Request, Response};

/// A framed connection to a daemon.
pub struct Client<R, W> {
    reader: R,
    writer: W,
}

impl Client<std::os::unix::net::UnixStream, std::os::unix::net::UnixStream> {
    /// Connects to a daemon's Unix socket.
    pub fn connect_unix(path: &Path) -> io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: stream,
        })
    }
}

impl<R: Read, W: Write> Client<R, W> {
    /// Wraps independent read/write halves (e.g. a child's stdout/stdin).
    pub fn from_halves(reader: R, writer: W) -> Self {
        Client { reader, writer }
    }

    /// Sends a request frame without waiting for the response (responses arrive in
    /// completion order; match them to requests by id).
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &request.encode())
    }

    /// Reads the next response frame; `None` at EOF.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        match read_frame(&mut self.reader)? {
            Some(payload) => Response::parse(&payload)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Ok(None),
        }
    }

    /// Sends one request and blocks for the next response. Only safe when no other
    /// requests are in flight on this connection (otherwise ids may interleave).
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"))
    }
}
