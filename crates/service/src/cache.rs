//! Bounded LRU cache of prepared program images, keyed by content hash.
//!
//! Keying is two-level:
//!
//! * the **canonical key** is [`helix_core::content_hash`] — FNV-1a over the module's
//!   canonical printed form plus the entry name. Two textually different `.hir` files
//!   that print identically share one cache entry (and one prepared image);
//! * a **raw index** maps the FNV-1a hash of the request's literal source text (plus
//!   entry name) to the canonical key, so resubmitting the *same bytes* skips even the
//!   parse. A miss on the raw index falls through to parse + canonical lookup, which
//!   still skips analyze/transform/lower on a canonical hit.
//!
//! Eviction is least-recently-used over canonical keys; evicting an entry purges every
//! raw-index alias that points at it, so the raw index can never resurrect an evicted
//! image. All counters are monotonic and exposed via [`ImageCache::stats`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use helix_ir::{ExecImage, FuncId};
use helix_runtime::ParallelImage;
use parking_lot::Mutex;

/// FNV-1a 64-bit over `bytes`, continuing from `state`. Matches the constants used by
/// [`helix_core::content_hash`] — stable across processes, unlike `DefaultHasher`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Hash of the literal request text + entry name: the raw-index key.
pub fn raw_hash(source: &str, entry: &str) -> u64 {
    let state = fnv1a(FNV_OFFSET, source.as_bytes());
    fnv1a(fnv1a(state, &[0u8]), entry.as_bytes())
}

/// A fully prepared program: everything the daemon needs to execute a job without
/// touching the frontend or the pipeline again.
pub struct ServedImage {
    /// Canonical content-hash key this entry is cached under.
    pub key: u64,
    /// Entry function id in `exec`.
    pub entry: FuncId,
    /// Entry function name.
    pub entry_name: String,
    /// Sequential engine image of the *original* module (fallback when no loop
    /// qualified, and the oracle for differential testing).
    pub exec: ExecImage,
    /// Lowered parallel image of the transformed clone, when a plan exists.
    pub parallel: Option<ParallelImage>,
    /// Was the plan chosen by the Section 2.2 selection (vs. hottest-candidate fallback)?
    pub plan_selected: bool,
    /// Wall time spent preparing this entry (profile + analyze + transform + lower).
    pub prep: Duration,
}

/// Monotonic counter snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (raw or canonical level).
    pub hits: u64,
    /// Lookups that required a full prepare.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    /// Canonical key → prepared image.
    entries: HashMap<u64, Arc<ServedImage>>,
    /// Raw text hash → canonical key.
    raw_index: HashMap<u64, u64>,
    /// LRU order of canonical keys; front is the next eviction victim.
    order: VecDeque<u64>,
}

/// The bounded LRU image cache. All methods are safe to call concurrently.
pub struct ImageCache {
    cap: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ImageCache {
    /// A cache holding at most `cap` prepared images (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> ImageCache {
        ImageCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                raw_index: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fast path: look up by the raw text hash, skipping even the parse. Counts a hit
    /// when found; counts *nothing* when absent (the canonical lookup decides miss).
    pub fn lookup_raw(&self, raw: u64) -> Option<Arc<ServedImage>> {
        let mut inner = self.inner.lock();
        let key = *inner.raw_index.get(&raw)?;
        let image = Arc::clone(inner.entries.get(&key)?);
        touch(&mut inner.order, key);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(image)
    }

    /// Canonical-level lookup after a parse. On a hit the raw hash is recorded as an
    /// alias so the next identical submission takes the raw fast path; on absence the
    /// miss counter ticks and the caller must prepare + [`insert`](Self::insert).
    pub fn lookup_canonical(&self, key: u64, raw: u64) -> Option<Arc<ServedImage>> {
        let mut inner = self.inner.lock();
        match inner.entries.get(&key) {
            Some(image) => {
                let image = Arc::clone(image);
                inner.raw_index.insert(raw, key);
                touch(&mut inner.order, key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(image)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly prepared image, evicting the least-recently-used entry (and
    /// purging its raw-index aliases) if the capacity bound would be exceeded. If a
    /// concurrent job prepared the same canonical key first, the existing entry wins
    /// (so all holders share one image) and only the raw alias is added.
    pub fn insert(&self, raw: u64, image: Arc<ServedImage>) -> Arc<ServedImage> {
        let key = image.key;
        let mut inner = self.inner.lock();
        let image = match inner.entries.get(&key) {
            Some(existing) => Arc::clone(existing),
            None => {
                inner.entries.insert(key, Arc::clone(&image));
                inner.order.push_back(key);
                while inner.entries.len() > self.cap {
                    // The victim can't be `key`: cap ≥ 1 and `key` was just pushed to
                    // the back, so the front is always an older entry.
                    let Some(victim) = inner.order.pop_front() else {
                        break;
                    };
                    inner.entries.remove(&victim);
                    inner.raw_index.retain(|_, k| *k != victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                image
            }
        };
        inner.raw_index.insert(raw, key);
        image
    }

    /// Snapshot of the monotonic counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().entries.len(),
        }
    }
}

fn touch(order: &mut VecDeque<u64>, key: u64) {
    if let Some(pos) = order.iter().position(|k| *k == key) {
        order.remove(pos);
    }
    order.push_back(key);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(key: u64) -> Arc<ServedImage> {
        let module =
            helix_frontend::parse_and_verify("module m\nfunc main(0 params, 1 vars) {\nbb0: (entry)\n  %v0 = const 0\n  ret %v0\n}\n")
                .unwrap();
        Arc::new(ServedImage {
            key,
            entry: module.function_by_name("main").unwrap(),
            entry_name: "main".to_string(),
            exec: ExecImage::lower(&module),
            parallel: None,
            plan_selected: false,
            prep: Duration::ZERO,
        })
    }

    #[test]
    fn eviction_purges_raw_aliases_and_counts() {
        let cache = ImageCache::new(2);
        cache.insert(100, dummy(1));
        cache.insert(200, dummy(2));
        // Touch key 1 so key 2 becomes the LRU victim.
        assert!(cache.lookup_raw(100).is_some());
        cache.insert(300, dummy(3));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // Key 2 was evicted: its raw alias must not resurrect it.
        assert!(cache.lookup_raw(200).is_none());
        assert!(cache.lookup_canonical(2, 200).is_none());
        // Keys 1 and 3 survive.
        assert!(cache.lookup_raw(100).is_some());
        assert!(cache.lookup_raw(300).is_some());
    }

    #[test]
    fn canonical_hit_installs_raw_alias() {
        let cache = ImageCache::new(4);
        cache.insert(100, dummy(1));
        // A textual variant (different raw hash, same canonical key) hits at the
        // canonical level and installs its own alias.
        assert!(cache.lookup_raw(101).is_none());
        assert!(cache.lookup_canonical(1, 101).is_some());
        assert!(cache.lookup_raw(101).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 0);
    }
}
