//! # helix-service
//!
//! The `helix serve` daemon: a long-running process that accepts `.hir` jobs over a
//! Unix socket or a length-prefixed stdin/stdout batch protocol, keeps a bounded LRU
//! **content-hash cache** of prepared images (verified + analyzed + transformed +
//! lowered, priced by the startup calibration), and multiplexes many concurrent loop
//! executions over the one process-wide [`helix_runtime::WorkerPool`] with FIFO
//! fairness and per-job deadline/iteration budgets.
//!
//! The three layers, each in its own module:
//!
//! * [`protocol`] — the framed `key=value` wire format shared by both transports;
//! * [`cache`] — the two-level content-hash cache: a raw-text index (identical
//!   resubmission skips even the parse) in front of canonical keys derived from the
//!   module's printed form ([`helix_core::content_hash`]), with LRU eviction that
//!   purges stale raw aliases;
//! * [`server`] — the FIFO job queue, service workers, both transports, and the
//!   execute path that turns pool worker panics into structured `panic` responses
//!   while the daemon keeps serving (the recovery behavior the prerequisite
//!   `helix-runtime` bugfix guarantees);
//! * [`client`] — a small synchronous client used by tests, the bench, and scripts.
//!
//! Protocol and operational details are documented in `docs/service.md`.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{raw_hash, CacheStats, ImageCache, ServedImage};
pub use client::Client;
pub use protocol::{
    read_frame, write_frame, CacheOutcome, Fault, Op, Request, Response, Status, MAX_FRAME,
};
pub use server::{memory_digest, JobStats, ServeConfig, Server};
