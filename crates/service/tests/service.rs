//! End-to-end tests of the `helix serve` daemon: differential cold/warm caching,
//! eviction, structured panic recovery, deadlines, and the framed batch transport.

use std::os::unix::net::UnixStream;

use helix_service::{
    CacheOutcome, Client, Fault, Op, Request, Response, ServeConfig, Server, Status,
};

/// A program with a DOALL-style hot loop (parallelizable) followed by a sequential
/// checksum reduction. `seed` varies the content hash without changing the shape.
fn doall(seed: i64) -> String {
    format!(
        r#"module service_test
global @g0 "arr" [64 words]
global @g1 "acc" [1 words]
func main(0 params, 8 vars) {{
bb0: (entry)
  %v0 = const 0
  br bb1
bb1:
  %v1 = cmp.lt %v0, 64
  condbr %v1, bb2, bb3
bb2:
  %v2 = add @g0, %v0
  %v3 = mul %v0, {seed}
  %v3 = xor %v3, 40503
  %v3 = mul %v3, 31
  %v3 = xor %v3, 99991
  store [%v2 + 0], %v3
  %v0 = add %v0, 1
  br bb1
bb3:
  %v0 = const 0
  br bb4
bb4:
  %v1 = cmp.lt %v0, 64
  condbr %v1, bb5, bb6
bb5:
  %v2 = add @g0, %v0
  %v4 = load [%v2 + 0]
  %v5 = load [@g1 + 0]
  %v5 = add %v5, %v4
  store [@g1 + 0], %v5
  %v0 = add %v0, 1
  br bb4
bb6:
  %v5 = load [@g1 + 0]
  ret %v5
}}
"#
    )
}

/// Straight-line program with no loop: exercises the sequential fallback.
const SEQ_ONLY: &str = "module seq_only\n\
func main(0 params, 2 vars) {\n\
bb0: (entry)\n\
  %v0 = const 21\n\
  %v1 = mul %v0, 2\n\
  ret %v1\n\
}\n";

fn test_server(cache_cap: usize) -> Server {
    Server::new(ServeConfig {
        cache_cap,
        service_threads: 2,
        default_threads: 2,
        max_iterations: 1_000_000,
        fuel: 10_000_000,
        calibrate: false,
    })
}

#[test]
fn cold_then_warm_is_bitwise_identical_and_hits_cache() {
    let server = test_server(4);
    let req = Request::run(1, &doall(2654435761));

    let cold = server.handle(&req);
    assert_eq!(cold.status, Some(Status::Ok), "cold: {:?}", cold.error);
    assert_eq!(cold.cache, CacheOutcome::Miss);
    assert_eq!(cold.plan.as_deref(), Some("parallel"));
    assert!(
        cold.prep_ns.unwrap() > 0,
        "cold run must report prepare time"
    );
    assert!(cold.result.is_some() && cold.memory_hash.is_some());

    let warm = server.handle(&Request::run(2, &doall(2654435761)));
    assert_eq!(warm.status, Some(Status::Ok));
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.prep_ns, Some(0), "a hit skips prepare entirely");
    // Bitwise-identical: same formatted result AND same memory digest.
    assert_eq!(warm.result, cold.result);
    assert_eq!(warm.memory_hash, cold.memory_hash);

    let stats = server.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn canonically_equal_variant_shares_the_cached_image() {
    let server = test_server(4);
    let base = doall(7777);
    let variant = format!("# a leading comment changes the text, not the program\n{base}");
    assert_ne!(
        helix_service::raw_hash(&base, "main"),
        helix_service::raw_hash(&variant, "main")
    );

    let cold = server.handle(&Request::run(1, &base));
    let warm = server.handle(&Request::run(2, &variant));
    assert_eq!(cold.status, Some(Status::Ok), "cold: {:?}", cold.error);
    assert_eq!(
        warm.cache,
        CacheOutcome::Hit,
        "comments don't change the canonical print, so this must hit"
    );
    assert_eq!(warm.result, cold.result);
    assert_eq!(warm.memory_hash, cold.memory_hash);
    assert_eq!(server.cache_stats().entries, 1);
}

#[test]
fn eviction_under_two_entry_cap_relowers_correctly() {
    let server = test_server(2);
    let first = server.handle(&Request::run(1, &doall(1001)));
    assert_eq!(first.status, Some(Status::Ok), "first: {:?}", first.error);

    // Two more distinct programs evict the first (cap is 2, LRU).
    assert_eq!(
        server.handle(&Request::run(2, &doall(1002))).cache,
        CacheOutcome::Miss
    );
    assert_eq!(
        server.handle(&Request::run(3, &doall(1003))).cache,
        CacheOutcome::Miss
    );
    let stats = server.cache_stats();
    assert!(stats.evictions >= 1, "cap 2 with 3 programs must evict");
    assert_eq!(stats.entries, 2);

    // The evicted program re-prepares (miss) and still computes the same answer.
    let again = server.handle(&Request::run(4, &doall(1001)));
    assert_eq!(
        again.cache,
        CacheOutcome::Miss,
        "evicted entry must re-lower"
    );
    assert_eq!(again.status, Some(Status::Ok));
    assert_eq!(again.result, first.result);
    assert_eq!(again.memory_hash, first.memory_hash);
}

#[test]
fn sequential_fallback_runs_and_caches() {
    let server = test_server(4);
    let cold = server.handle(&Request::run(1, SEQ_ONLY));
    assert_eq!(cold.status, Some(Status::Ok), "cold: {:?}", cold.error);
    assert_eq!(cold.plan.as_deref(), Some("sequential"));
    assert_eq!(cold.result.as_deref(), Some("42"));
    let warm = server.handle(&Request::run(2, SEQ_ONLY));
    assert_eq!(warm.cache, CacheOutcome::Hit);
    assert_eq!(warm.memory_hash, cold.memory_hash);
}

#[test]
fn fault_injected_panic_is_structured_and_daemon_keeps_serving() {
    let server = test_server(4);
    let mut faulty = Request::run(1, &doall(31337));
    faulty.fault = Fault::PanicAt(7);
    faulty.threads = Some(2);

    let resp = server.handle(&faulty);
    assert_eq!(resp.status, Some(Status::Panic), "got: {resp:?}");
    let error = resp.error.unwrap();
    assert!(
        error.contains("injected fault"),
        "panic payload must reach the client: {error}"
    );

    // Same daemon, same cached image, no fault: the pool recovered.
    let clean = server.handle(&Request::run(2, &doall(31337)));
    assert_eq!(
        clean.status,
        Some(Status::Ok),
        "after panic: {:?}",
        clean.error
    );
    assert_eq!(clean.cache, CacheOutcome::Hit);
    assert_eq!(server.job_stats().panicked, 1);
}

#[test]
fn batch_transport_answers_every_id_with_fifo_deadlines_and_shutdown() {
    let server = test_server(8);
    let (daemon_side, client_side) = UnixStream::pair().unwrap();

    std::thread::scope(|scope| {
        // The thread must *own* the daemon-side socket: every daemon FD has to drop
        // when serving ends, or the client's recv loop below never sees EOF.
        scope.spawn(|| {
            let daemon_side = daemon_side;
            let input = daemon_side.try_clone().unwrap();
            server.serve_connection(input, &daemon_side);
        });

        let reader = client_side.try_clone().unwrap();
        let mut client = Client::from_halves(reader, &client_side);

        // A mix: runs (warm + cold), a ping, an expired deadline, a fault, stats.
        let program = doall(99);
        client.send(&Request::run(1, &program)).unwrap();
        client.send(&Request::run(2, &program)).unwrap();
        client.send(&Request::new(Op::Ping, 3)).unwrap();
        let mut expired = Request::run(4, &program);
        expired.deadline_ms = Some(0);
        client.send(&expired).unwrap();
        let mut faulty = Request::run(5, &program);
        faulty.fault = Fault::PanicAt(3);
        client.send(&faulty).unwrap();
        client.send(&Request::new(Op::Stats, 6)).unwrap();
        client.send(&Request::new(Op::Shutdown, 7)).unwrap();

        let mut responses: Vec<Response> = Vec::new();
        while let Some(resp) = client.recv().unwrap() {
            responses.push(resp);
        }
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![1, 2, 3, 4, 5, 6, 7],
            "every request must be answered"
        );

        let by_id = |id: u64| responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(
            by_id(1).status,
            Some(Status::Ok),
            "id 1: {:?}",
            by_id(1).error
        );
        assert_eq!(by_id(2).status, Some(Status::Ok));
        assert_eq!(by_id(2).result, by_id(1).result);
        assert_eq!(by_id(3).status, Some(Status::Ok));
        assert_eq!(by_id(4).status, Some(Status::Deadline));
        assert_eq!(by_id(5).status, Some(Status::Panic));
        assert_eq!(by_id(6).status, Some(Status::Ok));
        // Stats report the dispatch engine jobs resolve to, plus the calibration
        // summary behind the choice (per-tier ALU dispatch costs).
        let stats = by_id(6);
        let extra = |k: &str| {
            stats
                .extra
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        let tier = extra("dispatch_tier").expect("stats report a dispatch tier");
        assert!(
            ["switch", "threaded", "jit"].contains(&tier),
            "resolved tier, never auto: {tier}"
        );
        for key in [
            "jit_supported",
            "calibration_alu_switch_ns",
            "calibration_alu_threaded_ns",
            "calibration_alu_jit_ns",
            "calibration_ns_per_cycle",
        ] {
            assert!(extra(key).is_some(), "stats missing {key}");
        }
        assert_eq!(by_id(7).status, Some(Status::Ok));
    });

    // At least one of the two identical runs hit the cache.
    assert!(server.cache_stats().hits >= 1);
}

#[test]
fn unix_socket_transport_serves_and_shuts_down() {
    let server = test_server(4);
    let dir = std::env::temp_dir().join(format!("helix-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("helix.sock");
    let _ = std::fs::remove_file(&socket);

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_unix(&socket).unwrap());

        // Wait for the socket to appear.
        let mut client = loop {
            match Client::connect_unix(&socket) {
                Ok(c) => break c,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let resp = client.request(&Request::run(1, &doall(555))).unwrap();
        assert_eq!(
            resp.status,
            Some(Status::Ok),
            "socket run: {:?}",
            resp.error
        );
        let resp = client.request(&Request::run(2, &doall(555))).unwrap();
        assert_eq!(resp.cache, CacheOutcome::Hit);
        let resp = client.request(&Request::new(Op::Shutdown, 3)).unwrap();
        assert_eq!(resp.status, Some(Status::Ok));
        handle.join().unwrap();
    });
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir(&dir);
}
