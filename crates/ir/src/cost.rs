//! Per-instruction cycle cost model.
//!
//! The HELIX evaluation is driven by cycle counts: how many cycles an iteration spends in
//! parallel code vs. sequential segments, how many cycles a signal takes to cross cores
//! (110 on the paper's i7-980X), and how many it takes when fully prefetched (4, an L1 hit).
//! This module provides the *intra-core* cost model used by the interpreter and profiler;
//! the *inter-core* latencies live in `helix-simulator`.

use crate::instr::Instr;
use serde::{Deserialize, Serialize};

/// Cycle costs charged per executed instruction.
///
/// The defaults approximate a modern out-of-order core at the granularity the HELIX speedup
/// model needs: single-cycle ALU operations, a few cycles for multiplies and L1 hits, tens of
/// cycles for divisions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of simple ALU operations, copies, constants and comparisons.
    pub alu: u64,
    /// Cost of integer/float multiplication.
    pub mul: u64,
    /// Cost of division and remainder.
    pub div: u64,
    /// Cost of a load that hits in the first-level cache.
    pub load: u64,
    /// Cost of a store.
    pub store: u64,
    /// Fixed overhead of a call (argument setup + return).
    pub call: u64,
    /// Cost of an allocation request.
    pub alloc: u64,
    /// Cost of a branch.
    pub branch: u64,
    /// Cost of executing a `Wait` whose signal is already locally available (L1 hit).
    ///
    /// This is the paper's fully-prefetched signal latency (4 cycles).
    pub wait_local: u64,
    /// Cost of executing a `Signal` (a store into the successor's thread memory buffer).
    pub signal: u64,
}

impl CostModel {
    /// The cost model used throughout the evaluation, with the paper's measured constants
    /// where the paper reports them.
    pub const fn intel_i7_980x() -> Self {
        Self {
            alu: 1,
            mul: 3,
            div: 20,
            load: 4,
            store: 1,
            call: 10,
            alloc: 12,
            branch: 1,
            wait_local: 4,
            signal: 1,
        }
    }

    /// A uniform unit-cost model, useful for tests that count instructions rather than cycles.
    pub const fn unit() -> Self {
        Self {
            alu: 1,
            mul: 1,
            div: 1,
            load: 1,
            store: 1,
            call: 1,
            alloc: 1,
            branch: 1,
            wait_local: 1,
            signal: 1,
        }
    }

    /// Returns the cycle cost of one dynamic execution of `instr`.
    pub fn cost(&self, instr: &Instr) -> u64 {
        use crate::instr::BinOp;
        match instr {
            Instr::Const { .. }
            | Instr::Copy { .. }
            | Instr::Unary { .. }
            | Instr::Cmp { .. }
            | Instr::Select { .. } => self.alu,
            Instr::Binary { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::Div | BinOp::Rem => self.div,
                _ => self.alu,
            },
            Instr::Load { .. } => self.load,
            Instr::Store { .. } => self.store,
            Instr::Alloc { .. } => self.alloc,
            Instr::Call { .. } => self.call,
            Instr::Wait { .. } => self.wait_local,
            Instr::Signal { .. } => self.signal,
            Instr::Br { .. } | Instr::CondBr { .. } | Instr::Ret { .. } => self.branch,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::intel_i7_980x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DepId, VarId};
    use crate::instr::{BinOp, Operand};

    #[test]
    fn default_is_i7() {
        assert_eq!(CostModel::default(), CostModel::intel_i7_980x());
        assert_eq!(CostModel::default().wait_local, 4);
    }

    #[test]
    fn binary_costs_depend_on_operator() {
        let m = CostModel::intel_i7_980x();
        let add = Instr::Binary {
            dst: VarId::new(0),
            op: BinOp::Add,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        let mul = Instr::Binary {
            dst: VarId::new(0),
            op: BinOp::Mul,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        let div = Instr::Binary {
            dst: VarId::new(0),
            op: BinOp::Div,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        assert!(m.cost(&add) < m.cost(&mul));
        assert!(m.cost(&mul) < m.cost(&div));
    }

    #[test]
    fn unit_model_charges_one_everywhere() {
        let m = CostModel::unit();
        let wait = Instr::Wait { dep: DepId::new(0) };
        let load = Instr::Load {
            dst: VarId::new(0),
            addr: Operand::int(1),
            offset: 0,
        };
        assert_eq!(m.cost(&wait), 1);
        assert_eq!(m.cost(&load), 1);
    }
}
