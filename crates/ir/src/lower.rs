//! Lowering a verified [`Module`] into an immutable, execution-ready [`ExecImage`].
//!
//! The tree-walking interpreter in [`crate::interp`] re-traverses the `Instr` enum tree and
//! chases `Function`/`BlockId` indirections on every dynamic instruction. For the hot paths —
//! profiling runs, the parallel runtime, differential corpus sweeps — that overhead dominates.
//! Lowering compiles each function once into *flat bytecode*:
//!
//! * one contiguous [`Op`] stream per function, with blocks laid out in id order,
//! * branch targets pre-resolved to program counters (plus the dense target block index, so
//!   per-block statistics and block-stepping executors need no reverse lookup),
//! * operands pre-resolved: virtual registers become dense `u32` indices, global bases are
//!   folded into integer immediates at lowering time,
//! * a per-op cost class, so an engine can charge cycles with one table lookup instead of
//!   re-classifying the instruction,
//! * per-block op ranges and a `pc → InstrRef` side table that lets profilers keep dense
//!   per-pc counters and fold them back to IR instruction references only when reporting.
//!
//! Lowering is a pure representation change: it never adds, removes, fuses or reorders
//! instructions, so dynamic instruction counts, cycle charges and observable effects are
//! identical to the tree-walking interpreter (this is enforced by `tests/exec_differential.rs`).

use crate::function::Function;
use crate::ids::{BlockId, FuncId, InstrRef};
use crate::instr::{BinOp, Instr, Operand, Pred, UnOp};
use crate::memory::Memory;
use crate::module::Module;

/// A pre-resolved operand of the flat bytecode: a dense register index or an immediate.
///
/// Global base addresses are folded into [`Opnd::Int`] during lowering, so the engine never
/// consults the module's global layout on the hot path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Opnd {
    /// Read of register `r`.
    Reg(u32),
    /// A 64-bit integer immediate (also used for folded global base addresses).
    Int(i64),
    /// A 64-bit float immediate.
    Float(f64),
}

/// One flat bytecode operation.
///
/// The variants mirror [`Instr`] one-to-one except that control flow carries pre-resolved
/// program counters and block indices, and `Const`/`Copy` collapse into [`Op::Mov`] (they had
/// identical semantics already).
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `dst = src` (lowered `Const` and `Copy`).
    Mov {
        /// Destination register.
        dst: u32,
        /// Source operand.
        src: Opnd,
    },
    /// `dst = op src`.
    Un {
        /// Destination register.
        dst: u32,
        /// Operator.
        op: UnOp,
        /// Source operand.
        src: Opnd,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Destination register.
        dst: u32,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
    },
    /// `dst = lhs pred rhs`, producing 0 or 1.
    Cmp {
        /// Destination register.
        dst: u32,
        /// Predicate.
        pred: Pred,
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
    },
    /// `dst = cond ? on_true : on_false`.
    Select {
        /// Destination register.
        dst: u32,
        /// Condition operand.
        cond: Opnd,
        /// Value when the condition is true.
        on_true: Opnd,
        /// Value when the condition is false.
        on_false: Opnd,
    },
    /// `dst = mem[addr + offset]`.
    Load {
        /// Destination register.
        dst: u32,
        /// Base address operand.
        addr: Opnd,
        /// Constant word offset.
        offset: i64,
    },
    /// `mem[addr + offset] = value`.
    Store {
        /// Base address operand.
        addr: Opnd,
        /// Constant word offset.
        offset: i64,
        /// Value to store.
        value: Opnd,
    },
    /// `dst = alloc(words)`.
    Alloc {
        /// Destination register receiving the base address.
        dst: u32,
        /// Number of words to allocate.
        words: Opnd,
    },
    /// `dst = alloc(words)` for an allocation the privatization analysis proved
    /// thread-private: the parallel runtime serves it from a per-worker bump arena instead of
    /// shared memory. [`ExecImage::lower`] never emits this variant — only the parallel-image
    /// re-lowering does — and sequential contexts treat it exactly like [`Op::Alloc`]
    /// (see [`crate::interp::Context::alloc_private`]).
    PrivateAlloc {
        /// Destination register receiving the base address.
        dst: u32,
        /// Number of words to allocate.
        words: Opnd,
    },
    /// Direct call `dst = func(args...)`.
    Call {
        /// Optional destination register.
        dst: Option<u32>,
        /// Dense index of the callee.
        func: u32,
        /// Actual arguments.
        args: Box<[Opnd]>,
    },
    /// HELIX `Wait` on dependence `dep`.
    Wait {
        /// The synchronized dependence index.
        dep: u32,
    },
    /// HELIX `Signal` on dependence `dep`.
    Signal {
        /// The synchronized dependence index.
        dep: u32,
    },
    /// Unconditional jump to a pre-resolved pc.
    Jump {
        /// Target program counter.
        pc: u32,
        /// Dense index of the target block.
        block: u32,
    },
    /// Conditional branch with both targets pre-resolved.
    Branch {
        /// Condition operand.
        cond: Opnd,
        /// Program counter of the true target.
        then_pc: u32,
        /// Dense index of the true target block.
        then_block: u32,
        /// Program counter of the false target.
        else_pc: u32,
        /// Dense index of the false target block.
        else_block: u32,
    },
    /// Return from the current function.
    Ret {
        /// Optional return value.
        value: Option<Opnd>,
    },
    /// Synthesized for blocks without a terminator: reports
    /// [`crate::interp::ExecError::MissingTerminator`] without consuming fuel, matching the
    /// tree-walking interpreter exactly.
    Trap {
        /// Dense index of the malformed block.
        block: u32,
    },
}

/// Cycle-cost class of one op; an engine expands a [`crate::cost::CostModel`] into a dense
/// table indexed by this (see [`cost_table`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CostClass {
    /// Simple ALU operations, moves, comparisons, selects.
    Alu = 0,
    /// Multiplication.
    Mul = 1,
    /// Division and remainder.
    Div = 2,
    /// Memory load.
    Load = 3,
    /// Memory store.
    Store = 4,
    /// Heap allocation.
    Alloc = 5,
    /// Direct call overhead.
    Call = 6,
    /// Branches and returns.
    Branch = 7,
    /// A locally satisfied `Wait`.
    Wait = 8,
    /// A `Signal`.
    Signal = 9,
}

/// Number of [`CostClass`] variants (the size of a cost table).
pub const NUM_COST_CLASSES: usize = 10;

/// Expands a cost model into a dense per-class cycle table.
pub fn cost_table(cost: &crate::cost::CostModel) -> [u64; NUM_COST_CLASSES] {
    [
        cost.alu,
        cost.mul,
        cost.div,
        cost.load,
        cost.store,
        cost.alloc,
        cost.call,
        cost.branch,
        cost.wait_local,
        cost.signal,
    ]
}

/// The flat bytecode image of one function.
#[derive(Clone, Debug)]
pub struct FuncImage {
    /// The function's name (diagnostics only).
    pub name: String,
    /// Number of parameters (registers `0..num_params`).
    pub num_params: usize,
    /// Size of the register file the engine must allocate. At least the function's `num_vars`,
    /// widened to cover every register index the code references so that operand reads are
    /// plain indexing (the tree-walker's out-of-range reads yield zero; a zero-initialized
    /// file reproduces that).
    pub num_regs: usize,
    /// The flat op stream, blocks laid out in [`BlockId`] order.
    pub code: Vec<Op>,
    /// Cost class of each op, parallel to `code`.
    pub cost_class: Vec<CostClass>,
    /// The IR instruction each op was lowered from, parallel to `code` (for profilers folding
    /// dense pc counters back to [`InstrRef`]s). Synthesized `Trap` ops map to the one-past-end
    /// index of their block.
    pub pc_to_ref: Vec<InstrRef>,
    /// Half-open `[start, end)` op range of each block, indexed by dense block id.
    pub block_range: Vec<(u32, u32)>,
    /// Dense index of the entry block.
    pub entry_block: u32,
}

impl FuncImage {
    /// Program counter of the first op of `block`.
    pub fn block_start(&self, block: u32) -> u32 {
        self.block_range[block as usize].0
    }

    /// Program counter a fresh activation of this function starts at — the first op of
    /// the entry block. Callers (the runtime's dispatch engines) previously recomputed
    /// this from the two side tables at every call site.
    pub fn entry_pc(&self) -> u32 {
        self.block_start(self.entry_block)
    }

    /// Number of blocks in the function.
    pub fn num_blocks(&self) -> usize {
        self.block_range.len()
    }

    /// The ops of `block`: the `[start, end)` slice of the flat stream. Used by region
    /// re-lowerings (the parallel runtime's `ParallelImage`) that splice per-block op ranges
    /// into a new layout.
    pub fn block_code(&self, block: u32) -> &[Op] {
        let (start, end) = self.block_range[block as usize];
        &self.code[start as usize..end as usize]
    }

    /// The `pc -> InstrRef` entries of `block`, parallel to [`FuncImage::block_code`].
    pub fn block_refs(&self, block: u32) -> &[InstrRef] {
        let (start, end) = self.block_range[block as usize];
        &self.pc_to_ref[start as usize..end as usize]
    }
}

/// An immutable, execution-ready lowering of a whole module.
///
/// Build one with [`ExecImage::lower`]; execute it with [`crate::exec::ImageEvaluator`] or
/// [`crate::exec::ImageMachine`]. The image borrows nothing from the module, so it can be
/// shared freely across worker threads.
#[derive(Clone, Debug)]
pub struct ExecImage {
    /// Per-function bytecode, indexed by [`FuncId`].
    pub funcs: Vec<FuncImage>,
    /// Base address of each global (already folded into operands; kept for tooling).
    pub global_bases: Vec<i64>,
    /// Program memory with globals laid out and initialized, ready to clone per execution.
    pub initial_memory: Memory,
    /// The source module's name (diagnostics only).
    pub module_name: String,
}

impl ExecImage {
    /// Lowers every function of `module` into flat bytecode.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets a block that does not exist or a call targets a function
    /// that does not exist (both are rejected by [`crate::verify::verify_module`]).
    pub fn lower(module: &Module) -> ExecImage {
        let global_bases = module.global_base_addresses();
        let funcs = module
            .functions
            .iter()
            .map(|f| lower_function(f, &global_bases, module.functions.len()))
            .collect();
        ExecImage {
            funcs,
            global_bases,
            initial_memory: Memory::for_module(module),
            module_name: module.name.clone(),
        }
    }

    /// The bytecode of one function.
    ///
    /// # Panics
    ///
    /// Panics if the function does not exist.
    pub fn func(&self, id: FuncId) -> &FuncImage {
        &self.funcs[id.index()]
    }

    /// Total number of ops across all functions.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

fn lower_operand(op: Operand, global_bases: &[i64]) -> Opnd {
    match op {
        Operand::Var(v) => Opnd::Reg(v.0),
        Operand::ConstInt(i) => Opnd::Int(i),
        Operand::ConstFloat(f) => Opnd::Float(f),
        Operand::Global(g) => Opnd::Int(global_bases[g.index()]),
    }
}

fn cost_class_of(instr: &Instr) -> CostClass {
    match instr {
        Instr::Const { .. }
        | Instr::Copy { .. }
        | Instr::Unary { .. }
        | Instr::Cmp { .. }
        | Instr::Select { .. } => CostClass::Alu,
        Instr::Binary { op, .. } => match op {
            BinOp::Mul => CostClass::Mul,
            BinOp::Div | BinOp::Rem => CostClass::Div,
            _ => CostClass::Alu,
        },
        Instr::Load { .. } => CostClass::Load,
        Instr::Store { .. } => CostClass::Store,
        Instr::Alloc { .. } => CostClass::Alloc,
        Instr::Call { .. } => CostClass::Call,
        Instr::Wait { .. } => CostClass::Wait,
        Instr::Signal { .. } => CostClass::Signal,
        Instr::Br { .. } | Instr::CondBr { .. } | Instr::Ret { .. } => CostClass::Branch,
    }
}

fn lower_function(function: &Function, global_bases: &[i64], num_funcs: usize) -> FuncImage {
    // Pass 1: lay out blocks in id order and compute each block's start pc. A block whose last
    // instruction is not a terminator (or an empty block) gets one synthesized `Trap` slot.
    let mut block_start = Vec::with_capacity(function.blocks.len());
    let mut pc = 0u32;
    for block in &function.blocks {
        block_start.push(pc);
        let needs_trap = !matches!(block.instrs.last(), Some(last) if last.is_terminator());
        pc += block.instrs.len() as u32 + u64::from(needs_trap) as u32;
    }

    // Pass 2: emit the ops.
    let mut code = Vec::with_capacity(pc as usize);
    let mut cost_class = Vec::with_capacity(pc as usize);
    let mut pc_to_ref = Vec::with_capacity(pc as usize);
    let mut block_range = Vec::with_capacity(function.blocks.len());
    let mut max_reg = function.num_vars as u32;
    let track = |o: &Opnd, max_reg: &mut u32| {
        if let Opnd::Reg(r) = o {
            *max_reg = (*max_reg).max(r + 1);
        }
    };
    let lower = |op: Operand| lower_operand(op, global_bases);
    let target_pc = |b: BlockId| -> u32 {
        *block_start
            .get(b.index())
            .unwrap_or_else(|| panic!("branch to nonexistent block {b} in `{}`", function.name))
    };
    for block in &function.blocks {
        let start = code.len() as u32;
        for (index, instr) in block.instrs.iter().enumerate() {
            let op = match instr {
                Instr::Const { dst, value } | Instr::Copy { dst, src: value } => Op::Mov {
                    dst: dst.0,
                    src: lower(*value),
                },
                Instr::Unary { dst, op, src } => Op::Un {
                    dst: dst.0,
                    op: *op,
                    src: lower(*src),
                },
                Instr::Binary { dst, op, lhs, rhs } => Op::Bin {
                    dst: dst.0,
                    op: *op,
                    lhs: lower(*lhs),
                    rhs: lower(*rhs),
                },
                Instr::Cmp {
                    dst,
                    pred,
                    lhs,
                    rhs,
                } => Op::Cmp {
                    dst: dst.0,
                    pred: *pred,
                    lhs: lower(*lhs),
                    rhs: lower(*rhs),
                },
                Instr::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => Op::Select {
                    dst: dst.0,
                    cond: lower(*cond),
                    on_true: lower(*on_true),
                    on_false: lower(*on_false),
                },
                Instr::Load { dst, addr, offset } => Op::Load {
                    dst: dst.0,
                    addr: lower(*addr),
                    offset: *offset,
                },
                Instr::Store {
                    addr,
                    offset,
                    value,
                } => Op::Store {
                    addr: lower(*addr),
                    offset: *offset,
                    value: lower(*value),
                },
                Instr::Alloc { dst, words } => Op::Alloc {
                    dst: dst.0,
                    words: lower(*words),
                },
                Instr::Call { dst, callee, args } => {
                    assert!(
                        callee.index() < num_funcs,
                        "call to nonexistent function {callee} in `{}`",
                        function.name
                    );
                    Op::Call {
                        dst: dst.map(|d| d.0),
                        func: callee.0,
                        args: args.iter().map(|a| lower(*a)).collect(),
                    }
                }
                Instr::Wait { dep } => Op::Wait { dep: dep.0 },
                Instr::Signal { dep } => Op::Signal { dep: dep.0 },
                Instr::Br { target } => Op::Jump {
                    pc: target_pc(*target),
                    block: target.0,
                },
                Instr::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => Op::Branch {
                    cond: lower(*cond),
                    then_pc: target_pc(*then_bb),
                    then_block: then_bb.0,
                    else_pc: target_pc(*else_bb),
                    else_block: else_bb.0,
                },
                Instr::Ret { value } => Op::Ret {
                    value: value.map(lower),
                },
            };
            // Widen the register file to cover every referenced register, so the engine reads
            // with plain indexing (out-of-range reads see the zero-initialized tail, matching
            // the tree-walker's `get().unwrap_or_default()`).
            match &op {
                Op::Mov { dst, src } | Op::Un { dst, src, .. } => {
                    max_reg = max_reg.max(dst + 1);
                    track(src, &mut max_reg);
                }
                Op::Bin { dst, lhs, rhs, .. } | Op::Cmp { dst, lhs, rhs, .. } => {
                    max_reg = max_reg.max(dst + 1);
                    track(lhs, &mut max_reg);
                    track(rhs, &mut max_reg);
                }
                Op::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    max_reg = max_reg.max(dst + 1);
                    track(cond, &mut max_reg);
                    track(on_true, &mut max_reg);
                    track(on_false, &mut max_reg);
                }
                Op::Load { dst, addr, .. } => {
                    max_reg = max_reg.max(dst + 1);
                    track(addr, &mut max_reg);
                }
                Op::Store { addr, value, .. } => {
                    track(addr, &mut max_reg);
                    track(value, &mut max_reg);
                }
                Op::Alloc { dst, words } | Op::PrivateAlloc { dst, words } => {
                    max_reg = max_reg.max(dst + 1);
                    track(words, &mut max_reg);
                }
                Op::Call { dst, args, .. } => {
                    if let Some(d) = dst {
                        max_reg = max_reg.max(d + 1);
                    }
                    for a in args.iter() {
                        track(a, &mut max_reg);
                    }
                }
                Op::Branch { cond, .. } => track(cond, &mut max_reg),
                Op::Ret { value } => {
                    if let Some(v) = value {
                        track(v, &mut max_reg);
                    }
                }
                Op::Wait { .. } | Op::Signal { .. } | Op::Jump { .. } | Op::Trap { .. } => {}
            }
            cost_class.push(cost_class_of(instr));
            pc_to_ref.push(InstrRef::new(block.id, index));
            code.push(op);
        }
        if !matches!(block.instrs.last(), Some(last) if last.is_terminator()) {
            code.push(Op::Trap { block: block.id.0 });
            cost_class.push(CostClass::Branch); // never charged; Trap aborts before costing
            pc_to_ref.push(InstrRef::new(block.id, block.instrs.len()));
        }
        block_range.push((start, code.len() as u32));
    }
    debug_assert_eq!(code.len() as u32, pc);

    FuncImage {
        name: function.name.clone(),
        num_params: function.num_params,
        num_regs: max_reg as usize,
        code,
        cost_class,
        pc_to_ref,
        block_range,
        entry_block: function.entry.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cost::CostModel;
    use crate::ids::GlobalId;

    #[test]
    fn lowering_resolves_branches_and_blocks() {
        let mut module = Module::new("m");
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let c = b.cmp_to_new(Pred::Lt, Operand::Var(n), Operand::int(5));
        b.cond_br(Operand::Var(c), t, e);
        b.switch_to(t);
        b.ret(Some(Operand::int(1)));
        b.switch_to(e);
        b.ret(Some(Operand::int(0)));
        let f = module.add_function(b.finish());
        let image = ExecImage::lower(&module);
        let fi = image.func(f);
        assert_eq!(fi.num_blocks(), 3);
        assert_eq!(fi.code.len(), 4);
        // Every pc maps back to an InstrRef and has a cost class.
        assert_eq!(fi.pc_to_ref.len(), fi.code.len());
        assert_eq!(fi.cost_class.len(), fi.code.len());
        match &fi.code[1] {
            Op::Branch {
                then_pc,
                then_block,
                else_pc,
                else_block,
                ..
            } => {
                assert_eq!(*then_pc, fi.block_start(*then_block));
                assert_eq!(*else_pc, fi.block_start(*else_block));
                assert_ne!(then_block, else_block);
            }
            other => panic!("expected Branch, got {other:?}"),
        }
    }

    #[test]
    fn globals_fold_into_immediates() {
        let mut module = Module::new("m");
        let g0 = module.add_global("a", 3);
        let g1 = module.add_global("b", 2);
        let mut b = FunctionBuilder::new("f", 0);
        let v = b.new_var();
        b.load(v, Operand::Global(g1), 1);
        b.ret(Some(Operand::Var(v)));
        let f = module.add_function(b.finish());
        let image = ExecImage::lower(&module);
        assert_eq!(image.global_bases, vec![1, 4]);
        let fi = image.func(f);
        match &fi.code[0] {
            Op::Load { addr, offset, .. } => {
                assert_eq!(*addr, Opnd::Int(4));
                assert_eq!(*offset, 1);
            }
            other => panic!("expected Load, got {other:?}"),
        }
        let _ = (g0, GlobalId::new(0));
    }

    #[test]
    fn missing_terminator_lowers_to_trap() {
        let mut module = Module::new("m");
        let mut f = Function::new("bad", 0);
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::Const {
            dst: crate::ids::VarId::new(0),
            value: Operand::int(1),
        });
        f.num_vars = 1;
        let id = module.add_function(f);
        let image = ExecImage::lower(&module);
        let fi = image.func(id);
        assert!(matches!(fi.code.last(), Some(Op::Trap { block: 0 })));
        assert_eq!(fi.block_range[0], (0, 2));
    }

    #[test]
    fn cost_table_matches_cost_model() {
        let cost = CostModel::intel_i7_980x();
        let table = cost_table(&cost);
        assert_eq!(table[CostClass::Alu as usize], cost.alu);
        assert_eq!(table[CostClass::Div as usize], cost.div);
        assert_eq!(table[CostClass::Wait as usize], cost.wait_local);
        assert_eq!(NUM_COST_CLASSES, table.len());
    }

    #[test]
    fn register_file_covers_all_references() {
        // A function whose num_vars undercounts the registers it references still lowers to a
        // register file wide enough for plain indexing.
        let mut module = Module::new("m");
        let mut f = Function::new("wide", 0);
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::Ret {
            value: Some(Operand::Var(crate::ids::VarId::new(9))),
        });
        let id = module.add_function(f);
        let image = ExecImage::lower(&module);
        assert!(image.func(id).num_regs >= 10);
    }
}
