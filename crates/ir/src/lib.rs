//! # helix-ir
//!
//! A register-based, three-address compiler intermediate representation (IR) used as the
//! substrate for the HELIX reproduction (Campanoni et al., CGO 2012).
//!
//! The paper implements HELIX inside the ILDJIT compilation framework, which operates on a
//! CIL-derived mid-level IR. This crate provides the equivalent substrate: explicit control
//! flow graphs of basic blocks, virtual registers, loads/stores against a flat word-addressed
//! memory, direct calls, and the two synchronization pseudo-instructions (`Wait`/`Signal`)
//! that the HELIX transformation inserts.
//!
//! The crate also contains a sequential interpreter with a configurable cycle cost model.
//! Profiling, loop selection, the parallel runtime and the timing simulator are all built on
//! top of this interpreter.
//!
//! ## Quick example
//!
//! ```
//! use helix_ir::builder::FunctionBuilder;
//! use helix_ir::module::Module;
//! use helix_ir::instr::{BinOp, Operand, Pred};
//! use helix_ir::interp::Machine;
//!
//! // Build: fn sum(n) { s = 0; i = 0; while i < n { s += i; i += 1 } return s }
//! let mut module = Module::new("example");
//! let mut b = FunctionBuilder::new("sum", 1);
//! let n = b.param(0);
//! let s = b.new_var();
//! let i = b.new_var();
//! let header = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.const_int(s, 0);
//! b.const_int(i, 0);
//! b.br(header);
//! b.switch_to(header);
//! let c = b.cmp_to_new(Pred::Lt, Operand::Var(i), Operand::Var(n));
//! b.cond_br(Operand::Var(c), body, exit);
//! b.switch_to(body);
//! b.binary(s, BinOp::Add, Operand::Var(s), Operand::Var(i));
//! b.binary(i, BinOp::Add, Operand::Var(i), Operand::int(1));
//! b.br(header);
//! b.switch_to(exit);
//! b.ret(Some(Operand::Var(s)));
//! let f = module.add_function(b.finish());
//!
//! let mut machine = Machine::new(&module);
//! let result = machine.call(f, &[10i64.into()]).unwrap();
//! assert_eq!(result.unwrap().as_int(), 45);
//! ```

pub mod builder;
pub mod cost;
pub mod exec;
pub mod function;
pub mod ids;
pub mod instr;
pub mod interp;
pub mod lower;
pub mod memory;
pub mod module;
pub mod printer;
pub mod value;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cost::CostModel;
pub use exec::{ImageEvaluator, ImageMachine, ImageObserver, NullImageObserver};
pub use function::{BasicBlock, Function};
pub use ids::{BlockId, DepId, FuncId, GlobalId, InstrRef, VarId};
pub use instr::{BinOp, Instr, Operand, Pred, UnOp};
pub use interp::{ExecStats, Machine, Observer};
pub use lower::{ExecImage, FuncImage, Op, Opnd};
pub use memory::Memory;
pub use module::{Global, Module};
pub use value::Value;
pub use verify::{verify_function, verify_module, VerifyError};
