//! Strongly typed identifiers for IR entities.
//!
//! Each identifier is a thin newtype over `u32` so they are cheap to copy and hash while
//! statically distinguishing functions, blocks, virtual registers, globals and HELIX
//! synchronization dependences from one another (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`crate::module::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`crate::function::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a virtual register (local variable) within a function.
    VarId,
    "%v"
);
id_type!(
    /// Identifies a global memory object within a module.
    GlobalId,
    "@g"
);
id_type!(
    /// Identifies a loop-carried data dependence synchronized with `Wait`/`Signal`.
    ///
    /// HELIX Step 4 assigns one `DepId` per dependence in `D_data`; Step 6 may later retire
    /// some of them when they are redundant (Theorem 1).
    DepId,
    "dep"
);

/// A stable reference to one instruction: the block it lives in plus its index inside that
/// block's instruction vector.
///
/// Instruction indices are invalidated by insertions/removals earlier in the same block, so
/// passes that rewrite code re-derive `InstrRef`s after each mutation phase.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct InstrRef {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction within the block.
    pub index: usize,
}

impl InstrRef {
    /// Creates a reference to the instruction at `index` in `block`.
    pub const fn new(block: BlockId, index: usize) -> Self {
        Self { block, index }
    }
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_through_u32() {
        let f = FuncId::from(7u32);
        assert_eq!(u32::from(f), 7);
        assert_eq!(f.index(), 7);
        let b = BlockId::new(3);
        assert_eq!(b.index(), 3);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(FuncId::new(1).to_string(), "fn1");
        assert_eq!(BlockId::new(2).to_string(), "bb2");
        assert_eq!(VarId::new(3).to_string(), "%v3");
        assert_eq!(GlobalId::new(4).to_string(), "@g4");
        assert_eq!(DepId::new(5).to_string(), "dep5");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(VarId::new(0));
        set.insert(VarId::new(1));
        set.insert(VarId::new(0));
        assert_eq!(set.len(), 2);
        assert!(BlockId::new(1) < BlockId::new(2));
    }

    #[test]
    fn instr_ref_display() {
        let r = InstrRef::new(BlockId::new(4), 9);
        assert_eq!(r.to_string(), "bb4[9]");
        assert_eq!(r, InstrRef::new(BlockId::new(4), 9));
    }
}
