//! Runtime values manipulated by the IR interpreter.
//!
//! The IR is dynamically but simply typed: every virtual register and memory word holds either
//! a 64-bit integer (also used for addresses and booleans) or a 64-bit float. This mirrors the
//! word-oriented view the HELIX paper takes of data transferred between cores (`Bytes_i /
//! CPU_word` in Equation 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed 64-bit value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer. Addresses and booleans (0/1) are represented as integers.
    Int(i64),
    /// A 64-bit IEEE-754 float.
    Float(f64),
}

impl Value {
    /// The canonical `true` value.
    pub const TRUE: Value = Value::Int(1);
    /// The canonical `false` value.
    pub const FALSE: Value = Value::Int(0);

    /// Returns the integer payload, converting floats by truncation.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }
    }

    /// Returns the float payload, converting integers exactly where possible.
    #[inline]
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
        }
    }

    /// Interprets the value as a boolean: any non-zero payload is `true`.
    #[inline]
    pub fn as_bool(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
        }
    }

    /// Returns `true` when the value is a float.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Value::Float(_))
    }

    /// Returns a boolean value encoded as an integer.
    #[inline]
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Reinterprets the value as raw bits (used when storing to word memory).
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Int(i) => i as u64,
            Value::Float(f) => f.to_bits(),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::from_bool(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64).as_int(), 5);
        assert_eq!(Value::from(2.5f64).as_float(), 2.5);
        assert_eq!(Value::from(2.9f64).as_int(), 2);
        assert_eq!(Value::from(3i64).as_float(), 3.0);
        assert_eq!(Value::from(true), Value::TRUE);
        assert_eq!(Value::from(false), Value::FALSE);
    }

    #[test]
    fn booleans() {
        assert!(Value::Int(7).as_bool());
        assert!(!Value::Int(0).as_bool());
        assert!(Value::Float(0.1).as_bool());
        assert!(!Value::Float(0.0).as_bool());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
    }

    #[test]
    fn bits_roundtrip_for_floats() {
        let v = Value::Float(3.25);
        assert_eq!(f64::from_bits(v.to_bits()), 3.25);
    }
}
