//! Structural verification of IR.
//!
//! The verifier catches the malformed shapes the HELIX passes must never produce: blocks
//! without terminators, terminators in the middle of a block, branches to missing blocks,
//! references to undeclared registers, calls to missing functions, and out-of-range globals.

use crate::function::Function;
use crate::ids::{BlockId, FuncId};
use crate::instr::{Instr, Operand};
use crate::module::{Global, Module};
use std::fmt;

/// A structural error found by the verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no instructions or does not end in a terminator.
    MissingTerminator {
        /// Offending function name.
        function: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Offending function name.
        function: String,
        /// Offending block.
        block: BlockId,
        /// Index of the premature terminator.
        index: usize,
    },
    /// A branch targets a block that does not exist.
    BadBranchTarget {
        /// Offending function name.
        function: String,
        /// Offending block.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// An instruction references a register outside the function's register count.
    BadRegister {
        /// Offending function name.
        function: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index.
        index: usize,
    },
    /// A call references a function that does not exist in the module.
    BadCallee {
        /// Offending function name.
        function: String,
        /// The missing callee.
        callee: FuncId,
    },
    /// An operand references a global that does not exist in the module.
    BadGlobal {
        /// Offending function name.
        function: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index.
        index: usize,
    },
    /// The entry block id is out of range.
    BadEntry {
        /// Offending function name.
        function: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingTerminator { function, block } => {
                write!(f, "{function}: block {block} does not end in a terminator")
            }
            VerifyError::EarlyTerminator {
                function,
                block,
                index,
            } => write!(
                f,
                "{function}: terminator in the middle of block {block} at index {index}"
            ),
            VerifyError::BadBranchTarget {
                function,
                block,
                target,
            } => write!(
                f,
                "{function}: block {block} branches to missing block {target}"
            ),
            VerifyError::BadRegister {
                function,
                block,
                index,
            } => write!(
                f,
                "{function}: instruction {block}[{index}] references an undeclared register"
            ),
            VerifyError::BadCallee { function, callee } => {
                write!(f, "{function}: call to missing function {callee}")
            }
            VerifyError::BadGlobal {
                function,
                block,
                index,
            } => write!(
                f,
                "{function}: instruction {block}[{index}] references a missing global"
            ),
            VerifyError::BadEntry { function } => {
                write!(f, "{function}: entry block is out of range")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies one function against the module's globals.
///
/// `globals` is the module's global table (pass an empty slice when the function uses none).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_function(function: &Function, globals: &[Global]) -> Result<(), VerifyError> {
    let name = function.name.clone();
    if function.entry.index() >= function.blocks.len() {
        return Err(VerifyError::BadEntry { function: name });
    }
    for block in &function.blocks {
        match block.instrs.last() {
            Some(last) if last.is_terminator() => {}
            _ => {
                return Err(VerifyError::MissingTerminator {
                    function: name,
                    block: block.id,
                })
            }
        }
        for (index, instr) in block.instrs.iter().enumerate() {
            if instr.is_terminator() && index + 1 != block.instrs.len() {
                return Err(VerifyError::EarlyTerminator {
                    function: name,
                    block: block.id,
                    index,
                });
            }
            for target in instr.successors() {
                if target.index() >= function.blocks.len() {
                    return Err(VerifyError::BadBranchTarget {
                        function: name,
                        block: block.id,
                        target,
                    });
                }
            }
            let mut regs_ok = true;
            if let Some(dst) = instr.dst() {
                regs_ok &= dst.index() < function.num_vars;
            }
            for op in instr.operands() {
                match op {
                    Operand::Var(v) => regs_ok &= v.index() < function.num_vars,
                    Operand::Global(g) if g.index() >= globals.len() => {
                        return Err(VerifyError::BadGlobal {
                            function: name,
                            block: block.id,
                            index,
                        });
                    }
                    _ => {}
                }
            }
            if !regs_ok {
                return Err(VerifyError::BadRegister {
                    function: name,
                    block: block.id,
                    index,
                });
            }
        }
    }
    Ok(())
}

/// Verifies every function in a module, including call targets.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for function in &module.functions {
        verify_function(function, &module.globals)?;
        for (_, instr) in function.instr_refs() {
            if let Instr::Call { callee, .. } = instr {
                if callee.index() >= module.functions.len() {
                    return Err(VerifyError::BadCallee {
                        function: function.name.clone(),
                        callee: *callee,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::{GlobalId, VarId};
    use crate::instr::{BinOp, Operand};

    fn good_function() -> Function {
        let mut b = FunctionBuilder::new("good", 1);
        let p = b.param(0);
        let x = b.binary_to_new(BinOp::Add, Operand::Var(p), Operand::int(1));
        b.ret(Some(Operand::Var(x)));
        b.finish()
    }

    #[test]
    fn good_function_verifies() {
        assert!(verify_function(&good_function(), &[]).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut f = good_function();
        let entry = f.entry;
        f.block_mut(entry).instrs.pop();
        let err = verify_function(&f, &[]).unwrap_err();
        assert!(matches!(err, VerifyError::MissingTerminator { .. }));
        assert!(err.to_string().contains("terminator"));
    }

    #[test]
    fn early_terminator_detected() {
        let mut f = good_function();
        let entry = f.entry;
        f.block_mut(entry)
            .instrs
            .insert(0, Instr::Ret { value: None });
        assert!(matches!(
            verify_function(&f, &[]),
            Err(VerifyError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut f = good_function();
        let entry = f.entry;
        *f.block_mut(entry).instrs.last_mut().unwrap() = Instr::Br {
            target: BlockId::new(42),
        };
        assert!(matches!(
            verify_function(&f, &[]),
            Err(VerifyError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn bad_register_detected() {
        let mut f = good_function();
        let entry = f.entry;
        f.block_mut(entry).instrs.insert(
            0,
            Instr::Copy {
                dst: VarId::new(99),
                src: Operand::int(0),
            },
        );
        assert!(matches!(
            verify_function(&f, &[]),
            Err(VerifyError::BadRegister { .. })
        ));
    }

    #[test]
    fn bad_global_detected() {
        let mut f = good_function();
        let entry = f.entry;
        f.block_mut(entry).instrs.insert(
            0,
            Instr::Store {
                addr: Operand::Global(GlobalId::new(3)),
                offset: 0,
                value: Operand::int(1),
            },
        );
        assert!(matches!(
            verify_function(&f, &[]),
            Err(VerifyError::BadGlobal { .. })
        ));
    }

    #[test]
    fn bad_callee_detected_at_module_level() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("caller", 0);
        b.call(None, FuncId::new(7), vec![]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadCallee { .. })
        ));
    }

    #[test]
    fn module_with_valid_calls_verifies() {
        let mut m = Module::new("m");
        let callee = m.add_function(good_function());
        let mut b = FunctionBuilder::new("caller", 0);
        let r = b.new_var();
        b.call(Some(r), callee, vec![Operand::int(1)]);
        b.ret(Some(Operand::Var(r)));
        m.add_function(b.finish());
        assert!(verify_module(&m).is_ok());
    }
}
