//! The flat-bytecode execution engine.
//!
//! [`ImageEvaluator`] dispatches over an [`ExecImage`]'s contiguous op stream instead of
//! re-walking the `Instr` tree: operands are pre-resolved, branches jump straight to program
//! counters, and cycle charging is one table lookup. Semantics — instruction counts, cycle
//! totals, fuel accounting, error behaviour, memory effects — are bit-identical to
//! [`crate::interp::Evaluator`] (enforced by `tests/exec_differential.rs`); only the dispatch
//! mechanism changed.
//!
//! The engine is generic over the same [`Context`] trait the tree-walker uses (so the
//! sequential memory, the profiler and the parallel runtime's sharded shared memory all plug
//! in unchanged) and over [`ImageObserver`], the lowered counterpart of
//! [`crate::interp::Observer`]: hooks receive dense block indices and program counters, which
//! lets profilers keep dense per-pc / per-block counters and fold them back to [`InstrRef`]s
//! only when reporting.
//!
//! [`ImageMachine`] is the drop-in replacement for [`crate::interp::Machine`]: engine plus a
//! private [`Memory`] cloned from the image.

use crate::cost::CostModel;
use crate::ids::{DepId, FuncId};
use crate::instr::BinOp;
use crate::interp::{eval_binop, eval_pred, eval_unop, Context, ExecError, ExecStats};
use crate::interp::{SequentialContext, DEFAULT_FUEL, MAX_CALL_DEPTH};
use crate::lower::{cost_table, CostClass, ExecImage, FuncImage, Op, Opnd, NUM_COST_CLASSES};
use crate::memory::Memory;
use crate::value::Value;

/// Receives callbacks as the bytecode engine executes.
///
/// This is the lowered counterpart of [`crate::interp::Observer`]: blocks are identified by
/// their dense index within the function, instructions by their program counter. Both map back
/// to IR entities through [`FuncImage::pc_to_ref`] and [`crate::ids::BlockId`] when needed.
/// All methods have empty default implementations.
pub trait ImageObserver {
    /// Called when control enters the block with dense index `block` of `func`.
    fn on_block_enter(&mut self, _func: FuncId, _block: u32) {}
    /// Called after each executed op with the cycles charged for it.
    fn on_op(&mut self, _func: FuncId, _pc: u32, _cycles: u64) {}
    /// Called when `caller` invokes `callee` from the op at `pc`, before the callee runs.
    fn on_call(&mut self, _caller: FuncId, _pc: u32, _callee: FuncId) {}
    /// Called when `func` returns.
    fn on_return(&mut self, _func: FuncId) {}
}

/// An observer that ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullImageObserver;

impl ImageObserver for NullImageObserver {}

/// What happened after executing one basic block via [`ImageEvaluator::exec_block`].
#[derive(Clone, Debug, PartialEq)]
pub enum BlockOutcome {
    /// Control transfers to the block with this dense index.
    Jump(u32),
    /// The function returned.
    Return(Option<Value>),
}

/// Executes flat bytecode against a [`Context`].
#[derive(Debug)]
pub struct ImageEvaluator<'i> {
    image: &'i ExecImage,
    cost: CostModel,
    cost_table: [u64; NUM_COST_CLASSES],
    fuel: u64,
    /// Statistics accumulated across all calls made through this evaluator.
    pub stats: ExecStats,
}

impl<'i> ImageEvaluator<'i> {
    /// Creates an evaluator with the default (i7-980X) cost model and default fuel.
    pub fn new(image: &'i ExecImage) -> Self {
        Self::with_cost(image, CostModel::default())
    }

    /// Creates an evaluator with an explicit cost model.
    pub fn with_cost(image: &'i ExecImage, cost: CostModel) -> Self {
        Self {
            image,
            cost,
            cost_table: cost_table(&cost),
            fuel: DEFAULT_FUEL,
            stats: ExecStats::default(),
        }
    }

    /// Sets the remaining instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Returns the remaining instruction budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Returns the image being executed.
    pub fn image(&self) -> &'i ExecImage {
        self.image
    }

    /// Returns the cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Calls `func` with `args`, driving `ctx` and reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on memory faults, fuel exhaustion, stack overflow, malformed
    /// control flow, or synchronization failures reported by the context.
    pub fn call<C, O>(
        &mut self,
        func: FuncId,
        args: &[Value],
        ctx: &mut C,
        obs: &mut O,
    ) -> Result<Option<Value>, ExecError>
    where
        C: Context + ?Sized,
        O: ImageObserver + ?Sized,
    {
        self.exec_function(func, args, ctx, obs, 0)
    }

    /// Executes a whole function call with an *explicit* frame stack — guest calls never
    /// recurse on the native stack, so [`MAX_CALL_DEPTH`]-deep guest recursion is safe
    /// regardless of the host's stack size or build profile. `depth` is the guest call depth
    /// this invocation starts at (non-zero when invoked from a block-stepping context).
    fn exec_function<C, O>(
        &mut self,
        func: FuncId,
        args: &[Value],
        ctx: &mut C,
        obs: &mut O,
        depth: usize,
    ) -> Result<Option<Value>, ExecError>
    where
        C: Context + ?Sized,
        O: ImageObserver + ?Sized,
    {
        if depth > MAX_CALL_DEPTH {
            return Err(ExecError::StackOverflow);
        }
        let mut func = func;
        let mut f: &FuncImage = &self.image.funcs[func.index()];
        let mut regs = vec![Value::Int(0); f.num_regs.max(args.len())];
        for (slot, a) in regs.iter_mut().zip(args.iter()).take(f.num_params) {
            *slot = *a;
        }
        let mut frames: Vec<CallFrame> = Vec::new();
        self.stats.blocks += 1;
        obs.on_block_enter(func, f.entry_block);
        let mut pc = f.block_start(f.entry_block) as usize;
        loop {
            match self.step(func, f, pc, &mut regs, ctx, obs)? {
                StepOutcome::Next => pc += 1,
                StepOutcome::Jump { target_pc, block } => {
                    self.stats.blocks += 1;
                    obs.on_block_enter(func, block);
                    pc = target_pc as usize;
                }
                StepOutcome::Call { callee, args, dst } => {
                    if depth + frames.len() + 1 > MAX_CALL_DEPTH {
                        return Err(ExecError::StackOverflow);
                    }
                    frames.push(CallFrame {
                        func,
                        pc,
                        regs: std::mem::take(&mut regs),
                        dst,
                    });
                    func = callee;
                    f = &self.image.funcs[func.index()];
                    regs = vec![Value::Int(0); f.num_regs.max(args.len())];
                    for (slot, a) in regs.iter_mut().zip(args.iter()).take(f.num_params) {
                        *slot = *a;
                    }
                    self.stats.blocks += 1;
                    obs.on_block_enter(func, f.entry_block);
                    pc = f.block_start(f.entry_block) as usize;
                }
                StepOutcome::Return(v) => match frames.pop() {
                    None => return Ok(v),
                    Some(frame) => {
                        func = frame.func;
                        f = &self.image.funcs[func.index()];
                        regs = frame.regs;
                        pc = frame.pc;
                        if let Some(d) = frame.dst {
                            regs[d as usize] = v.unwrap_or_default();
                        }
                        // The call op's own cost is charged after the callee returns,
                        // mirroring the tree-walker's event order.
                        let cycles = self.cost_table[CostClass::Call as usize];
                        self.stats.cycles += cycles;
                        obs.on_op(func, pc as u32, cycles);
                        pc += 1;
                    }
                },
            }
        }
    }

    /// Executes the ops of one block of `func` against `ctx`, mutating `regs`, and reports
    /// what happened. This is the block-stepping entry point the parallel runtime uses to
    /// drive prologue/body blocks under its own control-flow policy.
    ///
    /// `regs` is grown to the function's register file size if needed. Unlike
    /// [`ImageEvaluator::call`], no block-entry statistics are recorded for `block` itself
    /// (the caller decides what a "block entry" means in its execution model); calls made by
    /// the block's ops do execute fully, with normal accounting.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on faults, fuel exhaustion, or malformed control flow.
    pub fn exec_block<C, O>(
        &mut self,
        func: FuncId,
        block: u32,
        regs: &mut Vec<Value>,
        ctx: &mut C,
        obs: &mut O,
    ) -> Result<BlockOutcome, ExecError>
    where
        C: Context + ?Sized,
        O: ImageObserver + ?Sized,
    {
        let f: &FuncImage = &self.image.funcs[func.index()];
        if regs.len() < f.num_regs {
            regs.resize(f.num_regs, Value::Int(0));
        }
        let (start, end) = f.block_range[block as usize];
        let mut pc = start as usize;
        while pc < end as usize {
            match self.step(func, f, pc, regs, ctx, obs)? {
                StepOutcome::Next => pc += 1,
                StepOutcome::Jump { block, .. } => return Ok(BlockOutcome::Jump(block)),
                StepOutcome::Return(v) => return Ok(BlockOutcome::Return(v)),
                StepOutcome::Call { callee, args, dst } => {
                    let ret = self.exec_function(callee, &args, ctx, obs, 1)?;
                    if let Some(d) = dst {
                        regs[d as usize] = ret.unwrap_or_default();
                    }
                    let cycles = self.cost_table[CostClass::Call as usize];
                    self.stats.cycles += cycles;
                    obs.on_op(func, pc as u32, cycles);
                    pc += 1;
                }
            }
        }
        Err(ExecError::MissingTerminator(crate::ids::BlockId::new(
            block,
        )))
    }

    /// Executes the single op at `pc`, charging fuel/cycles and reporting events, exactly
    /// mirroring one iteration of the tree-walker's instruction loop.
    ///
    /// `inline(always)` specializes the dispatch into both hot loops ([`Self::exec_function`]
    /// and [`Self::exec_block`]); without it the per-op call overhead erases the gain from
    /// flat dispatch.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn step<C, O>(
        &mut self,
        func: FuncId,
        f: &FuncImage,
        pc: usize,
        regs: &mut [Value],
        ctx: &mut C,
        obs: &mut O,
    ) -> Result<StepOutcome, ExecError>
    where
        C: Context + ?Sized,
        O: ImageObserver + ?Sized,
    {
        let op = &f.code[pc];
        if let Op::Trap { block } = op {
            // Synthesized for missing terminators: abort without consuming fuel, like the
            // tree-walker's end-of-block check.
            return Err(ExecError::MissingTerminator(crate::ids::BlockId::new(
                *block,
            )));
        }
        if self.fuel == 0 {
            return Err(ExecError::FuelExhausted);
        }
        self.fuel -= 1;
        self.stats.instrs += 1;
        // Each arm charges its own (statically known) cost class from the dense table, so
        // the hot loop never consults a per-pc side array.

        let cycles;
        let outcome = match op {
            Op::Mov { dst, src } => {
                regs[*dst as usize] = eval(regs, *src);
                cycles = self.cost_table[CostClass::Alu as usize];
                StepOutcome::Next
            }
            Op::Un { dst, op, src } => {
                regs[*dst as usize] = eval_unop(*op, eval(regs, *src));
                cycles = self.cost_table[CostClass::Alu as usize];
                StepOutcome::Next
            }
            Op::Bin { dst, op, lhs, rhs } => {
                regs[*dst as usize] = eval_binop(*op, eval(regs, *lhs), eval(regs, *rhs));
                cycles = self.cost_table[match op {
                    BinOp::Mul => CostClass::Mul,
                    BinOp::Div | BinOp::Rem => CostClass::Div,
                    _ => CostClass::Alu,
                } as usize];
                StepOutcome::Next
            }
            Op::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                regs[*dst as usize] =
                    Value::from_bool(eval_pred(*pred, eval(regs, *lhs), eval(regs, *rhs)));
                cycles = self.cost_table[CostClass::Alu as usize];
                StepOutcome::Next
            }
            Op::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let v = if eval(regs, *cond).as_bool() {
                    eval(regs, *on_true)
                } else {
                    eval(regs, *on_false)
                };
                regs[*dst as usize] = v;
                cycles = self.cost_table[CostClass::Alu as usize];
                StepOutcome::Next
            }
            Op::Load { dst, addr, offset } => {
                let base = eval(regs, *addr).as_int();
                regs[*dst as usize] = ctx.load(base + offset)?;
                self.stats.loads += 1;
                cycles = self.cost_table[CostClass::Load as usize];
                StepOutcome::Next
            }
            Op::Store {
                addr,
                offset,
                value,
            } => {
                let base = eval(regs, *addr).as_int();
                let v = eval(regs, *value);
                ctx.store(base + offset, v)?;
                self.stats.stores += 1;
                cycles = self.cost_table[CostClass::Store as usize];
                StepOutcome::Next
            }
            Op::Alloc { dst, words } => {
                let n = eval(regs, *words).as_int().max(0) as usize;
                regs[*dst as usize] = Value::Int(ctx.alloc(n)?);
                cycles = self.cost_table[CostClass::Alloc as usize];
                StepOutcome::Next
            }
            Op::PrivateAlloc { dst, words } => {
                let n = eval(regs, *words).as_int().max(0) as usize;
                regs[*dst as usize] = Value::Int(ctx.alloc_private(n)?);
                cycles = self.cost_table[CostClass::Alloc as usize];
                StepOutcome::Next
            }
            Op::Call {
                dst,
                func: callee,
                args,
            } => {
                // The call op's cycles are charged (and its on_op emitted) by the caller of
                // `step` *after* the callee returns, matching the tree-walker's event order.
                let actuals: Vec<Value> = args.iter().map(|a| eval(regs, *a)).collect();
                let callee = FuncId::new(*callee);
                self.stats.calls += 1;
                obs.on_call(func, pc as u32, callee);
                return Ok(StepOutcome::Call {
                    callee,
                    args: actuals,
                    dst: *dst,
                });
            }
            Op::Wait { dep } => {
                self.stats.waits += 1;
                cycles = self.cost_table[CostClass::Wait as usize] + ctx.wait(DepId::new(*dep))?;
                StepOutcome::Next
            }
            Op::Signal { dep } => {
                self.stats.signals += 1;
                ctx.signal(DepId::new(*dep))?;
                cycles = self.cost_table[CostClass::Signal as usize];
                StepOutcome::Next
            }
            Op::Jump { pc: target, block } => {
                cycles = self.cost_table[CostClass::Branch as usize];
                StepOutcome::Jump {
                    target_pc: *target,
                    block: *block,
                }
            }
            Op::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                cycles = self.cost_table[CostClass::Branch as usize];
                if eval(regs, *cond).as_bool() {
                    StepOutcome::Jump {
                        target_pc: *then_pc,
                        block: *then_block,
                    }
                } else {
                    StepOutcome::Jump {
                        target_pc: *else_pc,
                        block: *else_block,
                    }
                }
            }
            Op::Ret { value } => {
                cycles = self.cost_table[CostClass::Branch as usize];
                self.stats.cycles += cycles;
                obs.on_op(func, pc as u32, cycles);
                obs.on_return(func);
                return Ok(StepOutcome::Return(value.map(|v| eval(regs, v))));
            }
            Op::Trap { .. } => unreachable!("handled above"),
        };
        self.stats.cycles += cycles;
        obs.on_op(func, pc as u32, cycles);
        Ok(outcome)
    }
}

/// What a single [`ImageEvaluator::step`] did with control flow.
enum StepOutcome {
    Next,
    Jump {
        target_pc: u32,
        block: u32,
    },
    /// A call op was reached: the caller pushes a frame (or recurses once, from a
    /// block-stepping context) and performs the post-return accounting.
    Call {
        callee: FuncId,
        args: Vec<Value>,
        dst: Option<u32>,
    },
    Return(Option<Value>),
}

/// One suspended guest frame of [`ImageEvaluator::exec_function`]'s explicit call stack.
struct CallFrame {
    func: FuncId,
    /// pc of the call op to resume after (accounting happens on resume).
    pc: usize,
    regs: Vec<Value>,
    dst: Option<u32>,
}

/// Evaluates a pre-resolved operand against the register file.
///
/// Safety of the unchecked read: lowering widens [`FuncImage::num_regs`] to cover every
/// register index the code references, and both execution entry points allocate/resize the
/// register file to at least `num_regs`, so `r` is always in bounds.
#[inline(always)]
fn eval(regs: &[Value], o: Opnd) -> Value {
    match o {
        Opnd::Reg(r) => {
            debug_assert!((r as usize) < regs.len());
            unsafe { *regs.get_unchecked(r as usize) }
        }
        Opnd::Int(i) => Value::Int(i),
        Opnd::Float(f) => Value::Float(f),
    }
}

/// A self-contained sequential bytecode machine: engine + private memory cloned from the
/// image. The drop-in counterpart of [`crate::interp::Machine`].
#[derive(Debug)]
pub struct ImageMachine<'i> {
    evaluator: ImageEvaluator<'i>,
    context: SequentialContext,
}

impl<'i> ImageMachine<'i> {
    /// Creates a machine for `image` with the default cost model.
    pub fn new(image: &'i ExecImage) -> Self {
        Self::with_cost(image, CostModel::default())
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_cost(image: &'i ExecImage, cost: CostModel) -> Self {
        Self {
            evaluator: ImageEvaluator::with_cost(image, cost),
            context: SequentialContext {
                memory: image.initial_memory.clone(),
            },
        }
    }

    /// Sets the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.evaluator.set_fuel(fuel);
    }

    /// Calls `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on faults, fuel exhaustion or malformed IR.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Option<Value>, ExecError> {
        self.evaluator
            .call(func, args, &mut self.context, &mut NullImageObserver)
    }

    /// Calls `func` with `args`, reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on faults, fuel exhaustion or malformed IR.
    pub fn call_observed<O: ImageObserver + ?Sized>(
        &mut self,
        func: FuncId,
        args: &[Value],
        obs: &mut O,
    ) -> Result<Option<Value>, ExecError> {
        self.evaluator.call(func, args, &mut self.context, obs)
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.evaluator.stats
    }

    /// The machine's memory (for inspecting program results).
    pub fn memory(&self) -> &Memory {
        &self.context.memory
    }

    /// Mutable access to the machine's memory (for seeding inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.context.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::BlockId;
    use crate::instr::{BinOp, Operand, Pred};
    use crate::interp::Machine;
    use crate::module::Module;

    fn fib_module() -> (Module, FuncId) {
        let mut module = Module::new("fib");
        let fid = module.add_function(crate::function::Function::new("fib", 1));
        let mut b = FunctionBuilder::new("fib", 1);
        let n = b.param(0);
        let base = b.new_block();
        let rec = b.new_block();
        let c = b.cmp_to_new(Pred::Lt, Operand::Var(n), Operand::int(2));
        b.cond_br(Operand::Var(c), base, rec);
        b.switch_to(base);
        b.ret(Some(Operand::Var(n)));
        b.switch_to(rec);
        let n1 = b.binary_to_new(BinOp::Sub, Operand::Var(n), Operand::int(1));
        let n2 = b.binary_to_new(BinOp::Sub, Operand::Var(n), Operand::int(2));
        let f1 = b.new_var();
        let f2 = b.new_var();
        b.call(Some(f1), fid, vec![Operand::Var(n1)]);
        b.call(Some(f2), fid, vec![Operand::Var(n2)]);
        let s = b.binary_to_new(BinOp::Add, Operand::Var(f1), Operand::Var(f2));
        b.ret(Some(Operand::Var(s)));
        *module.function_mut(fid) = b.finish();
        (module, fid)
    }

    #[test]
    fn image_engine_matches_tree_walker_exactly() {
        let (module, fid) = fib_module();
        let image = ExecImage::lower(&module);
        let mut tree = Machine::new(&module);
        let mut flat = ImageMachine::new(&image);
        let expected = tree.call(fid, &[Value::Int(12)]).unwrap();
        let got = flat.call(fid, &[Value::Int(12)]).unwrap();
        assert_eq!(expected, got);
        assert_eq!(tree.stats(), flat.stats());
        assert_eq!(tree.memory(), flat.memory());
    }

    #[test]
    fn fuel_exhaustion_matches() {
        let (module, fid) = fib_module();
        let image = ExecImage::lower(&module);
        for fuel in [0, 1, 10, 137] {
            let mut tree = Machine::new(&module);
            tree.set_fuel(fuel);
            let mut flat = ImageMachine::new(&image);
            flat.set_fuel(fuel);
            assert_eq!(
                tree.call(fid, &[Value::Int(20)]),
                flat.call(fid, &[Value::Int(20)]),
                "divergence at fuel {fuel}"
            );
            assert_eq!(tree.stats(), flat.stats(), "stats diverge at fuel {fuel}");
        }
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut module = Module::new("m");
        let mut f = crate::function::Function::new("bad", 0);
        let entry = f.entry;
        f.block_mut(entry).instrs.push(crate::instr::Instr::Const {
            dst: crate::ids::VarId::new(0),
            value: Operand::int(1),
        });
        f.num_vars = 1;
        let id = module.add_function(f);
        let image = ExecImage::lower(&module);
        let mut m = ImageMachine::new(&image);
        assert!(matches!(
            m.call(id, &[]),
            Err(ExecError::MissingTerminator(_))
        ));
        // The const executed (and consumed fuel/stats) before the trap, like the tree-walker.
        assert_eq!(m.stats().instrs, 1);
    }

    #[test]
    fn stack_overflow_detected() {
        let mut module = Module::new("m");
        let fid = module.add_function(crate::function::Function::new("loopy", 0));
        let mut b = FunctionBuilder::new("loopy", 0);
        b.call(None, fid, vec![]);
        b.ret(None);
        *module.function_mut(fid) = b.finish();
        let image = ExecImage::lower(&module);
        let mut m = ImageMachine::new(&image);
        assert_eq!(m.call(fid, &[]), Err(ExecError::StackOverflow));
    }

    #[test]
    fn observer_sees_blocks_ops_and_calls() {
        #[derive(Default)]
        struct Counter {
            ops: u64,
            blocks: u64,
            calls: u64,
            returns: u64,
            cycles: u64,
        }
        impl ImageObserver for Counter {
            fn on_block_enter(&mut self, _f: FuncId, _b: u32) {
                self.blocks += 1;
            }
            fn on_op(&mut self, _f: FuncId, _pc: u32, c: u64) {
                self.ops += 1;
                self.cycles += c;
            }
            fn on_call(&mut self, _c: FuncId, _pc: u32, _t: FuncId) {
                self.calls += 1;
            }
            fn on_return(&mut self, _f: FuncId) {
                self.returns += 1;
            }
        }
        let (module, fid) = fib_module();
        let image = ExecImage::lower(&module);
        let mut m = ImageMachine::new(&image);
        let mut obs = Counter::default();
        m.call_observed(fid, &[Value::Int(7)], &mut obs).unwrap();
        assert_eq!(obs.ops, m.stats().instrs);
        assert_eq!(obs.blocks, m.stats().blocks);
        assert_eq!(obs.cycles, m.stats().cycles);
        assert!(obs.calls > 0);
        assert!(obs.returns > obs.calls);
    }

    #[test]
    fn exec_block_steps_through_a_function() {
        // Drive fib's control flow manually through exec_block, mirroring what the parallel
        // runtime does for loop blocks.
        let mut module = Module::new("m");
        let mut b = FunctionBuilder::new("sum3", 1);
        let n = b.param(0);
        let exit = b.new_block();
        let s = b.binary_to_new(BinOp::Mul, Operand::Var(n), Operand::int(3));
        b.br(exit);
        b.switch_to(exit);
        b.ret(Some(Operand::Var(s)));
        let f = module.add_function(b.finish());
        let image = ExecImage::lower(&module);
        let mut ev = ImageEvaluator::new(&image);
        let mut ctx = SequentialContext::default();
        let mut regs = vec![Value::Int(14)];
        let fi = image.func(f);
        let mut block = fi.entry_block;
        let result = loop {
            match ev
                .exec_block(f, block, &mut regs, &mut ctx, &mut NullImageObserver)
                .unwrap()
            {
                BlockOutcome::Jump(next) => block = next,
                BlockOutcome::Return(v) => break v,
            }
        };
        assert_eq!(result.unwrap().as_int(), 42);
        let _ = BlockId::new(0);
    }
}
