//! Modules and global memory objects.

use crate::function::Function;
use crate::ids::{FuncId, GlobalId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A statically allocated memory object.
///
/// Globals model the statically allocated arrays and scalars of the benchmark programs. They
/// are also how the HELIX transformation materializes *loop boundary live variables* (Step 7):
/// values produced in one loop iteration and consumed in another are demoted to loads/stores
/// on a dedicated global so that parallel threads share them through memory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// The global's identifier within its module.
    pub id: GlobalId,
    /// Human-readable name.
    pub name: String,
    /// Size of the object in memory words.
    pub words: usize,
    /// Initial values for the first `init.len()` words; the rest are zero.
    pub init: Vec<Value>,
}

/// A whole program: functions plus global memory objects.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name, used only for diagnostics.
    pub name: String,
    /// Functions indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Globals indexed by [`GlobalId`].
    pub globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, function: Function) -> FuncId {
        let id = FuncId::new(self.functions.len() as u32);
        self.functions.push(function);
        id
    }

    /// Adds a zero-initialized global of `words` words and returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, words: usize) -> GlobalId {
        self.add_global_init(name, words, Vec::new())
    }

    /// Adds a global with explicit initial values.
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than `words`.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        words: usize,
        init: Vec<Value>,
    ) -> GlobalId {
        assert!(init.len() <= words, "initializer longer than the global");
        let id = GlobalId::new(self.globals.len() as u32);
        self.globals.push(Global {
            id,
            name: name.into(),
            words,
            init,
        });
        id
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the function does not exist.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Returns a mutable reference to the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the function does not exist.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId::new(i as u32))
    }

    /// Returns the global with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Iterates over all function ids.
    pub fn function_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId::new)
    }

    /// Total number of words of global memory (the base of the heap in the interpreter).
    pub fn global_memory_words(&self) -> usize {
        self.globals.iter().map(|g| g.words).sum()
    }

    /// Computes the base address of each global in the flat memory layout.
    ///
    /// Globals are laid out contiguously, in declaration order, starting at address 1 (word 0
    /// is reserved so that address 0 can serve as a null pointer).
    pub fn global_base_addresses(&self) -> Vec<i64> {
        let mut bases = Vec::with_capacity(self.globals.len());
        let mut next = 1i64;
        for g in &self.globals {
            bases.push(next);
            next += g.words as i64;
        }
        bases
    }

    /// Total number of instructions in the module.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_functions() {
        let mut m = Module::new("m");
        let f0 = m.add_function(Function::new("main", 0));
        let f1 = m.add_function(Function::new("helper", 2));
        assert_eq!(f0, FuncId::new(0));
        assert_eq!(f1, FuncId::new(1));
        assert_eq!(m.function(f1).name, "helper");
        assert_eq!(m.function_by_name("main"), Some(f0));
        assert_eq!(m.function_by_name("missing"), None);
        assert_eq!(m.function_ids().count(), 2);
    }

    #[test]
    fn global_layout_reserves_null() {
        let mut m = Module::new("m");
        let a = m.add_global("a", 10);
        let b = m.add_global("b", 4);
        assert_eq!(m.global(a).words, 10);
        assert_eq!(m.global(b).name, "b");
        assert_eq!(m.global_base_addresses(), vec![1, 11]);
        assert_eq!(m.global_memory_words(), 14);
    }

    #[test]
    fn global_with_initializer() {
        let mut m = Module::new("m");
        let g = m.add_global_init("init", 3, vec![Value::Int(7), Value::Float(1.5)]);
        assert_eq!(m.global(g).init.len(), 2);
    }

    #[test]
    #[should_panic(expected = "initializer longer than the global")]
    fn oversized_initializer_panics() {
        let mut m = Module::new("m");
        m.add_global_init("bad", 1, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn instr_count_sums_functions() {
        let mut m = Module::new("m");
        m.add_function(Function::new("empty", 0));
        assert_eq!(m.instr_count(), 0);
    }
}
