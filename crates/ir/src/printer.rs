//! Textual printing of IR.
//!
//! The printed form is the *canonical grammar* of the textual HIR format: everything this
//! module emits can be re-parsed by `helix-frontend` into an equal [`Module`]
//! (`parse(print(m)) == m`). `docs/hir-grammar.md` documents the grammar; the frontend's
//! round-trip tests enforce the symmetry. That round-trip contract is why the printer
//! spells out global initializers, the register count in function headers, lowercase
//! operator mnemonics and re-parseable float literals rather than a purely cosmetic dump.

use crate::function::Function;
use crate::instr::{BinOp, Instr, Pred, UnOp};
use crate::module::{Global, Module};
use crate::value::Value;
use std::fmt;
use std::fmt::Write as _;

/// The lowercase mnemonic of a binary operator, as printed and parsed.
pub fn binop_mnemonic(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Min => "min",
        BinOp::Max => "max",
    }
}

/// The lowercase mnemonic of a unary operator, as printed and parsed.
pub fn unop_mnemonic(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::ToFloat => "tofloat",
        UnOp::ToInt => "toint",
    }
}

/// The lowercase mnemonic of a comparison predicate, as printed after `cmp.`.
pub fn pred_mnemonic(pred: Pred) -> &'static str {
    match pred {
        Pred::Eq => "eq",
        Pred::Ne => "ne",
        Pred::Lt => "lt",
        Pred::Le => "le",
        Pred::Gt => "gt",
        Pred::Ge => "ge",
    }
}

/// Formats a float immediate so the parser can read it back.
///
/// Finite values use Rust's shortest round-trip decimal representation followed by the `f`
/// suffix; the non-finite values get the keywords `inff`, `-inff` and `nanf` (Rust's own
/// `Display` for them — `inf`, `NaN` — would collide with identifiers).
pub fn format_float(x: f64) -> String {
    if x.is_nan() {
        "nanf".to_string()
    } else if x.is_infinite() {
        if x > 0.0 {
            "inff".to_string()
        } else {
            "-inff".to_string()
        }
    } else {
        format!("{x}f")
    }
}

/// Formats a [`Value`] as it appears inside global initializer lists.
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(x) => format_float(*x),
    }
}

/// Returns `true` if `name` can be printed bare (without quotes) in the textual format.
///
/// The float keywords `inff`/`nanf` lex as float literals, not identifiers, so names that
/// collide with them must be quoted.
pub fn is_bare_name(name: &str) -> bool {
    if name == "inff" || name == "nanf" {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Formats a module or function name: bare when identifier-shaped, quoted otherwise.
pub fn format_name(name: &str) -> String {
    if is_bare_name(name) {
        name.to_string()
    } else {
        format_quoted(name)
    }
}

/// Formats a string literal with `\\` and `\"` escapes (used for global names).
pub fn format_quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a single instruction.
pub fn format_instr(instr: &Instr) -> String {
    match instr {
        Instr::Const { dst, value } => format!("{dst} = const {value}"),
        Instr::Copy { dst, src } => format!("{dst} = copy {src}"),
        Instr::Unary { dst, op, src } => format!("{dst} = {} {src}", unop_mnemonic(*op)),
        Instr::Binary { dst, op, lhs, rhs } => {
            format!("{dst} = {} {lhs}, {rhs}", binop_mnemonic(*op))
        }
        Instr::Cmp {
            dst,
            pred,
            lhs,
            rhs,
        } => format!("{dst} = cmp.{} {lhs}, {rhs}", pred_mnemonic(*pred)),
        Instr::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => format!("{dst} = select {cond}, {on_true}, {on_false}"),
        Instr::Load { dst, addr, offset } => format!("{dst} = load [{addr} + {offset}]"),
        Instr::Store {
            addr,
            offset,
            value,
        } => format!("store [{addr} + {offset}], {value}"),
        Instr::Alloc { dst, words } => format!("{dst} = alloc {words}"),
        Instr::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {callee}({})", args.join(", ")),
                None => format!("call {callee}({})", args.join(", ")),
            }
        }
        Instr::Wait { dep } => format!("wait {dep}"),
        Instr::Signal { dep } => format!("signal {dep}"),
        Instr::Br { target } => format!("br {target}"),
        Instr::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("condbr {cond}, {then_bb}, {else_bb}"),
        Instr::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret".to_string(),
        },
    }
}

/// Formats a whole function.
pub fn format_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "func {}({} params, {} vars) {{",
        format_name(&f.name),
        f.num_params,
        f.num_vars
    );
    for block in &f.blocks {
        let marker = if block.id == f.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "{}:{marker}", block.id);
        for instr in &block.instrs {
            let _ = writeln!(out, "  {}", format_instr(instr));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Formats one global declaration.
pub fn format_global(g: &Global) -> String {
    let mut out = format!(
        "global {} {} [{} words]",
        g.id,
        format_quoted(&g.name),
        g.words
    );
    if !g.init.is_empty() {
        let values: Vec<String> = g.init.iter().map(format_value).collect();
        let _ = write!(out, " = [{}]", values.join(", "));
    }
    out
}

/// Formats a whole module.
pub fn format_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", format_name(&m.name));
    for g in &m.globals {
        let _ = writeln!(out, "{}", format_global(g));
    }
    for f in &m.functions {
        out.push_str(&format_function(f));
    }
    out
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_function(self))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::DepId;
    use crate::instr::{BinOp, Operand, Pred};

    #[test]
    fn prints_readable_text() {
        let mut b = FunctionBuilder::new("demo", 1);
        let p = b.param(0);
        let x = b.binary_to_new(BinOp::Add, Operand::Var(p), Operand::int(1));
        let c = b.cmp_to_new(Pred::Lt, Operand::Var(x), Operand::int(10));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(Operand::Var(c), t, e);
        b.switch_to(t);
        b.wait(DepId::new(0));
        b.store(Operand::Var(p), 0, Operand::Var(x));
        b.signal(DepId::new(0));
        b.ret(None);
        b.switch_to(e);
        b.ret(Some(Operand::Var(x)));
        let f = b.finish();
        let text = format_function(&f);
        assert!(text.contains("func demo"));
        assert!(text.contains("%v1 = add %v0, 1"));
        assert!(text.contains("wait dep0"));
        assert!(text.contains("signal dep0"));
        assert!(text.contains("condbr"));
        assert!(text.contains("(entry)"));
        assert_eq!(text, f.to_string());
    }

    #[test]
    fn module_printing_includes_globals() {
        let mut m = Module::new("prog");
        m.add_global("buf", 32);
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        m.add_function(b.finish());
        let text = format_module(&m);
        assert!(text.contains("module prog"));
        assert!(text.contains("global @g0 \"buf\" [32 words]"));
        assert!(text.contains("func main"));
        assert_eq!(text, m.to_string());
    }

    #[test]
    fn global_initializers_are_printed() {
        let mut m = Module::new("prog");
        m.add_global_init("table", 4, vec![Value::Int(-3), Value::Float(2.5)]);
        let text = format_module(&m);
        assert!(
            text.contains("global @g0 \"table\" [4 words] = [-3, 2.5f]"),
            "got: {text}"
        );
    }

    #[test]
    fn function_header_carries_register_count() {
        let mut b = FunctionBuilder::new("regs", 2);
        let _ = b.new_var();
        b.ret(None);
        let text = format_function(&b.finish());
        assert!(
            text.contains("func regs(2 params, 3 vars) {"),
            "got: {text}"
        );
    }

    #[test]
    fn floats_are_reparseable() {
        assert_eq!(format_float(2.5), "2.5f");
        assert_eq!(format_float(2.0), "2f");
        assert_eq!(format_float(-0.125), "-0.125f");
        assert_eq!(format_float(f64::NAN), "nanf");
        assert_eq!(format_float(f64::INFINITY), "inff");
        assert_eq!(format_float(f64::NEG_INFINITY), "-inff");
        assert_eq!(Operand::float(1.5).to_string(), "1.5f");
    }

    #[test]
    fn names_are_quoted_only_when_needed() {
        assert_eq!(format_name("main"), "main");
        assert_eq!(format_name("art_reset.nodes"), "art_reset.nodes");
        assert_eq!(format_name("my prog"), "\"my prog\"");
        assert_eq!(format_name("0start"), "\"0start\"");
        // Names colliding with float keywords must be quoted to stay re-parseable.
        assert_eq!(format_name("inff"), "\"inff\"");
        assert_eq!(format_name("nanf"), "\"nanf\"");
        assert_eq!(format_name("inffx"), "inffx");
        assert_eq!(format_name(""), "\"\"");
        assert_eq!(format_quoted("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
