//! Textual printing of IR for debugging and golden tests.

use crate::function::Function;
use crate::instr::Instr;
use crate::module::Module;
use std::fmt;
use std::fmt::Write as _;

/// Formats a single instruction.
pub fn format_instr(instr: &Instr) -> String {
    match instr {
        Instr::Const { dst, value } => format!("{dst} = const {value}"),
        Instr::Copy { dst, src } => format!("{dst} = copy {src}"),
        Instr::Unary { dst, op, src } => format!("{dst} = {op:?} {src}").to_lowercase(),
        Instr::Binary { dst, op, lhs, rhs } => {
            format!("{dst} = {op:?} {lhs}, {rhs}").to_lowercase()
        }
        Instr::Cmp {
            dst,
            pred,
            lhs,
            rhs,
        } => format!("{dst} = cmp.{pred:?} {lhs}, {rhs}").to_lowercase(),
        Instr::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => format!("{dst} = select {cond}, {on_true}, {on_false}"),
        Instr::Load { dst, addr, offset } => format!("{dst} = load [{addr} + {offset}]"),
        Instr::Store {
            addr,
            offset,
            value,
        } => format!("store [{addr} + {offset}], {value}"),
        Instr::Alloc { dst, words } => format!("{dst} = alloc {words}"),
        Instr::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {callee}({})", args.join(", ")),
                None => format!("call {callee}({})", args.join(", ")),
            }
        }
        Instr::Wait { dep } => format!("wait {dep}"),
        Instr::Signal { dep } => format!("signal {dep}"),
        Instr::Br { target } => format!("br {target}"),
        Instr::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("condbr {cond}, {then_bb}, {else_bb}"),
        Instr::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret".to_string(),
        },
    }
}

/// Formats a whole function.
pub fn format_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "func {}({} params) {{", f.name, f.num_params);
    for block in &f.blocks {
        let marker = if block.id == f.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "{}:{marker}", block.id);
        for instr in &block.instrs {
            let _ = writeln!(out, "  {}", format_instr(instr));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Formats a whole module.
pub fn format_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);
    for g in &m.globals {
        let _ = writeln!(out, "global {} \"{}\" [{} words]", g.id, g.name, g.words);
    }
    for f in &m.functions {
        out.push_str(&format_function(f));
    }
    out
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_function(self))
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::DepId;
    use crate::instr::{BinOp, Operand, Pred};

    #[test]
    fn prints_readable_text() {
        let mut b = FunctionBuilder::new("demo", 1);
        let p = b.param(0);
        let x = b.binary_to_new(BinOp::Add, Operand::Var(p), Operand::int(1));
        let c = b.cmp_to_new(Pred::Lt, Operand::Var(x), Operand::int(10));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(Operand::Var(c), t, e);
        b.switch_to(t);
        b.wait(DepId::new(0));
        b.store(Operand::Var(p), 0, Operand::Var(x));
        b.signal(DepId::new(0));
        b.ret(None);
        b.switch_to(e);
        b.ret(Some(Operand::Var(x)));
        let f = b.finish();
        let text = format_function(&f);
        assert!(text.contains("func demo"));
        assert!(text.contains("%v1 = add %v0, 1"));
        assert!(text.contains("wait dep0"));
        assert!(text.contains("signal dep0"));
        assert!(text.contains("condbr"));
        assert!(text.contains("(entry)"));
        assert_eq!(text, f.to_string());
    }

    #[test]
    fn module_printing_includes_globals() {
        let mut m = Module::new("prog");
        m.add_global("buf", 32);
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        m.add_function(b.finish());
        let text = format_module(&m);
        assert!(text.contains("module prog"));
        assert!(text.contains("global @g0 \"buf\" [32 words]"));
        assert!(text.contains("func main"));
        assert_eq!(text, m.to_string());
    }
}
