//! Flat word-addressed program memory used by the interpreters.
//!
//! The layout mirrors a simple bare-metal model: word 0 is the null sentinel, globals occupy
//! the next contiguous region, and heap allocations (`Alloc` instructions) bump upward from
//! there. Addresses are plain `i64` word indices so pointer arithmetic in benchmark programs
//! is ordinary integer arithmetic.

use crate::module::Module;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Error raised on out-of-range memory accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryError {
    /// The faulting address.
    pub address: i64,
    /// Whether the faulting access was a write.
    pub write: bool,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-range memory {} at address {}",
            if self.write { "write" } else { "read" },
            self.address
        )
    }
}

impl std::error::Error for MemoryError {}

/// Flat, word-addressed program memory with a bump allocator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Memory {
    words: Vec<Value>,
    heap_base: usize,
    next_free: usize,
}

impl Memory {
    /// Default memory capacity in words (grown on demand up to [`Memory::MAX_WORDS`]).
    pub const DEFAULT_WORDS: usize = 1 << 16;
    /// Hard upper bound on memory size to keep runaway workloads in check.
    pub const MAX_WORDS: usize = 1 << 26;

    /// Creates memory for a module: globals are laid out and initialized, and the heap starts
    /// right after them.
    pub fn for_module(module: &Module) -> Self {
        let global_words = module.global_memory_words();
        let capacity = (global_words + 1).max(Self::DEFAULT_WORDS);
        let mut words = vec![Value::default(); capacity];
        let bases = module.global_base_addresses();
        for (global, base) in module.globals.iter().zip(&bases) {
            for (offset, value) in global.init.iter().enumerate() {
                words[*base as usize + offset] = *value;
            }
        }
        Self {
            words,
            heap_base: global_words + 1,
            next_free: global_words + 1,
        }
    }

    /// The raw word array (bulk seeding of derived memories; the live prefix is
    /// `words()[..heap_base + heap_used]`, the tail is untouched capacity).
    pub fn words(&self) -> &[Value] {
        &self.words
    }

    /// A copy sharing this memory's layout and contents but cloning only the live prefix
    /// (globals + allocated heap). Reads beyond the prefix see zero and writes grow on
    /// demand, exactly like the full copy — at a fraction of the per-run cost when the
    /// backing capacity is mostly untouched (the parallel runtime clones a memory per
    /// `execute`).
    pub fn fresh_copy(&self) -> Memory {
        let live = (self.heap_base + self.heap_used()).min(self.words.len());
        Memory {
            words: self.words[..live].to_vec(),
            heap_base: self.heap_base,
            next_free: self.next_free,
        }
    }

    /// Creates an empty memory with the default capacity and no globals.
    pub fn new() -> Self {
        Self {
            words: vec![Value::default(); Self::DEFAULT_WORDS],
            heap_base: 1,
            next_free: 1,
        }
    }

    /// Address of the first heap word.
    pub fn heap_base(&self) -> i64 {
        self.heap_base as i64
    }

    /// Number of words currently allocated on the heap.
    pub fn heap_used(&self) -> usize {
        self.next_free - self.heap_base
    }

    /// Bump-allocates `words` words and returns the base address.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] if the allocation would exceed [`Memory::MAX_WORDS`].
    pub fn alloc(&mut self, words: usize) -> Result<i64, MemoryError> {
        let base = self.next_free;
        let end = base.checked_add(words).ok_or(MemoryError {
            address: i64::MAX,
            write: true,
        })?;
        if end > Self::MAX_WORDS {
            return Err(MemoryError {
                address: end as i64,
                write: true,
            });
        }
        if end > self.words.len() {
            let new_len = end.next_power_of_two().min(Self::MAX_WORDS);
            self.words.resize(new_len, Value::default());
        }
        self.next_free = end;
        Ok(base as i64)
    }

    /// Reads the word at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] for negative or excessively large addresses.
    pub fn load(&self, address: i64) -> Result<Value, MemoryError> {
        let idx = self.check(address, false)?;
        Ok(self.words.get(idx).copied().unwrap_or_default())
    }

    /// Writes the word at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError`] for negative or excessively large addresses.
    pub fn store(&mut self, address: i64, value: Value) -> Result<(), MemoryError> {
        let idx = self.check(address, true)?;
        if idx >= self.words.len() {
            let new_len = (idx + 1).next_power_of_two().min(Self::MAX_WORDS);
            self.words.resize(new_len, Value::default());
        }
        self.words[idx] = value;
        Ok(())
    }

    fn check(&self, address: i64, write: bool) -> Result<usize, MemoryError> {
        if address < 0 || address as usize >= Self::MAX_WORDS {
            Err(MemoryError { address, write })
        } else {
            Ok(address as usize)
        }
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn load_store_roundtrip() {
        let mut mem = Memory::new();
        mem.store(100, Value::Int(42)).unwrap();
        assert_eq!(mem.load(100).unwrap(), Value::Int(42));
        assert_eq!(mem.load(101).unwrap(), Value::Int(0));
    }

    #[test]
    fn negative_address_errors() {
        let mut mem = Memory::new();
        assert!(mem.load(-1).is_err());
        assert!(mem.store(-5, Value::Int(1)).is_err());
        let err = mem.load(-1).unwrap_err();
        assert!(err.to_string().contains("read"));
    }

    #[test]
    fn alloc_bumps_and_grows() {
        let mut mem = Memory::new();
        let a = mem.alloc(10).unwrap();
        let b = mem.alloc(5).unwrap();
        assert_eq!(b, a + 10);
        assert_eq!(mem.heap_used(), 15);
        // Growing past the default capacity works.
        let big = mem.alloc(Memory::DEFAULT_WORDS * 2).unwrap();
        mem.store(big, Value::Int(9)).unwrap();
        assert_eq!(mem.load(big).unwrap(), Value::Int(9));
    }

    #[test]
    fn alloc_beyond_max_errors() {
        let mut mem = Memory::new();
        assert!(mem.alloc(Memory::MAX_WORDS + 1).is_err());
    }

    #[test]
    fn module_globals_are_initialized() {
        let mut m = Module::new("m");
        let g = m.add_global_init("g", 4, vec![Value::Int(3), Value::Int(4)]);
        let mem = Memory::for_module(&m);
        let base = m.global_base_addresses()[g.index()];
        assert_eq!(mem.load(base).unwrap(), Value::Int(3));
        assert_eq!(mem.load(base + 1).unwrap(), Value::Int(4));
        assert_eq!(mem.load(base + 2).unwrap(), Value::Int(0));
        assert_eq!(mem.heap_base(), 5);
    }

    #[test]
    fn null_word_reserved() {
        let m = Module::new("m");
        let mem = Memory::for_module(&m);
        assert_eq!(mem.heap_base(), 1);
        assert_eq!(mem.load(0).unwrap(), Value::Int(0));
    }
}
