//! Functions and basic blocks.

use crate::ids::{BlockId, InstrRef, VarId};
use crate::instr::Instr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A basic block: a straight-line sequence of instructions ending in a terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The block's identifier within its function.
    pub id: BlockId,
    /// The instructions; the last one must be a terminator for a verified function.
    pub instrs: Vec<Instr>,
}

impl BasicBlock {
    /// Creates an empty block with the given id.
    pub fn new(id: BlockId) -> Self {
        Self {
            id,
            instrs: Vec::new(),
        }
    }

    /// Returns the terminator instruction, if the block has one.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }

    /// Returns the successor blocks of this block.
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().map(Instr::successors).unwrap_or_default()
    }

    /// Returns the instructions excluding the terminator.
    pub fn body(&self) -> &[Instr] {
        match self.instrs.last() {
            Some(last) if last.is_terminator() => &self.instrs[..self.instrs.len() - 1],
            _ => &self.instrs,
        }
    }

    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the block contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A function: parameters, virtual registers and a control flow graph of basic blocks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name, unique within a module.
    pub name: String,
    /// Number of parameters; parameters occupy registers `%v0..%v{num_params}`.
    pub num_params: usize,
    /// Total number of virtual registers used by the function.
    pub num_vars: usize,
    /// Basic blocks indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        Self {
            name: name.into(),
            num_params,
            num_vars: num_params,
            blocks: vec![BasicBlock::new(BlockId::new(0))],
            entry: BlockId::new(0),
        }
    }

    /// Returns the register holding parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_params`.
    pub fn param(&self, index: usize) -> VarId {
        assert!(index < self.num_params, "parameter index out of range");
        VarId::new(index as u32)
    }

    /// Allocates a fresh virtual register.
    pub fn new_var(&mut self) -> VarId {
        let v = VarId::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Appends a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(id));
        id
    }

    /// Returns a reference to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Returns a mutable reference to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().map(|b| b.id)
    }

    /// Returns the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of bounds.
    pub fn instr(&self, r: InstrRef) -> &Instr {
        &self.blocks[r.block.index()].instrs[r.index]
    }

    /// Returns a mutable reference to the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of bounds.
    pub fn instr_mut(&mut self, r: InstrRef) -> &mut Instr {
        &mut self.blocks[r.block.index()].instrs[r.index]
    }

    /// Iterates over every instruction with its [`InstrRef`], in block order.
    pub fn instr_refs(&self) -> impl Iterator<Item = (InstrRef, &Instr)> + '_ {
        self.blocks.iter().flat_map(|b| {
            b.instrs
                .iter()
                .enumerate()
                .map(move |(i, instr)| (InstrRef::new(b.id, i), instr))
        })
    }

    /// Total number of instructions across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Computes the predecessor map of the control flow graph.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> =
            self.block_ids().map(|b| (b, Vec::new())).collect();
        for b in &self.blocks {
            for s in b.successors() {
                preds.entry(s).or_default().push(b.id);
            }
        }
        preds
    }

    /// Computes the successor map of the control flow graph.
    pub fn successors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        self.blocks.iter().map(|b| (b.id, b.successors())).collect()
    }

    /// Returns the blocks reachable from the entry, in reverse postorder.
    ///
    /// Reverse postorder is the canonical iteration order for forward data-flow analyses.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to avoid recursion limits on large synthetic workloads.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some((block, child_idx)) = stack.pop() {
            let succs = self.block(block).successors();
            if child_idx < succs.len() {
                stack.push((block, child_idx + 1));
                let child = succs[child_idx];
                if !visited[child.index()] {
                    visited[child.index()] = true;
                    stack.push((child, 0));
                }
            } else {
                postorder.push(block);
            }
        }
        postorder.reverse();
        postorder
    }

    /// Splits the block `at.block` right before the instruction at `at.index`.
    ///
    /// The original block keeps instructions `[0, at.index)` plus a new `Br` to a fresh block
    /// holding the rest. Returns the id of the new block. Branch targets elsewhere are
    /// unaffected because the original block id keeps the first half.
    pub fn split_block(&mut self, at: InstrRef) -> BlockId {
        let new_id = self.new_block();
        let old = &mut self.blocks[at.block.index()];
        let tail: Vec<Instr> = old.instrs.split_off(at.index);
        old.instrs.push(Instr::Br { target: new_id });
        self.blocks[new_id.index()].instrs = tail;
        new_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, Operand};

    fn two_block_function() -> Function {
        let mut f = Function::new("f", 1);
        let t = f.new_var();
        let exit = f.new_block();
        let entry = f.entry;
        let p0 = f.param(0);
        f.block_mut(entry).instrs.push(Instr::Binary {
            dst: t,
            op: BinOp::Add,
            lhs: Operand::Var(p0),
            rhs: Operand::int(1),
        });
        f.block_mut(entry).instrs.push(Instr::Br { target: exit });
        f.block_mut(exit).instrs.push(Instr::Ret {
            value: Some(Operand::Var(t)),
        });
        f
    }

    #[test]
    fn params_and_vars() {
        let mut f = Function::new("f", 2);
        assert_eq!(f.param(0), VarId::new(0));
        assert_eq!(f.param(1), VarId::new(1));
        let v = f.new_var();
        assert_eq!(v, VarId::new(2));
        assert_eq!(f.num_vars, 3);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_out_of_range_panics() {
        let f = Function::new("f", 1);
        let _ = f.param(1);
    }

    #[test]
    fn successors_and_predecessors() {
        let f = two_block_function();
        let succ = f.successors();
        assert_eq!(succ[&f.entry], vec![BlockId::new(1)]);
        let preds = f.predecessors();
        assert_eq!(preds[&BlockId::new(1)], vec![f.entry]);
        assert!(preds[&f.entry].is_empty());
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let f = two_block_function();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 2);
    }

    #[test]
    fn instr_refs_iteration() {
        let f = two_block_function();
        let refs: Vec<_> = f.instr_refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(f.instr_count(), 3);
        assert_eq!(refs[0].0, InstrRef::new(f.entry, 0));
    }

    #[test]
    fn split_block_moves_tail() {
        let mut f = two_block_function();
        let new = f.split_block(InstrRef::new(f.entry, 1));
        // Entry now holds the add plus a branch to the new block.
        assert_eq!(f.block(f.entry).instrs.len(), 2);
        assert_eq!(f.block(f.entry).successors(), vec![new]);
        // New block holds the original branch to the exit block.
        assert_eq!(f.block(new).successors(), vec![BlockId::new(1)]);
    }

    #[test]
    fn block_body_excludes_terminator() {
        let f = two_block_function();
        assert_eq!(f.block(f.entry).body().len(), 1);
        assert_eq!(f.block(f.entry).len(), 2);
        assert!(!f.block(f.entry).is_empty());
    }
}
