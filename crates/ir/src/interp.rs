//! Sequential IR interpreter.
//!
//! The interpreter is split in two layers:
//!
//! * [`Evaluator`] executes IR against an abstract [`Context`], which supplies memory and the
//!   semantics of the HELIX `Wait`/`Signal` pseudo-instructions. This is what the profiler,
//!   the timing simulator and the real-thread runtime build on.
//! * [`Machine`] is the plain sequential machine: a private [`Memory`] plus no-op
//!   synchronization, suitable for running whole benchmark programs and for checking that the
//!   HELIX transformation preserves program semantics.
//!
//! Every executed instruction is charged cycles according to a [`CostModel`], and an
//! [`Observer`] receives a callback per block entry and per instruction, which is how the
//! profiler gathers the per-loop data the selection algorithm needs.

use crate::cost::CostModel;
use crate::function::Function;
use crate::ids::{BlockId, DepId, FuncId, InstrRef};
use crate::instr::{BinOp, Instr, Operand, Pred, UnOp};
use crate::memory::{Memory, MemoryError};
use crate::module::Module;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum call depth before the interpreter reports [`ExecError::StackOverflow`].
pub const MAX_CALL_DEPTH: usize = 512;

/// Default instruction budget (fuel) for a fresh interpreter.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;

/// Errors produced during interpretation.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A memory access was out of range.
    Memory(MemoryError),
    /// The instruction budget was exhausted (guards against non-terminating workloads).
    FuelExhausted,
    /// The call stack exceeded [`MAX_CALL_DEPTH`].
    StackOverflow,
    /// A block ended without a terminator (the function does not verify).
    MissingTerminator(BlockId),
    /// A `Wait` could not be satisfied (only possible in parallel execution contexts).
    Synchronization(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Memory(e) => write!(f, "memory fault: {e}"),
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::StackOverflow => write!(f, "call stack overflow"),
            ExecError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
            ExecError::Synchronization(s) => write!(f, "synchronization error: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemoryError> for ExecError {
    fn from(e: MemoryError) -> Self {
        ExecError::Memory(e)
    }
}

/// Aggregate execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Dynamic instruction count.
    pub instrs: u64,
    /// Total cycles charged by the cost model (including stall cycles reported by the context).
    pub cycles: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
    /// Dynamic call count.
    pub calls: u64,
    /// Dynamic count of basic blocks entered.
    pub blocks: u64,
    /// Dynamic count of `Wait` instructions executed.
    pub waits: u64,
    /// Dynamic count of `Signal` instructions executed.
    pub signals: u64,
}

impl ExecStats {
    /// Adds another statistics record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.instrs += other.instrs;
        self.cycles += other.cycles;
        self.loads += other.loads;
        self.stores += other.stores;
        self.calls += other.calls;
        self.blocks += other.blocks;
        self.waits += other.waits;
        self.signals += other.signals;
    }
}

/// Environment an [`Evaluator`] executes against: memory plus synchronization semantics.
pub trait Context {
    /// Reads a memory word.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid addresses.
    fn load(&mut self, addr: i64) -> Result<Value, ExecError>;
    /// Writes a memory word.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid addresses.
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError>;
    /// Allocates `words` words and returns the base address.
    ///
    /// # Errors
    ///
    /// Returns an error if the allocation cannot be satisfied.
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError>;
    /// Allocates `words` words proved thread-private by the privatization analysis
    /// ([`crate::lower::Op::PrivateAlloc`]). Sequential contexts have no private tier, so the
    /// default forwards to [`Context::alloc`]; the parallel runtime overrides this to serve
    /// the allocation from a per-worker bump arena that bypasses shared-memory striping.
    ///
    /// # Errors
    ///
    /// Returns an error if the allocation cannot be satisfied.
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError> {
        self.alloc(words)
    }
    /// Executes a `Wait` on `dep`, returning any extra stall cycles beyond the local cost.
    ///
    /// # Errors
    ///
    /// Returns an error if synchronization fails (e.g. a disconnected peer in a parallel run).
    fn wait(&mut self, dep: DepId) -> Result<u64, ExecError>;
    /// Executes a `Signal` on `dep`.
    ///
    /// # Errors
    ///
    /// Returns an error if synchronization fails.
    fn signal(&mut self, dep: DepId) -> Result<(), ExecError>;
}

/// The sequential context: private memory, no-op synchronization.
#[derive(Debug, Default)]
pub struct SequentialContext {
    /// The backing memory.
    pub memory: Memory,
}

impl SequentialContext {
    /// Creates a context whose memory is initialized from the module's globals.
    pub fn for_module(module: &Module) -> Self {
        Self {
            memory: Memory::for_module(module),
        }
    }
}

impl Context for SequentialContext {
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.memory.load(addr)?)
    }

    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        Ok(self.memory.store(addr, value)?)
    }

    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.memory.alloc(words)?)
    }

    fn wait(&mut self, _dep: DepId) -> Result<u64, ExecError> {
        Ok(0)
    }

    fn signal(&mut self, _dep: DepId) -> Result<(), ExecError> {
        Ok(())
    }
}

/// Receives callbacks as the evaluator executes code.
///
/// All methods have empty default implementations so implementors override only what they
/// need (the profiler uses block-entry and instruction events; tests use call events).
pub trait Observer {
    /// Called when control enters `block` of `func`.
    fn on_block_enter(&mut self, _func: FuncId, _block: BlockId) {}
    /// Called after each executed instruction with the cycles charged for it.
    fn on_instr(&mut self, _func: FuncId, _at: InstrRef, _instr: &Instr, _cycles: u64) {}
    /// Called when `caller` invokes `callee` from the call site `at`, before the callee runs.
    fn on_call(&mut self, _caller: FuncId, _at: InstrRef, _callee: FuncId) {}
    /// Called when `func` returns.
    fn on_return(&mut self, _func: FuncId) {}
}

/// An observer that ignores every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Executes IR functions against a [`Context`].
#[derive(Debug)]
pub struct Evaluator<'m> {
    module: &'m Module,
    cost: CostModel,
    global_bases: Vec<i64>,
    fuel: u64,
    /// Statistics accumulated across all calls made through this evaluator.
    pub stats: ExecStats,
}

impl<'m> Evaluator<'m> {
    /// Creates an evaluator with the default (i7-980X) cost model and default fuel.
    pub fn new(module: &'m Module) -> Self {
        Self::with_cost(module, CostModel::default())
    }

    /// Creates an evaluator with an explicit cost model.
    pub fn with_cost(module: &'m Module, cost: CostModel) -> Self {
        Self {
            module,
            cost,
            global_bases: module.global_base_addresses(),
            fuel: DEFAULT_FUEL,
            stats: ExecStats::default(),
        }
    }

    /// Sets the remaining instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Returns the remaining instruction budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Returns the module being executed.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Returns the cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Calls `func` with `args`, driving `ctx` and reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on memory faults, fuel exhaustion, stack overflow, malformed
    /// control flow, or synchronization failures reported by the context.
    pub fn call(
        &mut self,
        func: FuncId,
        args: &[Value],
        ctx: &mut dyn Context,
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, ExecError> {
        self.exec_function(func, args, ctx, obs, 0)
    }

    /// Evaluates an operand against a register file.
    pub fn eval_operand(&self, regs: &[Value], op: Operand) -> Value {
        match op {
            Operand::Var(v) => regs.get(v.index()).copied().unwrap_or_default(),
            Operand::ConstInt(i) => Value::Int(i),
            Operand::ConstFloat(f) => Value::Float(f),
            Operand::Global(g) => Value::Int(self.global_bases[g.index()]),
        }
    }

    fn exec_function(
        &mut self,
        func: FuncId,
        args: &[Value],
        ctx: &mut dyn Context,
        obs: &mut dyn Observer,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth > MAX_CALL_DEPTH {
            return Err(ExecError::StackOverflow);
        }
        let function: &Function = self.module.function(func);
        let mut regs = vec![Value::default(); function.num_vars.max(args.len())];
        for (i, a) in args.iter().enumerate().take(function.num_params) {
            regs[i] = *a;
        }

        let mut block = function.entry;
        loop {
            self.stats.blocks += 1;
            obs.on_block_enter(func, block);
            let bb = function.block(block);
            let mut next: Option<BlockId> = None;
            for (idx, instr) in bb.instrs.iter().enumerate() {
                if self.fuel == 0 {
                    return Err(ExecError::FuelExhausted);
                }
                self.fuel -= 1;
                self.stats.instrs += 1;
                let mut cycles = self.cost.cost(instr);
                match instr {
                    Instr::Const { dst, value } | Instr::Copy { dst, src: value } => {
                        regs[dst.index()] = self.eval_operand(&regs, *value);
                    }
                    Instr::Unary { dst, op, src } => {
                        let v = self.eval_operand(&regs, *src);
                        regs[dst.index()] = eval_unop(*op, v);
                    }
                    Instr::Binary { dst, op, lhs, rhs } => {
                        let a = self.eval_operand(&regs, *lhs);
                        let b = self.eval_operand(&regs, *rhs);
                        regs[dst.index()] = eval_binop(*op, a, b);
                    }
                    Instr::Cmp {
                        dst,
                        pred,
                        lhs,
                        rhs,
                    } => {
                        let a = self.eval_operand(&regs, *lhs);
                        let b = self.eval_operand(&regs, *rhs);
                        regs[dst.index()] = Value::from_bool(eval_pred(*pred, a, b));
                    }
                    Instr::Select {
                        dst,
                        cond,
                        on_true,
                        on_false,
                    } => {
                        let c = self.eval_operand(&regs, *cond).as_bool();
                        let v = if c {
                            self.eval_operand(&regs, *on_true)
                        } else {
                            self.eval_operand(&regs, *on_false)
                        };
                        regs[dst.index()] = v;
                    }
                    Instr::Load { dst, addr, offset } => {
                        let base = self.eval_operand(&regs, *addr).as_int();
                        regs[dst.index()] = ctx.load(base + offset)?;
                        self.stats.loads += 1;
                    }
                    Instr::Store {
                        addr,
                        offset,
                        value,
                    } => {
                        let base = self.eval_operand(&regs, *addr).as_int();
                        let v = self.eval_operand(&regs, *value);
                        ctx.store(base + offset, v)?;
                        self.stats.stores += 1;
                    }
                    Instr::Alloc { dst, words } => {
                        let n = self.eval_operand(&regs, *words).as_int().max(0) as usize;
                        regs[dst.index()] = Value::Int(ctx.alloc(n)?);
                    }
                    Instr::Call { dst, callee, args } => {
                        let actuals: Vec<Value> =
                            args.iter().map(|a| self.eval_operand(&regs, *a)).collect();
                        self.stats.calls += 1;
                        obs.on_call(func, InstrRef::new(block, idx), *callee);
                        let ret = self.exec_function(*callee, &actuals, ctx, obs, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.index()] = ret.unwrap_or_default();
                        }
                    }
                    Instr::Wait { dep } => {
                        self.stats.waits += 1;
                        cycles += ctx.wait(*dep)?;
                    }
                    Instr::Signal { dep } => {
                        self.stats.signals += 1;
                        ctx.signal(*dep)?;
                    }
                    Instr::Br { target } => {
                        next = Some(*target);
                    }
                    Instr::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.eval_operand(&regs, *cond).as_bool();
                        next = Some(if c { *then_bb } else { *else_bb });
                    }
                    Instr::Ret { value } => {
                        self.stats.cycles += cycles;
                        obs.on_instr(func, InstrRef::new(block, idx), instr, cycles);
                        obs.on_return(func);
                        return Ok(value.map(|v| self.eval_operand(&regs, v)));
                    }
                }
                self.stats.cycles += cycles;
                obs.on_instr(func, InstrRef::new(block, idx), instr, cycles);
            }
            block = next.ok_or(ExecError::MissingTerminator(block))?;
        }
    }
}

/// Evaluates a unary operation.
#[inline]
pub fn eval_unop(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
        },
        UnOp::Not => Value::Int(!v.as_int()),
        UnOp::ToFloat => Value::Float(v.as_float()),
        UnOp::ToInt => Value::Int(v.as_int()),
    }
}

/// Evaluates a binary operation; mixed int/float operands promote to float.
#[inline]
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => {
                if y == 0.0 {
                    0.0
                } else {
                    x / y
                }
            }
            BinOp::Rem => {
                if y == 0.0 {
                    0.0
                } else {
                    x % y
                }
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            // Bitwise operators fall back to the integer interpretation.
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                return eval_binop(op, Value::Int(a.as_int()), Value::Int(b.as_int()))
            }
        };
        Value::Float(r)
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_rem(y)
                }
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl((y & 63) as u32),
            BinOp::Shr => x.wrapping_shr((y & 63) as u32),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        };
        Value::Int(r)
    }
}

/// Evaluates a comparison predicate; mixed int/float operands compare as floats.
#[inline]
pub fn eval_pred(pred: Pred, a: Value, b: Value) -> bool {
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        match pred {
            Pred::Eq => x == y,
            Pred::Ne => x != y,
            Pred::Lt => x < y,
            Pred::Le => x <= y,
            Pred::Gt => x > y,
            Pred::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        match pred {
            Pred::Eq => x == y,
            Pred::Ne => x != y,
            Pred::Lt => x < y,
            Pred::Le => x <= y,
            Pred::Gt => x > y,
            Pred::Ge => x >= y,
        }
    }
}

/// A self-contained sequential machine: evaluator + private memory.
#[derive(Debug)]
pub struct Machine<'m> {
    evaluator: Evaluator<'m>,
    context: SequentialContext,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module` with the default cost model.
    pub fn new(module: &'m Module) -> Self {
        Self::with_cost(module, CostModel::default())
    }

    /// Creates a machine with an explicit cost model.
    pub fn with_cost(module: &'m Module, cost: CostModel) -> Self {
        Self {
            evaluator: Evaluator::with_cost(module, cost),
            context: SequentialContext::for_module(module),
        }
    }

    /// Sets the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.evaluator.set_fuel(fuel);
    }

    /// Calls `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on faults, fuel exhaustion or malformed IR.
    pub fn call(&mut self, func: FuncId, args: &[Value]) -> Result<Option<Value>, ExecError> {
        self.evaluator
            .call(func, args, &mut self.context, &mut NullObserver)
    }

    /// Calls `func` with `args`, reporting events to `obs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on faults, fuel exhaustion or malformed IR.
    pub fn call_observed(
        &mut self,
        func: FuncId,
        args: &[Value],
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, ExecError> {
        self.evaluator.call(func, args, &mut self.context, obs)
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.evaluator.stats
    }

    /// The machine's memory (for inspecting program results in tests and examples).
    pub fn memory(&self) -> &Memory {
        &self.context.memory
    }

    /// Mutable access to the machine's memory (for seeding inputs).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.context.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::VarId;
    use crate::instr::Operand;

    fn fib_module() -> (Module, FuncId) {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let mut module = Module::new("fib");
        let fid = module.add_function(Function::new("fib", 1));
        let mut b = FunctionBuilder::new("fib", 1);
        let n = b.param(0);
        let base = b.new_block();
        let rec = b.new_block();
        let c = b.cmp_to_new(Pred::Lt, Operand::Var(n), Operand::int(2));
        b.cond_br(Operand::Var(c), base, rec);
        b.switch_to(base);
        b.ret(Some(Operand::Var(n)));
        b.switch_to(rec);
        let n1 = b.binary_to_new(BinOp::Sub, Operand::Var(n), Operand::int(1));
        let n2 = b.binary_to_new(BinOp::Sub, Operand::Var(n), Operand::int(2));
        let f1 = b.new_var();
        let f2 = b.new_var();
        b.call(Some(f1), fid, vec![Operand::Var(n1)]);
        b.call(Some(f2), fid, vec![Operand::Var(n2)]);
        let s = b.binary_to_new(BinOp::Add, Operand::Var(f1), Operand::Var(f2));
        b.ret(Some(Operand::Var(s)));
        *module.function_mut(fid) = b.finish();
        (module, fid)
    }

    #[test]
    fn recursion_works() {
        let (module, fid) = fib_module();
        let mut m = Machine::new(&module);
        let out = m.call(fid, &[Value::Int(10)]).unwrap().unwrap();
        assert_eq!(out.as_int(), 55);
        assert!(m.stats().calls > 0);
        assert!(m.stats().cycles > m.stats().instrs);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let (module, fid) = fib_module();
        let mut m = Machine::new(&module);
        m.set_fuel(10);
        assert_eq!(
            m.call(fid, &[Value::Int(20)]),
            Err(ExecError::FuelExhausted)
        );
    }

    #[test]
    fn loads_and_stores_hit_memory() {
        let mut module = Module::new("m");
        let g = module.add_global("cell", 1);
        let mut b = FunctionBuilder::new("bump", 0);
        let v = b.new_var();
        b.load(v, Operand::Global(g), 0);
        let v2 = b.binary_to_new(BinOp::Add, Operand::Var(v), Operand::int(1));
        b.store(Operand::Global(g), 0, Operand::Var(v2));
        b.ret(Some(Operand::Var(v2)));
        let f = module.add_function(b.finish());
        let mut m = Machine::new(&module);
        assert_eq!(m.call(f, &[]).unwrap().unwrap().as_int(), 1);
        assert_eq!(m.call(f, &[]).unwrap().unwrap().as_int(), 2);
        assert_eq!(m.stats().loads, 2);
        assert_eq!(m.stats().stores, 2);
    }

    #[test]
    fn alloc_returns_distinct_regions() {
        let mut module = Module::new("m");
        let mut b = FunctionBuilder::new("alloc2", 0);
        let a = b.new_var();
        let c = b.new_var();
        b.alloc(a, Operand::int(8));
        b.alloc(c, Operand::int(8));
        b.store(Operand::Var(a), 0, Operand::int(1));
        b.store(Operand::Var(c), 0, Operand::int(2));
        let va = b.new_var();
        b.load(va, Operand::Var(a), 0);
        b.ret(Some(Operand::Var(va)));
        let f = module.add_function(b.finish());
        let mut m = Machine::new(&module);
        assert_eq!(m.call(f, &[]).unwrap().unwrap().as_int(), 1);
    }

    #[test]
    fn wait_signal_are_sequentially_noop() {
        let mut module = Module::new("m");
        let mut b = FunctionBuilder::new("sync", 0);
        b.wait(DepId::new(3));
        b.signal(DepId::new(3));
        b.ret(Some(Operand::int(7)));
        let f = module.add_function(b.finish());
        let mut m = Machine::new(&module);
        assert_eq!(m.call(f, &[]).unwrap().unwrap().as_int(), 7);
        assert_eq!(m.stats().waits, 1);
        assert_eq!(m.stats().signals, 1);
    }

    #[test]
    fn observer_sees_calls_and_instrs() {
        #[derive(Default)]
        struct Counter {
            instrs: usize,
            calls: usize,
            blocks: usize,
            returns: usize,
        }
        impl Observer for Counter {
            fn on_instr(&mut self, _f: FuncId, _a: InstrRef, _i: &Instr, _c: u64) {
                self.instrs += 1;
            }
            fn on_call(&mut self, _c: FuncId, _a: InstrRef, _t: FuncId) {
                self.calls += 1;
            }
            fn on_block_enter(&mut self, _f: FuncId, _b: BlockId) {
                self.blocks += 1;
            }
            fn on_return(&mut self, _f: FuncId) {
                self.returns += 1;
            }
        }
        let (module, fid) = fib_module();
        let mut m = Machine::new(&module);
        let mut obs = Counter::default();
        m.call_observed(fid, &[Value::Int(5)], &mut obs).unwrap();
        assert!(obs.instrs as u64 == m.stats().instrs);
        assert!(obs.calls > 0);
        assert!(obs.blocks > 0);
        assert!(obs.returns > obs.calls); // outer call returns too
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(eval_binop(BinOp::Add, 2.into(), 3.into()).as_int(), 5);
        assert_eq!(eval_binop(BinOp::Div, 7.into(), 0.into()).as_int(), 0);
        assert_eq!(eval_binop(BinOp::Rem, 7.into(), 0.into()).as_int(), 0);
        assert_eq!(eval_binop(BinOp::Min, 7.into(), 3.into()).as_int(), 3);
        assert_eq!(eval_binop(BinOp::Max, 7.into(), 3.into()).as_int(), 7);
        assert_eq!(
            eval_binop(BinOp::Add, Value::Float(0.5), 1.into()).as_float(),
            1.5
        );
        assert_eq!(
            eval_binop(BinOp::Div, Value::Float(1.0), Value::Float(0.0)).as_float(),
            0.0
        );
        assert_eq!(eval_binop(BinOp::Shl, 1.into(), 3.into()).as_int(), 8);
        assert_eq!(
            eval_binop(BinOp::And, Value::Float(3.0), 1.into()).as_int(),
            3 & 1
        );
    }

    #[test]
    fn unop_and_pred_semantics() {
        assert_eq!(eval_unop(UnOp::Neg, 5.into()).as_int(), -5);
        assert_eq!(eval_unop(UnOp::Neg, Value::Float(2.0)).as_float(), -2.0);
        assert_eq!(eval_unop(UnOp::ToFloat, 3.into()), Value::Float(3.0));
        assert_eq!(eval_unop(UnOp::ToInt, Value::Float(3.9)).as_int(), 3);
        assert!(eval_pred(Pred::Lt, 1.into(), 2.into()));
        assert!(eval_pred(Pred::Ge, 2.into(), 2.into()));
        assert!(eval_pred(Pred::Ne, Value::Float(1.5), 1.into()));
    }

    #[test]
    fn missing_terminator_detected() {
        let mut module = Module::new("m");
        let mut f = Function::new("bad", 0);
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::Const {
            dst: VarId::new(0),
            value: Operand::int(1),
        });
        f.num_vars = 1;
        let id = module.add_function(f);
        let mut m = Machine::new(&module);
        assert!(matches!(
            m.call(id, &[]),
            Err(ExecError::MissingTerminator(_))
        ));
    }

    #[test]
    fn stack_overflow_detected() {
        let mut module = Module::new("m");
        let fid = module.add_function(Function::new("loopy", 0));
        let mut b = FunctionBuilder::new("loopy", 0);
        b.call(None, fid, vec![]);
        b.ret(None);
        *module.function_mut(fid) = b.finish();
        let mut m = Machine::new(&module);
        assert_eq!(m.call(fid, &[]), Err(ExecError::StackOverflow));
    }
}
