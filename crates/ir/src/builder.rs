//! Convenience builders for constructing IR functions and modules.
//!
//! The builders keep an insertion point (a current block) and offer one method per
//! instruction kind, which keeps the synthetic SPEC-like workloads in `helix-workloads`
//! readable.

use crate::function::Function;
use crate::ids::{BlockId, DepId, FuncId, GlobalId, VarId};
use crate::instr::{BinOp, Instr, Operand, Pred, UnOp};
use crate::module::Module;
use crate::value::Value;

/// Builds one [`Function`] instruction by instruction.
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts building a function with `num_params` parameters; the insertion point is the
    /// entry block.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        let function = Function::new(name, num_params);
        let current = function.entry;
        Self { function, current }
    }

    /// Returns the register holding parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> VarId {
        self.function.param(index)
    }

    /// Allocates a fresh virtual register.
    pub fn new_var(&mut self) -> VarId {
        self.function.new_var()
    }

    /// Creates a new empty block (does not change the insertion point).
    pub fn new_block(&mut self) -> BlockId {
        self.function.new_block()
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Returns the current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Appends a raw instruction at the insertion point.
    pub fn push(&mut self, instr: Instr) {
        self.function.block_mut(self.current).instrs.push(instr);
    }

    /// `dst = value` for an integer immediate.
    pub fn const_int(&mut self, dst: VarId, value: i64) {
        self.push(Instr::Const {
            dst,
            value: Operand::int(value),
        });
    }

    /// `dst = value` for a float immediate.
    pub fn const_float(&mut self, dst: VarId, value: f64) {
        self.push(Instr::Const {
            dst,
            value: Operand::float(value),
        });
    }

    /// `dst = src`.
    pub fn copy(&mut self, dst: VarId, src: Operand) {
        self.push(Instr::Copy { dst, src });
    }

    /// `dst = op src`.
    pub fn unary(&mut self, dst: VarId, op: UnOp, src: Operand) {
        self.push(Instr::Unary { dst, op, src });
    }

    /// `dst = lhs op rhs`.
    pub fn binary(&mut self, dst: VarId, op: BinOp, lhs: Operand, rhs: Operand) {
        self.push(Instr::Binary { dst, op, lhs, rhs });
    }

    /// Allocates a new register, emits `new = lhs op rhs`, and returns it.
    pub fn binary_to_new(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> VarId {
        let dst = self.new_var();
        self.binary(dst, op, lhs, rhs);
        dst
    }

    /// `dst = lhs pred rhs`.
    pub fn cmp(&mut self, dst: VarId, pred: Pred, lhs: Operand, rhs: Operand) {
        self.push(Instr::Cmp {
            dst,
            pred,
            lhs,
            rhs,
        });
    }

    /// Allocates a new register, emits the comparison into it, and returns it.
    pub fn cmp_to_new(&mut self, pred: Pred, lhs: Operand, rhs: Operand) -> VarId {
        let dst = self.new_var();
        self.cmp(dst, pred, lhs, rhs);
        dst
    }

    /// `dst = cond ? on_true : on_false`.
    pub fn select(&mut self, dst: VarId, cond: Operand, on_true: Operand, on_false: Operand) {
        self.push(Instr::Select {
            dst,
            cond,
            on_true,
            on_false,
        });
    }

    /// `dst = mem[addr + offset]`.
    pub fn load(&mut self, dst: VarId, addr: Operand, offset: i64) {
        self.push(Instr::Load { dst, addr, offset });
    }

    /// `mem[addr + offset] = value`.
    pub fn store(&mut self, addr: Operand, offset: i64, value: Operand) {
        self.push(Instr::Store {
            addr,
            offset,
            value,
        });
    }

    /// `dst = alloc(words)`.
    pub fn alloc(&mut self, dst: VarId, words: Operand) {
        self.push(Instr::Alloc { dst, words });
    }

    /// `dst = callee(args...)`.
    pub fn call(&mut self, dst: Option<VarId>, callee: FuncId, args: Vec<Operand>) {
        self.push(Instr::Call { dst, callee, args });
    }

    /// `Wait(dep)`.
    pub fn wait(&mut self, dep: DepId) {
        self.push(Instr::Wait { dep });
    }

    /// `Signal(dep)`.
    pub fn signal(&mut self, dep: DepId) {
        self.push(Instr::Signal { dep });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Instr::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.push(Instr::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.push(Instr::Ret { value });
    }

    /// Finishes building and returns the function.
    pub fn finish(self) -> Function {
        self.function
    }

    /// Allocates a new register, emits `new = value`, and returns it.
    pub fn const_int_to_new(&mut self, value: i64) -> VarId {
        let dst = self.new_var();
        self.const_int(dst, value);
        dst
    }

    /// Allocates a new register, emits `new = op src`, and returns it.
    pub fn unary_to_new(&mut self, op: UnOp, src: Operand) -> VarId {
        let dst = self.new_var();
        self.unary(dst, op, src);
        dst
    }

    /// Allocates a new register, emits `new = mem[addr + offset]`, and returns it.
    pub fn load_to_new(&mut self, addr: Operand, offset: i64) -> VarId {
        let dst = self.new_var();
        self.load(dst, addr, offset);
        dst
    }

    /// Allocates a new register, emits `new = cond ? on_true : on_false`, and returns it.
    pub fn select_to_new(&mut self, cond: Operand, on_true: Operand, on_false: Operand) -> VarId {
        let dst = self.new_var();
        self.select(dst, cond, on_true, on_false);
        dst
    }

    /// Builds an if/else diamond.
    ///
    /// Emits `condbr cond, then_bb, else_bb` at the insertion point and leaves the insertion
    /// point at `then_bb`. The caller fills both arms (each must be terminated with a branch
    /// to `join`, typically via [`FunctionBuilder::br`]) and resumes straight-line code at
    /// `join`. Because the IR has no phi nodes, values merged at the join are communicated
    /// through a shared register assigned in both arms.
    pub fn if_else(&mut self, cond: Operand) -> IfElseHandle {
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        IfElseHandle {
            then_bb,
            else_bb,
            join,
        }
    }

    /// Builds a canonical counted loop.
    ///
    /// Emits, starting at the insertion point:
    ///
    /// ```text
    ///     iv = start
    ///     br header
    /// header:
    ///     c = iv < end
    ///     condbr c, body, exit
    /// body:
    ///     ... (caller fills via the returned handle) ...
    /// latch:
    ///     iv = iv + step
    ///     br header
    /// exit:
    /// ```
    ///
    /// The caller receives the block ids and the induction variable, fills the body, and must
    /// terminate the body with a branch to `latch`. The insertion point is left at `body`.
    pub fn counted_loop(&mut self, start: Operand, end: Operand, step: i64) -> LoopHandle {
        let iv = self.new_var();
        let header = self.new_block();
        let body = self.new_block();
        let latch = self.new_block();
        let exit = self.new_block();

        self.copy(iv, start);
        self.br(header);

        self.switch_to(header);
        let c = self.cmp_to_new(Pred::Lt, Operand::Var(iv), end);
        self.cond_br(Operand::Var(c), body, exit);

        self.switch_to(latch);
        self.binary(iv, BinOp::Add, Operand::Var(iv), Operand::int(step));
        self.br(header);

        self.switch_to(body);
        LoopHandle {
            header,
            body,
            latch,
            exit,
            induction_var: iv,
        }
    }
}

/// Handle returned by [`FunctionBuilder::if_else`] describing the generated diamond.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IfElseHandle {
    /// The block executed when the condition is non-zero (insertion point after the call).
    pub then_bb: BlockId,
    /// The block executed when the condition is zero.
    pub else_bb: BlockId,
    /// The join block both arms must branch to.
    pub join: BlockId,
}

/// Handle returned by [`FunctionBuilder::counted_loop`] describing the generated loop shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopHandle {
    /// The loop header (contains the exit test).
    pub header: BlockId,
    /// The first body block (insertion point after the call).
    pub body: BlockId,
    /// The latch block that increments the induction variable and jumps back to the header.
    pub latch: BlockId,
    /// The loop exit block.
    pub exit: BlockId,
    /// The induction variable.
    pub induction_var: VarId,
}

/// Builds a [`Module`] by accumulating functions and globals.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            module: Module::new(name),
        }
    }

    /// Adds a finished function.
    pub fn add_function(&mut self, function: Function) -> FuncId {
        self.module.add_function(function)
    }

    /// Adds a zero-initialized global.
    pub fn add_global(&mut self, name: impl Into<String>, words: usize) -> GlobalId {
        self.module.add_global(name, words)
    }

    /// Adds a global with an initializer.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        words: usize,
        init: Vec<Value>,
    ) -> GlobalId {
        self.module.add_global_init(name, words, init)
    }

    /// Reserves a function id before the function body exists (for mutually recursive calls).
    ///
    /// The placeholder is an empty function that immediately returns; replace it with
    /// [`ModuleBuilder::define_function`].
    pub fn declare_function(&mut self, name: impl Into<String>, num_params: usize) -> FuncId {
        let mut f = Function::new(name, num_params);
        let entry = f.entry;
        f.block_mut(entry).instrs.push(Instr::Ret { value: None });
        self.module.add_function(f)
    }

    /// Replaces a previously declared function with its real body.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never declared.
    pub fn define_function(&mut self, id: FuncId, function: Function) {
        *self.module.function_mut(id) = function;
    }

    /// Finishes building and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

impl Default for Module {
    fn default() -> Self {
        Module::new("module")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use crate::verify::verify_function;

    #[test]
    fn build_and_run_simple_function() {
        let mut module = Module::new("t");
        let mut b = FunctionBuilder::new("add1", 1);
        let p = b.param(0);
        let r = b.binary_to_new(BinOp::Add, Operand::Var(p), Operand::int(1));
        b.ret(Some(Operand::Var(r)));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        let id = module.add_function(f);
        let mut m = Machine::new(&module);
        let out = m.call(id, &[Value::Int(41)]).unwrap().unwrap();
        assert_eq!(out.as_int(), 42);
    }

    #[test]
    fn counted_loop_helper_runs() {
        let mut module = Module::new("t");
        let mut b = FunctionBuilder::new("sum_to_n", 1);
        let n = b.param(0);
        let acc = b.new_var();
        b.const_int(acc, 0);
        let lh = b.counted_loop(Operand::int(0), Operand::Var(n), 1);
        b.binary(
            acc,
            BinOp::Add,
            Operand::Var(acc),
            Operand::Var(lh.induction_var),
        );
        b.br(lh.latch);
        b.switch_to(lh.exit);
        b.ret(Some(Operand::Var(acc)));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        let id = module.add_function(f);
        let mut m = Machine::new(&module);
        let out = m.call(id, &[Value::Int(5)]).unwrap().unwrap();
        assert_eq!(out.as_int(), 10);
    }

    #[test]
    fn module_builder_declare_then_define() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare_function("callee", 1);
        // The real body doubles its argument.
        let mut b = FunctionBuilder::new("callee", 1);
        let p = b.param(0);
        let d = b.binary_to_new(BinOp::Mul, Operand::Var(p), Operand::int(2));
        b.ret(Some(Operand::Var(d)));
        mb.define_function(callee, b.finish());

        let mut main = FunctionBuilder::new("main", 0);
        let out = main.new_var();
        main.call(Some(out), callee, vec![Operand::int(21)]);
        main.ret(Some(Operand::Var(out)));
        let main_id = mb.add_function(main.finish());

        let module = mb.finish();
        let mut m = Machine::new(&module);
        assert_eq!(m.call(main_id, &[]).unwrap().unwrap().as_int(), 42);
    }

    #[test]
    fn if_else_helper_builds_a_diamond() {
        let mut module = Module::new("t");
        let mut b = FunctionBuilder::new("abs", 1);
        let p = b.param(0);
        let out = b.new_var();
        let c = b.cmp_to_new(crate::instr::Pred::Lt, Operand::Var(p), Operand::int(0));
        let arms = b.if_else(Operand::Var(c));
        b.unary(out, crate::instr::UnOp::Neg, Operand::Var(p));
        b.br(arms.join);
        b.switch_to(arms.else_bb);
        b.copy(out, Operand::Var(p));
        b.br(arms.join);
        b.switch_to(arms.join);
        b.ret(Some(Operand::Var(out)));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        let id = module.add_function(f);
        let mut m = Machine::new(&module);
        assert_eq!(m.call(id, &[Value::Int(-5)]).unwrap().unwrap().as_int(), 5);
        assert_eq!(m.call(id, &[Value::Int(7)]).unwrap().unwrap().as_int(), 7);
    }

    #[test]
    fn to_new_helpers_allocate_fresh_registers() {
        let mut module = Module::new("t");
        let mut b = FunctionBuilder::new("f", 0);
        let k = b.const_int_to_new(3);
        let n = b.unary_to_new(UnOp::Neg, Operand::Var(k));
        let s = b.select_to_new(Operand::Var(n), Operand::Var(n), Operand::int(9));
        let a = b.new_var();
        b.alloc(a, Operand::int(1));
        b.store(Operand::Var(a), 0, Operand::Var(s));
        let l = b.load_to_new(Operand::Var(a), 0);
        b.ret(Some(Operand::Var(l)));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        let id = module.add_function(f);
        let mut m = Machine::new(&module);
        assert_eq!(m.call(id, &[]).unwrap().unwrap().as_int(), -3);
    }

    #[test]
    fn builder_emits_sync_instrs() {
        let mut b = FunctionBuilder::new("sync", 0);
        b.wait(DepId::new(0));
        b.signal(DepId::new(0));
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.instr_count(), 3);
        assert!(f.block(f.entry).instrs[0].is_sync());
    }

    #[test]
    fn globals_via_module_builder() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.add_global_init("table", 8, vec![Value::Int(5)]);
        let module = mb.finish();
        assert_eq!(module.global(g).words, 8);
    }
}
