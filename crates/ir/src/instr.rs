//! Instruction set of the HELIX IR.
//!
//! The IR is a classic register-based three-address code: each instruction reads
//! [`Operand`]s (virtual registers, immediates or globals) and optionally writes one virtual
//! register. Control flow is explicit via block terminators (`Br`, `CondBr`, `Ret`).
//!
//! Two pseudo-instructions, [`Instr::Wait`] and [`Instr::Signal`], implement the inter-core
//! synchronization HELIX inserts in Step 4 of its algorithm. In sequential execution they are
//! no-ops; the parallel runtime and the timing simulator give them their blocking/latency
//! semantics.

use crate::ids::{BlockId, DepId, FuncId, GlobalId, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary arithmetic and bitwise operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer or float addition.
    Add,
    /// Integer or float subtraction.
    Sub,
    /// Integer or float multiplication.
    Mul,
    /// Division; integer division by zero yields zero (the interpreter does not trap).
    Div,
    /// Remainder; remainder by zero yields zero.
    Rem,
    /// Bitwise and (integer only).
    And,
    /// Bitwise or (integer only).
    Or,
    /// Bitwise xor (integer only).
    Xor,
    /// Left shift (integer only, modulo 64).
    Shl,
    /// Arithmetic right shift (integer only, modulo 64).
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl BinOp {
    /// All binary operators, useful for randomized workload generation and property tests.
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Min,
        BinOp::Max,
    ];
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integer) / logical not for booleans.
    Not,
    /// Conversion to float.
    ToFloat,
    /// Conversion (truncation) to integer.
    ToInt,
}

impl UnOp {
    /// All unary operators, useful for randomized workload generation and property tests.
    pub const ALL: [UnOp; 4] = [UnOp::Neg, UnOp::Not, UnOp::ToFloat, UnOp::ToInt];
}

/// Comparison predicates for [`Instr::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

impl Pred {
    /// All predicates.
    pub const ALL: [Pred; 6] = [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge];
}

/// An instruction operand: a virtual register, an immediate, or the address of a global.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Read of a virtual register.
    Var(VarId),
    /// A 64-bit signed integer immediate.
    ConstInt(i64),
    /// A 64-bit float immediate.
    ConstFloat(f64),
    /// Base address of a global memory object.
    Global(GlobalId),
}

impl Operand {
    /// Shorthand for an integer immediate.
    pub const fn int(value: i64) -> Operand {
        Operand::ConstInt(value)
    }

    /// Shorthand for a float immediate.
    pub const fn float(value: f64) -> Operand {
        Operand::ConstFloat(value)
    }

    /// Returns the virtual register this operand reads, if any.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` when this operand is a compile-time constant (immediate or global base).
    pub fn is_const(&self) -> bool {
        !matches!(self, Operand::Var(_))
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::ConstInt(i)
    }
}

impl From<f64> for Operand {
    fn from(f: f64) -> Self {
        Operand::ConstFloat(f)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::ConstInt(i) => write!(f, "{i}"),
            Operand::ConstFloat(x) => f.write_str(&crate::printer::format_float(*x)),
            Operand::Global(g) => write!(f, "{g}"),
        }
    }
}

/// One IR instruction.
///
/// The last instruction of every basic block must be a terminator (`Br`, `CondBr` or `Ret`);
/// terminators may not appear anywhere else. [`crate::verify::verify_function`] enforces this.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = const`.
    Const {
        /// Destination register.
        dst: VarId,
        /// Immediate value.
        value: Operand,
    },
    /// `dst = src` register copy.
    Copy {
        /// Destination register.
        dst: VarId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`.
    Unary {
        /// Destination register.
        dst: VarId,
        /// Operator.
        op: UnOp,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// Destination register.
        dst: VarId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = lhs pred rhs` producing 0 or 1.
    Cmp {
        /// Destination register.
        dst: VarId,
        /// Predicate.
        pred: Pred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = cond ? on_true : on_false`.
    Select {
        /// Destination register.
        dst: VarId,
        /// Condition operand (non-zero selects `on_true`).
        cond: Operand,
        /// Value when the condition is true.
        on_true: Operand,
        /// Value when the condition is false.
        on_false: Operand,
    },
    /// `dst = mem[addr + offset]`.
    Load {
        /// Destination register.
        dst: VarId,
        /// Base address operand.
        addr: Operand,
        /// Constant word offset added to the base address.
        offset: i64,
    },
    /// `mem[addr + offset] = value`.
    Store {
        /// Base address operand.
        addr: Operand,
        /// Constant word offset added to the base address.
        offset: i64,
        /// Value to store.
        value: Operand,
    },
    /// `dst = alloc(words)` — bump-allocates `words` memory words and returns the base address.
    Alloc {
        /// Destination register receiving the base address.
        dst: VarId,
        /// Number of words to allocate.
        words: Operand,
    },
    /// Direct call: `dst = callee(args...)`.
    Call {
        /// Optional destination register for the return value.
        dst: Option<VarId>,
        /// Called function.
        callee: FuncId,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// HELIX synchronization: block until the predecessor iteration signals dependence `dep`.
    ///
    /// Sequential semantics: no-op.
    Wait {
        /// The synchronized dependence.
        dep: DepId,
    },
    /// HELIX synchronization: signal dependence `dep` to the successor iteration.
    ///
    /// Sequential semantics: no-op.
    Signal {
        /// The synchronized dependence.
        dep: DepId,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch: jumps to `then_bb` when `cond` is non-zero, else to `else_bb`.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target when the condition is true.
        then_bb: BlockId,
        /// Target when the condition is false.
        else_bb: BlockId,
    },
    /// Return from the current function.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
}

impl Instr {
    /// Returns the register defined by this instruction, if any.
    pub fn dst(&self) -> Option<VarId> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Select { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Alloc { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Returns the operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Instr::Const { value, .. } => vec![*value],
            Instr::Copy { src, .. } | Instr::Unary { src, .. } => vec![*src],
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Select {
                cond,
                on_true,
                on_false,
                ..
            } => vec![*cond, *on_true, *on_false],
            Instr::Load { addr, .. } => vec![*addr],
            Instr::Store { addr, value, .. } => vec![*addr, *value],
            Instr::Alloc { words, .. } => vec![*words],
            Instr::Call { args, .. } => args.clone(),
            Instr::CondBr { cond, .. } => vec![*cond],
            Instr::Ret { value } => value.iter().copied().collect(),
            Instr::Wait { .. } | Instr::Signal { .. } | Instr::Br { .. } => Vec::new(),
        }
    }

    /// Returns the virtual registers read by this instruction.
    pub fn uses(&self) -> Vec<VarId> {
        self.operands().iter().filter_map(Operand::as_var).collect()
    }

    /// Applies `f` to every operand, allowing passes to rewrite register uses in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Instr::Const { value, .. } => f(value),
            Instr::Copy { src, .. } | Instr::Unary { src, .. } => f(src),
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Instr::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Instr::Load { addr, .. } => f(addr),
            Instr::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Instr::Alloc { words, .. } => f(words),
            Instr::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Instr::CondBr { cond, .. } => f(cond),
            Instr::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Instr::Wait { .. } | Instr::Signal { .. } | Instr::Br { .. } => {}
        }
    }

    /// Rewrites the destination register, if any.
    pub fn set_dst(&mut self, new_dst: VarId) {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Select { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Alloc { dst, .. } => *dst = new_dst,
            Instr::Call { dst, .. } => *dst = Some(new_dst),
            _ => {}
        }
    }

    /// Returns `true` for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Br { .. } | Instr::CondBr { .. } | Instr::Ret { .. }
        )
    }

    /// Returns `true` for direct calls.
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. })
    }

    /// Returns `true` if the instruction may read program memory.
    pub fn may_read_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Call { .. })
    }

    /// Returns `true` if the instruction may write program memory.
    pub fn may_write_memory(&self) -> bool {
        matches!(
            self,
            Instr::Store { .. } | Instr::Call { .. } | Instr::Alloc { .. }
        )
    }

    /// Returns `true` for the HELIX synchronization pseudo-instructions.
    pub fn is_sync(&self) -> bool {
        matches!(self, Instr::Wait { .. } | Instr::Signal { .. })
    }

    /// Returns the successor blocks when this instruction is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Instr::Br { target } => vec![*target],
            Instr::CondBr {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites branch targets using `f`, used when cloning or splitting blocks.
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Instr::Br { target } => *target = f(*target),
            Instr::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            _ => {}
        }
    }

    /// Returns `true` if the instruction has no side effects beyond defining its destination.
    ///
    /// Pure instructions may be freely reordered by the HELIX code scheduling passes as long
    /// as register data dependences are preserved.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Const { .. }
                | Instr::Copy { .. }
                | Instr::Unary { .. }
                | Instr::Binary { .. }
                | Instr::Cmp { .. }
                | Instr::Select { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn dst_and_uses() {
        let i = Instr::Binary {
            dst: v(3),
            op: BinOp::Add,
            lhs: Operand::Var(v(1)),
            rhs: Operand::int(4),
        };
        assert_eq!(i.dst(), Some(v(3)));
        assert_eq!(i.uses(), vec![v(1)]);
        assert!(i.is_pure());
        assert!(!i.is_terminator());
    }

    #[test]
    fn store_has_no_dst_and_writes_memory() {
        let s = Instr::Store {
            addr: Operand::Var(v(0)),
            offset: 2,
            value: Operand::Var(v(1)),
        };
        assert_eq!(s.dst(), None);
        assert!(s.may_write_memory());
        assert!(!s.may_read_memory());
        assert_eq!(s.uses(), vec![v(0), v(1)]);
    }

    #[test]
    fn terminator_successors() {
        let br = Instr::Br {
            target: BlockId::new(2),
        };
        assert_eq!(br.successors(), vec![BlockId::new(2)]);
        let cbr = Instr::CondBr {
            cond: Operand::Var(v(0)),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(cbr.successors().len(), 2);
        let same = Instr::CondBr {
            cond: Operand::Var(v(0)),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(1),
        };
        assert_eq!(same.successors(), vec![BlockId::new(1)]);
        let ret = Instr::Ret { value: None };
        assert!(ret.successors().is_empty());
        assert!(ret.is_terminator());
    }

    #[test]
    fn sync_instrs_are_recognized() {
        let w = Instr::Wait { dep: DepId::new(0) };
        let s = Instr::Signal { dep: DepId::new(0) };
        assert!(w.is_sync() && s.is_sync());
        assert!(!w.is_pure());
        assert!(w.uses().is_empty());
    }

    #[test]
    fn map_operands_rewrites_registers() {
        let mut i = Instr::Binary {
            dst: v(5),
            op: BinOp::Mul,
            lhs: Operand::Var(v(1)),
            rhs: Operand::Var(v(2)),
        };
        i.map_operands(|op| {
            if let Operand::Var(var) = op {
                *op = Operand::Var(VarId::new(var.0 + 10));
            }
        });
        assert_eq!(i.uses(), vec![v(11), v(12)]);
    }

    #[test]
    fn map_targets_rewrites_branches() {
        let mut i = Instr::CondBr {
            cond: Operand::int(1),
            then_bb: BlockId::new(0),
            else_bb: BlockId::new(1),
        };
        i.map_targets(|b| BlockId::new(b.0 + 5));
        assert_eq!(i.successors(), vec![BlockId::new(5), BlockId::new(6)]);
    }

    #[test]
    fn call_dst_rewrite() {
        let mut c = Instr::Call {
            dst: None,
            callee: FuncId::new(0),
            args: vec![Operand::int(1)],
        };
        assert!(c.is_call());
        assert!(c.may_read_memory() && c.may_write_memory());
        c.set_dst(v(9));
        assert_eq!(c.dst(), Some(v(9)));
    }

    #[test]
    fn operand_helpers() {
        assert!(Operand::int(3).is_const());
        assert!(Operand::Global(GlobalId::new(0)).is_const());
        assert_eq!(Operand::Var(v(2)).as_var(), Some(v(2)));
        assert_eq!(Operand::from(v(1)), Operand::Var(v(1)));
        assert_eq!(Operand::from(2i64), Operand::ConstInt(2));
        assert_eq!(Operand::from(2.0f64), Operand::ConstFloat(2.0));
    }
}
