//! The direct-threaded dispatch tier: each lowered op stream is decoded **once** into an
//! array of pre-resolved handler function pointers ([`TOp`]), one monomorphized handler per
//! specialized [`POp`] shape (fused superinstructions included), dispatched by a loop that
//! is a single indirect call per op.
//!
//! Why this beats the match-based engine in [`crate::parallel_image`]:
//!
//! * **operand decode happens at lowering time** — a handler reads flat `u32`/`i64`/[`Value`]
//!   fields out of its own [`TOp`] instead of matching an enum and chasing `Box`es;
//! * **per-shape monomorphization** — binary/compare/RMW handlers are instantiated per
//!   [`BinOp`]/[`Pred`]/[`UnOp`] (and per `private_ok` route), so the operation itself is a
//!   compile-time constant inside the handler body and the `eval_binop` match disappears;
//! * **one indirect jump per op** — the branch predictor sees a distinct call site target
//!   per handler rather than one central switch that aliases every op's history.
//!
//! Rust has no stable guaranteed tail calls (`become` is unstable), so this is the classic
//! loop-over-function-pointers approximation of direct threading rather than true
//! tail-call threading; the measured win comes from the pre-decoded operands and the
//! monomorphized straight-line handler bodies (see `docs/dispatch.md`).
//!
//! The switch interpreter remains both the fallback tier and the differential reference:
//! every handler body here is a transliteration of the corresponding `run_iteration` /
//! `run_flat` arm, and the fuzz oracle runs the two tiers against each other.

use crate::parallel_image::{
    eval, prepare_callee_regs, run_flat, specialize_op, wait_blocking, FlatEnd, FlatError, IterEnd,
    IterError, IterSync, LoopImage, POp, Tier, WaitOutcome, PC_END_ITER, PC_EXIT,
};
use crate::telemetry::{WorkerCtx, NO_LANE};
use helix_ir::interp::{eval_binop, eval_pred, eval_unop, ExecError, MAX_CALL_DEPTH};
use helix_ir::{BinOp, BlockId, ExecImage, FuncId, Op, Opnd, Pred, UnOp, Value};

/// Which dispatch engine runs the lowered bytecode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchTier {
    /// Pick automatically: the threaded tier unless calibration shows it losing on this
    /// host (see `CalibrationProfile::selected_tier`).
    #[default]
    Auto,
    /// The match-based interpreter in [`crate::parallel_image`] — the reference tier.
    Switch,
    /// The direct-threaded tier in this module.
    Threaded,
    /// The template JIT in [`crate::jit`]: threaded dispatch whose straight-line data
    /// runs are compiled to native x86-64 chunks. Degrades to [`DispatchTier::Threaded`]
    /// on unsupported targets or under `HELIX_DISABLE_JIT=1`.
    Jit,
}

impl std::fmt::Display for DispatchTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DispatchTier::Auto => "auto",
            DispatchTier::Switch => "switch",
            DispatchTier::Threaded => "threaded",
            DispatchTier::Jit => "jit",
        })
    }
}

impl std::str::FromStr for DispatchTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(DispatchTier::Auto),
            "switch" => Ok(DispatchTier::Switch),
            "threaded" => Ok(DispatchTier::Threaded),
            "jit" => Ok(DispatchTier::Jit),
            other => Err(format!(
                "unknown dispatch tier `{other}` (expected auto|switch|threaded|jit)"
            )),
        }
    }
}

/// Handler return value: the next pc, or one of the sentinels below.
/// "This execution is over" — the verdict is in `TCtx::{fault,end_iter,end_flat}`.
const DONE: usize = usize::MAX;
/// "The current function changed" (flat call/ret): the dispatch loop re-reads
/// `TCtx::{cur_func,next_pc}` and switches code arrays.
const SWITCH: usize = usize::MAX - 1;

/// A handler executes one decoded op and returns the next pc (or a sentinel).
pub(crate) type Handler<T> = for<'r> fn(&mut TCtx<'r, T>, &TOp<T>, usize) -> usize;

/// One decoded op: a handler pointer plus a flat field bag the decoder filled for it.
/// Field meaning is per-handler (documented at each decode site); unused fields are zero.
/// No `Box`, no enum tag — dispatch reads exactly one cache line ahead.
pub(crate) struct TOp<T: Tier> {
    pub(crate) h: Handler<T>,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    e: u32,
    o1: BinOp,
    o2: BinOp,
    o3: BinOp,
    pub(crate) i: i64,
    pub(crate) j: i64,
    v: Value,
    w: Value,
}

// `TOp` is a bag of `Copy` fields for every `T` (the handler is a plain fn pointer), but
// a derive would demand `T: Copy`; the JIT patcher copies head slots aside before
// rewriting them, so spell the impls out.
impl<T: Tier> Clone for TOp<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Tier> Copy for TOp<T> {}

impl<T: Tier> TOp<T> {
    fn new(h: Handler<T>) -> TOp<T> {
        TOp {
            h,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            e: 0,
            o1: BinOp::Add,
            o2: BinOp::Add,
            o3: BinOp::Add,
            i: 0,
            j: 0,
            v: Value::Int(0),
            w: Value::Int(0),
        }
    }
}

/// One suspended guest frame of the flat engine's explicit call stack.
struct TFrame {
    func: usize,
    pc: usize,
    regs: Vec<Value>,
    dst: Option<u32>,
}

/// How a flat threaded run halted (converted to `FlatEnd`/`FlatError` by the runner).
enum FlatHalt {
    ReachedStop,
    Returned(Option<Value>),
    BudgetExceeded,
}

/// The mutable state threaded handlers operate on. Code arrays live *outside* this struct
/// (in the dispatch loop) so a handler borrowing its own `TOp` never conflicts with the
/// `&mut TCtx` it also receives.
pub(crate) struct TCtx<'r, T: Tier> {
    image: &'r ExecImage,
    /// The specialized iteration stream (for the rare boxed ops a `TOp` cannot carry:
    /// `SelectB`, `CallB`, `SignalMulti`). Empty in flat mode.
    pcode: &'r [POp],
    pub(crate) regs: &'r mut Vec<Value>,
    tier: &'r mut T,
    iteration: u64,
    sync: Option<&'r IterSync<'r>>,
    on_control: Option<&'r mut (dyn FnMut() + 'r)>,
    telem: Option<WorkerCtx<'r>>,
    /// Current function index (flat mode; the loop clone function in iteration mode).
    cur_func: usize,
    /// Resume pc after a `SWITCH` sentinel.
    next_pc: usize,
    frames: Vec<TFrame>,
    top_blocks: u64,
    budget: u64,
    stop_block: Option<u32>,
    /// A guest-level execution error (memory fault, stack overflow, missing terminator).
    fault: Option<ExecError>,
    end_iter: Option<Result<IterEnd, IterError>>,
    end_flat: Option<FlatHalt>,
}

// Reads are unchecked exactly like the switch engine's `eval`/`get`: lowering widens the
// register file to cover every referenced index and every caller sizes `regs` to
// `num_regs`, so the indices are in range by construction.
#[inline(always)]
fn get(regs: &[Value], r: u32) -> Value {
    debug_assert!((r as usize) < regs.len());
    unsafe { *regs.get_unchecked(r as usize) }
}

#[inline(always)]
fn set(regs: &mut [Value], r: u32, v: Value) {
    debug_assert!((r as usize) < regs.len());
    unsafe {
        *regs.get_unchecked_mut(r as usize) = v;
    }
}

/// Propagates a tier (memory) error out of a handler: record the fault, end the run.
macro_rules! tier_try {
    ($ctx:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => {
                $ctx.fault = Some(e);
                return DONE;
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Monomorphization markers: one ZST per BinOp / Pred / UnOp, so a handler
// instantiated with the marker bakes the operation in as a compile-time constant.
// ---------------------------------------------------------------------------

trait CBin {
    const OP: BinOp;
}
trait CPred {
    const OP: Pred;
}
trait CUn {
    const OP: UnOp;
}

macro_rules! zbin {
    ($($z:ident => $v:ident),* $(,)?) => {
        $(struct $z;
        impl CBin for $z {
            const OP: BinOp = BinOp::$v;
        })*
    };
}
zbin!(
    ZAdd => Add, ZSub => Sub, ZMul => Mul, ZDiv => Div, ZRem => Rem, ZAnd => And,
    ZOr => Or, ZXor => Xor, ZShl => Shl, ZShr => Shr, ZMin => Min, ZMax => Max,
);

macro_rules! zpred {
    ($($z:ident => $v:ident),* $(,)?) => {
        $(struct $z;
        impl CPred for $z {
            const OP: Pred = Pred::$v;
        })*
    };
}
zpred!(ZEq => Eq, ZNe => Ne, ZLt => Lt, ZLe => Le, ZGt => Gt, ZGe => Ge);

macro_rules! zun {
    ($($z:ident => $v:ident),* $(,)?) => {
        $(struct $z;
        impl CUn for $z {
            const OP: UnOp = UnOp::$v;
        })*
    };
}
zun!(ZNeg => Neg, ZNot => Not, ZToFloat => ToFloat, ZToInt => ToInt);

/// Selects the `$h::<$t, Z>` instantiation matching a runtime [`BinOp`].
macro_rules! by_binop {
    ($op:expr, $h:ident, $t:ident) => {
        match $op {
            BinOp::Add => $h::<$t, ZAdd> as Handler<$t>,
            BinOp::Sub => $h::<$t, ZSub> as Handler<$t>,
            BinOp::Mul => $h::<$t, ZMul> as Handler<$t>,
            BinOp::Div => $h::<$t, ZDiv> as Handler<$t>,
            BinOp::Rem => $h::<$t, ZRem> as Handler<$t>,
            BinOp::And => $h::<$t, ZAnd> as Handler<$t>,
            BinOp::Or => $h::<$t, ZOr> as Handler<$t>,
            BinOp::Xor => $h::<$t, ZXor> as Handler<$t>,
            BinOp::Shl => $h::<$t, ZShl> as Handler<$t>,
            BinOp::Shr => $h::<$t, ZShr> as Handler<$t>,
            BinOp::Min => $h::<$t, ZMin> as Handler<$t>,
            BinOp::Max => $h::<$t, ZMax> as Handler<$t>,
        }
    };
}

/// [`by_binop!`] for handlers that also take a `const P: bool` (private-route) parameter.
macro_rules! by_binop_b {
    ($op:expr, $h:ident, $t:ident, $b:literal) => {
        match $op {
            BinOp::Add => $h::<$t, ZAdd, $b> as Handler<$t>,
            BinOp::Sub => $h::<$t, ZSub, $b> as Handler<$t>,
            BinOp::Mul => $h::<$t, ZMul, $b> as Handler<$t>,
            BinOp::Div => $h::<$t, ZDiv, $b> as Handler<$t>,
            BinOp::Rem => $h::<$t, ZRem, $b> as Handler<$t>,
            BinOp::And => $h::<$t, ZAnd, $b> as Handler<$t>,
            BinOp::Or => $h::<$t, ZOr, $b> as Handler<$t>,
            BinOp::Xor => $h::<$t, ZXor, $b> as Handler<$t>,
            BinOp::Shl => $h::<$t, ZShl, $b> as Handler<$t>,
            BinOp::Shr => $h::<$t, ZShr, $b> as Handler<$t>,
            BinOp::Min => $h::<$t, ZMin, $b> as Handler<$t>,
            BinOp::Max => $h::<$t, ZMax, $b> as Handler<$t>,
        }
    };
}

macro_rules! by_pred {
    ($op:expr, $h:ident, $t:ident) => {
        match $op {
            Pred::Eq => $h::<$t, ZEq> as Handler<$t>,
            Pred::Ne => $h::<$t, ZNe> as Handler<$t>,
            Pred::Lt => $h::<$t, ZLt> as Handler<$t>,
            Pred::Le => $h::<$t, ZLe> as Handler<$t>,
            Pred::Gt => $h::<$t, ZGt> as Handler<$t>,
            Pred::Ge => $h::<$t, ZGe> as Handler<$t>,
        }
    };
}

macro_rules! by_unop {
    ($op:expr, $h:ident, $t:ident) => {
        match $op {
            UnOp::Neg => $h::<$t, ZNeg> as Handler<$t>,
            UnOp::Not => $h::<$t, ZNot> as Handler<$t>,
            UnOp::ToFloat => $h::<$t, ZToFloat> as Handler<$t>,
            UnOp::ToInt => $h::<$t, ZToInt> as Handler<$t>,
        }
    };
}

// ---------------------------------------------------------------------------
// The dispatch loop.
// ---------------------------------------------------------------------------

/// Runs decoded code until a handler returns [`DONE`]. `tables` holds per-function code
/// arrays for flat mode ([`SWITCH`] reloads from it); iteration mode passes `&[]` and
/// never switches.
fn dispatch<'c, T: Tier>(
    tables: &'c [Vec<TOp<T>>],
    mut code: &'c [TOp<T>],
    mut pc: usize,
    ctx: &mut TCtx<'_, T>,
) {
    loop {
        let op = &code[pc];
        let next = (op.h)(ctx, op, pc);
        if next < SWITCH {
            pc = next;
            continue;
        }
        if next == DONE {
            return;
        }
        code = &tables[ctx.cur_func];
        pc = ctx.next_pc;
    }
}

// ---------------------------------------------------------------------------
// Mode-shared data handlers. Field mapping is noted as `a=.. b=..` per handler and must
// match `decode_data` exactly. Each body is a transliteration of the corresponding
// switch-engine arm.
// ---------------------------------------------------------------------------

/// `a=dst b=src`
fn h_mov_r<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = get(ctx.regs, op.b);
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst v=imm`
fn h_mov_i<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    set(ctx.regs, op.a, op.v);
    pc + 1
}

/// `a=dst b=src`
fn h_un_r<T: Tier, U: CUn>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_unop(U::OP, get(ctx.regs, op.b));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=lhs c=rhs`
fn h_bin_rr<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_binop(Z::OP, get(ctx.regs, op.b), get(ctx.regs, op.c));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=lhs v=rhs`
fn h_bin_ri<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_binop(Z::OP, get(ctx.regs, op.b), op.v);
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=rhs v=lhs`
fn h_bin_ir<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_binop(Z::OP, op.v, get(ctx.regs, op.b));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=lhs c=rhs`
fn h_cmp_rr<T: Tier, P: CPred>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = Value::from_bool(eval_pred(P::OP, get(ctx.regs, op.b), get(ctx.regs, op.c)));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=lhs v=rhs`
fn h_cmp_ri<T: Tier, P: CPred>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = Value::from_bool(eval_pred(P::OP, get(ctx.regs, op.b), op.v));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=rhs v=lhs`
fn h_cmp_ir<T: Tier, P: CPred>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = Value::from_bool(eval_pred(P::OP, op.v, get(ctx.regs, op.b)));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst b=addr i=offset`, `P` = private route proven
fn h_load_r<T: Tier, const P: bool>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let a = get(ctx.regs, op.b).as_int() + op.i;
    let v = if P {
        tier_try!(ctx, ctx.tier.load_private(a))
    } else {
        tier_try!(ctx, ctx.tier.load(a))
    };
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=dst i=addr`
fn h_load_a<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = tier_try!(ctx, ctx.tier.load(op.i));
    set(ctx.regs, op.a, v);
    pc + 1
}

/// `a=addr b=value i=offset`
fn h_store_rr<T: Tier, const P: bool>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let a = get(ctx.regs, op.a).as_int() + op.i;
    let v = get(ctx.regs, op.b);
    if P {
        tier_try!(ctx, ctx.tier.store_private(a, v));
    } else {
        tier_try!(ctx, ctx.tier.store(a, v));
    }
    pc + 1
}

/// `a=addr i=offset v=value`
fn h_store_ri<T: Tier, const P: bool>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let a = get(ctx.regs, op.a).as_int() + op.i;
    if P {
        tier_try!(ctx, ctx.tier.store_private(a, op.v));
    } else {
        tier_try!(ctx, ctx.tier.store(a, op.v));
    }
    pc + 1
}

/// `a=value i=addr`
fn h_store_ar<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = get(ctx.regs, op.a);
    tier_try!(ctx, ctx.tier.store(op.i, v));
    pc + 1
}

/// `i=addr v=value`
fn h_store_ai<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    tier_try!(ctx, ctx.tier.store(op.i, op.v));
    pc + 1
}

/// `a=dst b=words`
fn h_alloc_r<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let n = get(ctx.regs, op.b).as_int().max(0) as usize;
    let base = tier_try!(ctx, ctx.tier.alloc(n));
    set(ctx.regs, op.a, Value::Int(base));
    pc + 1
}

/// `a=dst i=words`
fn h_alloc_i<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let n = op.i.max(0) as usize;
    let base = tier_try!(ctx, ctx.tier.alloc(n));
    set(ctx.regs, op.a, Value::Int(base));
    pc + 1
}

/// `a=dst b=words`
fn h_palloc_r<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let n = get(ctx.regs, op.b).as_int().max(0) as usize;
    let base = tier_try!(ctx, ctx.tier.alloc_private(n));
    set(ctx.regs, op.a, Value::Int(base));
    pc + 1
}

/// `a=dst i=words`
fn h_palloc_i<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let n = op.i.max(0) as usize;
    let base = tier_try!(ctx, ctx.tier.alloc_private(n));
    set(ctx.regs, op.a, Value::Int(base));
    pc + 1
}

// --- fused superinstructions (straight-line bodies, one dispatch per window) ---

/// `a=lhs b=d1 c=d2 o1 o2 v=i1 w=i2` — `d1 = lhs o1 i1; d2 = d1 o2 i2`
fn h_chain_ii<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let x = eval_binop(op.o1, get(ctx.regs, op.a), op.v);
    set(ctx.regs, op.b, x);
    set(ctx.regs, op.c, eval_binop(op.o2, x, op.w));
    pc + 2
}

/// `a=lhs b=d1 c=d2 d=d3 o1 o2 o3 v=i1 w=i2 i=i3` (integer immediates)
fn h_chain3_ii<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let x = eval_binop(op.o1, get(ctx.regs, op.a), op.v);
    set(ctx.regs, op.b, x);
    let y = eval_binop(op.o2, x, op.w);
    set(ctx.regs, op.c, y);
    set(ctx.regs, op.d, eval_binop(op.o3, y, Value::Int(op.i)));
    pc + 3
}

/// `a=lhs b=d1 c=d2 d=d3 o1 o2 o3 v=f1 w=f2 i=f3.to_bits()` (float immediates)
fn h_chain3_ff<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let x = eval_binop(op.o1, get(ctx.regs, op.a), op.v);
    set(ctx.regs, op.b, x);
    let y = eval_binop(op.o2, x, op.w);
    set(ctx.regs, op.c, y);
    let f3 = Value::Float(f64::from_bits(op.i as u64));
    set(ctx.regs, op.d, eval_binop(op.o3, y, f3));
    pc + 3
}

/// `a=lhs b=rhs c=d1 d=d2 o1 o2 v=i2` — `d1 = lhs o1 rhs; d2 = d1 o2 i2`
fn h_chain_ri<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let x = eval_binop(op.o1, get(ctx.regs, op.a), get(ctx.regs, op.b));
    set(ctx.regs, op.c, x);
    set(ctx.regs, op.d, eval_binop(op.o2, x, op.v));
    pc + 2
}

/// `a=ld b=other c=dst e=ld_on_lhs i=laddr` — `ld = load laddr; dst = ld Z other`
fn h_load_a_bin<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let l = tier_try!(ctx, ctx.tier.load(op.i));
    set(ctx.regs, op.a, l);
    let o = get(ctx.regs, op.b);
    let v = if op.e != 0 {
        eval_binop(Z::OP, l, o)
    } else {
        eval_binop(Z::OP, o, l)
    };
    set(ctx.regs, op.c, v);
    pc + 2
}

/// `a=lhs b=rhs c=dst i=saddr` — `dst = lhs Z rhs; store saddr <- dst`
fn h_bin_store_a<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_binop(Z::OP, get(ctx.regs, op.a), get(ctx.regs, op.b));
    set(ctx.regs, op.c, v);
    tier_try!(ctx, ctx.tier.store(op.i, v));
    pc + 2
}

/// `a=idx b=dst c=value i=base j=offset` — the array-store idiom. Mirrors the unfused
/// BinIR+StoreRR pair exactly: the add goes through `eval_binop` so a float index register
/// produces the same float-typed dst and float-rounded address.
fn h_store_idx<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let v = eval_binop(BinOp::Add, Value::Int(op.i), get(ctx.regs, op.a));
    set(ctx.regs, op.b, v);
    let val = get(ctx.regs, op.c);
    tier_try!(ctx, ctx.tier.store(v.as_int() + op.j, val));
    pc + 2
}

/// `a=ld b=other c=dst e=ld_on_lhs i=laddr j=saddr` — absolute-address read-modify-write
fn h_rmw_a<T: Tier, Z: CBin>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let l = tier_try!(ctx, ctx.tier.load(op.i));
    set(ctx.regs, op.a, l);
    let o = get(ctx.regs, op.b);
    let v = if op.e != 0 {
        eval_binop(Z::OP, l, o)
    } else {
        eval_binop(Z::OP, o, l)
    };
    set(ctx.regs, op.c, v);
    tier_try!(ctx, ctx.tier.store(op.j, v));
    pc + 3
}

/// `a=addr b=ld c=other d=dst e=ld_on_lhs i=offset` — register-addressed read-modify-write.
/// The address register is provably unmodified by the window (fusion guards
/// `ld != addr && dst != addr`), so computing the address once is bitwise what the unfused
/// load/store pair would do.
fn h_rmw_r<T: Tier, Z: CBin, const P: bool>(
    ctx: &mut TCtx<'_, T>,
    op: &TOp<T>,
    pc: usize,
) -> usize {
    let a = get(ctx.regs, op.a).as_int() + op.i;
    let l = if P {
        tier_try!(ctx, ctx.tier.load_private(a))
    } else {
        tier_try!(ctx, ctx.tier.load(a))
    };
    set(ctx.regs, op.b, l);
    let o = get(ctx.regs, op.c);
    let v = if op.e != 0 {
        eval_binop(Z::OP, l, o)
    } else {
        eval_binop(Z::OP, o, l)
    };
    set(ctx.regs, op.d, v);
    if P {
        tier_try!(ctx, ctx.tier.store_private(a, v));
    } else {
        tier_try!(ctx, ctx.tier.store(a, v));
    }
    pc + 3
}

/// `a=block` — missing terminator (both modes; the runner maps the fault).
fn h_trap<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    ctx.fault = Some(ExecError::MissingTerminator(BlockId::new(op.a)));
    DONE
}

/// Flat-mode `Wait`/`Signal`: no-ops, like `run_flat`'s treatment.
fn h_nop<T: Tier>(_ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    pc + 1
}

// ---------------------------------------------------------------------------
// Iteration-mode control handlers (transliterations of `run_iteration` arms).
// ---------------------------------------------------------------------------

/// `a=lane` — the synchronized-segment entry wait.
fn h_wait<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let sync = ctx.sync.expect("iteration handler outside iteration mode");
    let lane_ix = op.a as usize;
    if !sync.lanes.poll(lane_ix, ctx.iteration) {
        match wait_blocking(sync, ctx.telem, lane_ix, ctx.iteration, pc as u32) {
            WaitOutcome::Passed => {}
            WaitOutcome::Cancelled => {
                ctx.end_iter = Some(Ok(IterEnd::Cancelled));
                return DONE;
            }
            WaitOutcome::Deadlocked { observed } => {
                ctx.end_iter = Some(Err(IterError::Deadlock {
                    lane: op.a,
                    pc: pc as u32,
                    observed,
                }));
                return DONE;
            }
        }
    } else if let Some(t) = ctx.telem {
        t.on_wait_fast(ctx.iteration, pc as u32);
    }
    pc + 1
}

/// `a=lane` — the segment-exit signal.
fn h_signal_lane<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let sync = ctx.sync.expect("iteration handler outside iteration mode");
    sync.lanes.signal(op.a as usize, ctx.iteration);
    sync.sleepers.wake_all();
    if let Some(t) = ctx.telem {
        t.on_signal(ctx.iteration, pc as u32);
    }
    pc + 1
}

/// Prologue completed: release the next iteration.
fn h_signal_control<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    if let Some(f) = ctx.on_control.as_mut() {
        f();
    }
    pc + 1
}

/// Coalesced multi-lane signal; lanes live in the boxed `POp` at `pc`.
fn h_signal_multi<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    let pcode = ctx.pcode;
    let POp::SignalMulti { lanes, width } = &pcode[pc] else {
        unreachable!("decoder installs h_signal_multi only on SignalMulti")
    };
    let sync = ctx.sync.expect("iteration handler outside iteration mode");
    for lane in lanes.iter() {
        sync.lanes.signal(*lane as usize, ctx.iteration);
    }
    sync.sleepers.wake_all();
    if let Some(t) = ctx.telem {
        // The fused window covers the constituent logical signal pcs.
        for k in pc..pc + *width as usize {
            if t.lane_of(k as u32) != NO_LANE {
                t.on_signal(ctx.iteration, k as u32);
            }
        }
    }
    pc + *width as usize
}

/// Select; operands live in the boxed `POp` at `pc`.
fn h_select_iter<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    let pcode = ctx.pcode;
    let POp::SelectB(data) = &pcode[pc] else {
        unreachable!("decoder installs h_select_iter only on SelectB")
    };
    let v = if eval(ctx.regs, data.cond).as_bool() {
        eval(ctx.regs, data.on_true)
    } else {
        eval(ctx.regs, data.on_false)
    };
    set(ctx.regs, data.dst, v);
    pc + 1
}

/// Call out of the iteration; call data lives in the boxed `POp` at `pc`. Callees run on
/// the switch engine (calls are rare in iteration code, and this keeps the callee
/// semantics identical to the reference tier by construction).
fn h_call_iter<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    let image = ctx.image;
    let pcode = ctx.pcode;
    let POp::CallB(call) = &pcode[pc] else {
        unreachable!("decoder installs h_call_iter only on CallB")
    };
    let actuals: Vec<Value> = call.args.iter().map(|a| eval(ctx.regs, *a)).collect();
    let mut callee_regs: Vec<Value> = Vec::new();
    prepare_callee_regs(image, call.func, &actuals, &mut callee_regs);
    match run_flat(
        image,
        FuncId::new(call.func),
        image.funcs[call.func as usize].entry_block,
        None,
        &mut callee_regs,
        ctx.tier,
        u64::MAX,
    ) {
        Ok(FlatEnd::Returned(v)) => {
            if let Some(d) = call.dst {
                set(ctx.regs, d, v.unwrap_or_default());
            }
            pc + 1
        }
        Ok(FlatEnd::ReachedStop) => unreachable!("no stop block in callee runs"),
        Err(FlatError::Exec(e)) => {
            ctx.fault = Some(e);
            DONE
        }
        Err(FlatError::BudgetExceeded) => unreachable!("callees are unmetered"),
    }
}

/// `a=pc` — internal jump.
fn h_jump_iter<T: Tier>(_ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    op.a as usize
}

fn h_end_iter<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, _pc: usize) -> usize {
    ctx.end_iter = Some(Ok(IterEnd::Completed));
    DONE
}

/// `a=block`
fn h_exit_jump<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    ctx.end_iter = Some(Ok(IterEnd::Exit { block: op.a }));
    DONE
}

/// Resolves an iteration branch edge: sentinel targets end the iteration.
#[inline(always)]
fn iter_edge<T: Tier>(ctx: &mut TCtx<'_, T>, target: u32, block: u32) -> usize {
    match target {
        PC_END_ITER => {
            ctx.end_iter = Some(Ok(IterEnd::Completed));
            DONE
        }
        PC_EXIT => {
            ctx.end_iter = Some(Ok(IterEnd::Exit { block }));
            DONE
        }
        t => t as usize,
    }
}

/// `a=cond b=then_pc c=else_pc d=then_block e=else_block`
fn h_branch_iter<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let (target, block) = if get(ctx.regs, op.a).as_bool() {
        (op.b, op.d)
    } else {
        (op.c, op.e)
    };
    iter_edge(ctx, target, block)
}

/// `a=src`
fn h_ret_r_iter<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    ctx.end_iter = Some(Ok(IterEnd::Returned(Some(get(ctx.regs, op.a)))));
    DONE
}

/// `e=has_value v=value`
fn h_ret_i_iter<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let v = (op.e != 0).then_some(op.v);
    ctx.end_iter = Some(Ok(IterEnd::Returned(v)));
    DONE
}

/// `a=dst b=lhs c=then_pc d=else_pc i=then_block j=else_block v=imm` — fused cmp+branch.
fn h_cmpbr_ri<T: Tier, P: CPred>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let taken = eval_pred(P::OP, get(ctx.regs, op.b), op.v);
    set(ctx.regs, op.a, Value::from_bool(taken));
    let (target, block) = if taken {
        (op.c, op.i as u32)
    } else {
        (op.d, op.j as u32)
    };
    iter_edge(ctx, target, block)
}

/// `a=dst b=lhs c=rhs d=then_pc e=else_pc i=then_block j=else_block`
fn h_cmpbr_rr<T: Tier, P: CPred>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let taken = eval_pred(P::OP, get(ctx.regs, op.b), get(ctx.regs, op.c));
    set(ctx.regs, op.a, Value::from_bool(taken));
    let (target, block) = if taken {
        (op.d, op.i as u32)
    } else {
        (op.e, op.j as u32)
    };
    iter_edge(ctx, target, block)
}

// ---------------------------------------------------------------------------
// Flat-mode control handlers (transliterations of `run_flat` arms).
// ---------------------------------------------------------------------------

/// Resolves a flat top-level block transition: stop-block and budget checks apply only
/// outside callees, like `run_flat`.
#[inline(always)]
fn flat_edge<T: Tier>(ctx: &mut TCtx<'_, T>, target: u32, block: u32) -> usize {
    if ctx.frames.is_empty() {
        if ctx.stop_block == Some(block) {
            ctx.end_flat = Some(FlatHalt::ReachedStop);
            return DONE;
        }
        ctx.top_blocks += 1;
        if ctx.top_blocks > ctx.budget {
            ctx.end_flat = Some(FlatHalt::BudgetExceeded);
            return DONE;
        }
    }
    target as usize
}

/// `a=target b=block`
fn h_jump_flat<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    flat_edge(ctx, op.a, op.b)
}

/// `a=cond b=then_pc c=else_pc d=then_block e=else_block`
fn h_branch_flat<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let (target, block) = if get(ctx.regs, op.a).as_bool() {
        (op.b, op.d)
    } else {
        (op.c, op.e)
    };
    flat_edge(ctx, target, block)
}

/// Select; operands live in the original `Op` stream at `pc`.
fn h_select_flat<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    let image = ctx.image;
    let Op::Select {
        dst,
        cond,
        on_true,
        on_false,
    } = &image.funcs[ctx.cur_func].code[pc]
    else {
        unreachable!("decoder installs h_select_flat only on Select")
    };
    let v = if eval(ctx.regs, *cond).as_bool() {
        eval(ctx.regs, *on_true)
    } else {
        eval(ctx.regs, *on_false)
    };
    set(ctx.regs, *dst, v);
    pc + 1
}

/// Call; args live in the original `Op` stream at `pc`. Pushes a frame and switches code
/// arrays via the `SWITCH` sentinel.
fn h_call_flat<T: Tier>(ctx: &mut TCtx<'_, T>, _op: &TOp<T>, pc: usize) -> usize {
    let image = ctx.image;
    let Op::Call {
        dst,
        func: callee,
        args,
    } = &image.funcs[ctx.cur_func].code[pc]
    else {
        unreachable!("decoder installs h_call_flat only on Call")
    };
    if ctx.frames.len() + 1 > MAX_CALL_DEPTH {
        ctx.fault = Some(ExecError::StackOverflow);
        return DONE;
    }
    let callee_ix = *callee as usize;
    let cf = &image.funcs[callee_ix];
    let mut callee_regs = vec![Value::default(); cf.num_regs.max(args.len())];
    for (slot, a) in callee_regs.iter_mut().zip(args.iter()).take(cf.num_params) {
        *slot = eval(ctx.regs, *a);
    }
    ctx.frames.push(TFrame {
        func: ctx.cur_func,
        pc,
        regs: std::mem::replace(ctx.regs, callee_regs),
        dst: *dst,
    });
    ctx.cur_func = callee_ix;
    ctx.next_pc = cf.entry_pc() as usize;
    SWITCH
}

/// Shared return path: pop a frame or end the run.
#[inline(always)]
fn ret_flat<T: Tier>(ctx: &mut TCtx<'_, T>, v: Option<Value>) -> usize {
    match ctx.frames.pop() {
        None => {
            ctx.end_flat = Some(FlatHalt::Returned(v));
            DONE
        }
        Some(frame) => {
            ctx.cur_func = frame.func;
            *ctx.regs = frame.regs;
            if let Some(d) = frame.dst {
                set(ctx.regs, d, v.unwrap_or_default());
            }
            ctx.next_pc = frame.pc + 1;
            SWITCH
        }
    }
}

/// `a=src`
fn h_ret_r_flat<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let v = Some(get(ctx.regs, op.a));
    ret_flat(ctx, v)
}

/// `e=has_value v=value`
fn h_ret_i_flat<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, _pc: usize) -> usize {
    let v = (op.e != 0).then_some(op.v);
    ret_flat(ctx, v)
}

// ---------------------------------------------------------------------------
// Decoders: POp/Op streams → TOp arrays. Interior slots of fused windows decode like any
// other op (they keep their original POp), so jumps into the middle of a window work
// exactly as they do on the switch engine.
// ---------------------------------------------------------------------------

/// Decodes a mode-independent data op; `None` for control ops and the boxed shapes
/// handled per mode.
fn decode_data<T: Tier>(p: &POp) -> Option<TOp<T>> {
    Some(match p {
        POp::MovR { dst, src } => TOp {
            a: *dst,
            b: *src,
            ..TOp::new(h_mov_r::<T>)
        },
        POp::MovI { dst, v } => TOp {
            a: *dst,
            v: *v,
            ..TOp::new(h_mov_i::<T>)
        },
        POp::UnR { dst, op, src } => TOp {
            a: *dst,
            b: *src,
            ..TOp::new(by_unop!(*op, h_un_r, T))
        },
        POp::BinRR { dst, op, lhs, rhs } => TOp {
            a: *dst,
            b: *lhs,
            c: *rhs,
            ..TOp::new(by_binop!(*op, h_bin_rr, T))
        },
        POp::BinRI { dst, op, lhs, rhs } => TOp {
            a: *dst,
            b: *lhs,
            v: *rhs,
            ..TOp::new(by_binop!(*op, h_bin_ri, T))
        },
        POp::BinIR { dst, op, lhs, rhs } => TOp {
            a: *dst,
            b: *rhs,
            v: *lhs,
            ..TOp::new(by_binop!(*op, h_bin_ir, T))
        },
        POp::CmpRR {
            dst,
            pred,
            lhs,
            rhs,
        } => TOp {
            a: *dst,
            b: *lhs,
            c: *rhs,
            ..TOp::new(by_pred!(*pred, h_cmp_rr, T))
        },
        POp::CmpRI {
            dst,
            pred,
            lhs,
            rhs,
        } => TOp {
            a: *dst,
            b: *lhs,
            v: *rhs,
            ..TOp::new(by_pred!(*pred, h_cmp_ri, T))
        },
        POp::CmpIR {
            dst,
            pred,
            lhs,
            rhs,
        } => TOp {
            a: *dst,
            b: *rhs,
            v: *lhs,
            ..TOp::new(by_pred!(*pred, h_cmp_ir, T))
        },
        POp::LoadR {
            dst,
            addr,
            offset,
            private_ok,
        } => TOp {
            a: *dst,
            b: *addr,
            i: *offset,
            ..TOp::new(if *private_ok {
                h_load_r::<T, true> as Handler<T>
            } else {
                h_load_r::<T, false> as Handler<T>
            })
        },
        POp::LoadA { dst, addr } => TOp {
            a: *dst,
            i: *addr,
            ..TOp::new(h_load_a::<T>)
        },
        POp::StoreRR {
            addr,
            offset,
            value,
            private_ok,
        } => TOp {
            a: *addr,
            b: *value,
            i: *offset,
            ..TOp::new(if *private_ok {
                h_store_rr::<T, true> as Handler<T>
            } else {
                h_store_rr::<T, false> as Handler<T>
            })
        },
        POp::StoreRI {
            addr,
            offset,
            value,
            private_ok,
        } => TOp {
            a: *addr,
            i: *offset,
            v: *value,
            ..TOp::new(if *private_ok {
                h_store_ri::<T, true> as Handler<T>
            } else {
                h_store_ri::<T, false> as Handler<T>
            })
        },
        POp::StoreAR { addr, value } => TOp {
            a: *value,
            i: *addr,
            ..TOp::new(h_store_ar::<T>)
        },
        POp::StoreAI { addr, value } => TOp {
            i: *addr,
            v: *value,
            ..TOp::new(h_store_ai::<T>)
        },
        POp::AllocR { dst, words } => TOp {
            a: *dst,
            b: *words,
            ..TOp::new(h_alloc_r::<T>)
        },
        POp::AllocI { dst, words } => TOp {
            a: *dst,
            i: *words,
            ..TOp::new(h_alloc_i::<T>)
        },
        POp::PrivateAllocR { dst, words } => TOp {
            a: *dst,
            b: *words,
            ..TOp::new(h_palloc_r::<T>)
        },
        POp::PrivateAllocI { dst, words } => TOp {
            a: *dst,
            i: *words,
            ..TOp::new(h_palloc_i::<T>)
        },
        POp::BinChainII {
            lhs,
            op1,
            i1,
            d1,
            op2,
            i2,
            d2,
        } => TOp {
            a: *lhs,
            b: *d1,
            c: *d2,
            o1: *op1,
            o2: *op2,
            v: *i1,
            w: *i2,
            ..TOp::new(h_chain_ii::<T>)
        },
        POp::BinChain3II {
            lhs,
            op1,
            i1,
            d1,
            op2,
            i2,
            d2,
            op3,
            i3,
            d3,
        } => TOp {
            a: *lhs,
            b: *d1,
            c: *d2,
            d: *d3,
            o1: *op1,
            o2: *op2,
            o3: *op3,
            v: Value::Int(*i1),
            w: Value::Int(*i2),
            i: *i3,
            ..TOp::new(h_chain3_ii::<T>)
        },
        POp::BinChain3FF {
            lhs,
            op1,
            f1,
            d1,
            op2,
            f2,
            d2,
            op3,
            f3,
            d3,
        } => TOp {
            a: *lhs,
            b: *d1,
            c: *d2,
            d: *d3,
            o1: *op1,
            o2: *op2,
            o3: *op3,
            v: Value::Float(*f1),
            w: Value::Float(*f2),
            i: f3.to_bits() as i64,
            ..TOp::new(h_chain3_ff::<T>)
        },
        POp::BinChainRI {
            lhs,
            rhs,
            op1,
            d1,
            op2,
            i2,
            d2,
        } => TOp {
            a: *lhs,
            b: *rhs,
            c: *d1,
            d: *d2,
            o1: *op1,
            o2: *op2,
            v: *i2,
            ..TOp::new(h_chain_ri::<T>)
        },
        POp::LoadABin {
            laddr,
            ld,
            op,
            other,
            ld_on_lhs,
            dst,
        } => TOp {
            a: *ld,
            b: *other,
            c: *dst,
            e: *ld_on_lhs as u32,
            i: *laddr,
            ..TOp::new(by_binop!(*op, h_load_a_bin, T))
        },
        POp::BinStoreA {
            op,
            lhs,
            rhs,
            dst,
            saddr,
        } => TOp {
            a: *lhs,
            b: *rhs,
            c: *dst,
            i: *saddr,
            ..TOp::new(by_binop!(*op, h_bin_store_a, T))
        },
        POp::StoreIdx {
            base,
            idx,
            dst,
            offset,
            value,
        } => TOp {
            a: *idx,
            b: *dst,
            c: *value,
            i: *base,
            j: *offset,
            ..TOp::new(h_store_idx::<T>)
        },
        POp::RmwA {
            laddr,
            ld,
            op,
            other,
            ld_on_lhs,
            dst,
            saddr,
        } => TOp {
            a: *ld,
            b: *other,
            c: *dst,
            e: *ld_on_lhs as u32,
            i: *laddr,
            j: *saddr,
            ..TOp::new(by_binop!(*op, h_rmw_a, T))
        },
        POp::RmwR {
            addr,
            offset,
            ld,
            op,
            other,
            ld_on_lhs,
            dst,
            private_ok,
        } => TOp {
            a: *addr,
            b: *ld,
            c: *other,
            d: *dst,
            e: *ld_on_lhs as u32,
            i: *offset,
            ..TOp::new(if *private_ok {
                by_binop_b!(*op, h_rmw_r, T, true)
            } else {
                by_binop_b!(*op, h_rmw_r, T, false)
            })
        },
        POp::Trap { block } => TOp {
            a: *block,
            ..TOp::new(h_trap::<T>)
        },
        _ => return None,
    })
}

/// Decodes one specialized iteration op.
fn decode_iter_op<T: Tier>(p: &POp) -> TOp<T> {
    if let Some(t) = decode_data(p) {
        return t;
    }
    match p {
        POp::SelectB(_) => TOp::new(h_select_iter::<T>),
        POp::CallB(_) => TOp::new(h_call_iter::<T>),
        POp::Wait { lane } => TOp {
            a: *lane,
            ..TOp::new(h_wait::<T>)
        },
        POp::SignalLane { lane } => TOp {
            a: *lane,
            ..TOp::new(h_signal_lane::<T>)
        },
        POp::SignalControl => TOp::new(h_signal_control::<T>),
        POp::SignalMulti { .. } => TOp::new(h_signal_multi::<T>),
        POp::Jump { pc } => TOp {
            a: *pc,
            ..TOp::new(h_jump_iter::<T>)
        },
        POp::EndIter => TOp::new(h_end_iter::<T>),
        POp::ExitJump { block } => TOp {
            a: *block,
            ..TOp::new(h_exit_jump::<T>)
        },
        POp::Branch {
            cond,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => TOp {
            a: *cond,
            b: *then_pc,
            c: *else_pc,
            d: *then_block,
            e: *else_block,
            ..TOp::new(h_branch_iter::<T>)
        },
        POp::RetR { src } => TOp {
            a: *src,
            ..TOp::new(h_ret_r_iter::<T>)
        },
        POp::RetI { v } => TOp {
            e: v.is_some() as u32,
            v: v.unwrap_or_default(),
            ..TOp::new(h_ret_i_iter::<T>)
        },
        POp::CmpBrRI {
            dst,
            pred,
            lhs,
            imm,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => TOp {
            a: *dst,
            b: *lhs,
            c: *then_pc,
            d: *else_pc,
            i: *then_block as i64,
            j: *else_block as i64,
            v: *imm,
            ..TOp::new(by_pred!(*pred, h_cmpbr_ri, T))
        },
        POp::CmpBrRR {
            dst,
            pred,
            lhs,
            rhs,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => TOp {
            a: *dst,
            b: *lhs,
            c: *rhs,
            d: *then_pc,
            e: *else_pc,
            i: *then_block as i64,
            j: *else_block as i64,
            ..TOp::new(by_pred!(*pred, h_cmpbr_rr, T))
        },
        _ => unreachable!("decode_data covers every remaining POp"),
    }
}

/// Decodes one whole-function op for the flat engine. Data ops reuse the iteration
/// specializer (with `private_ok = false`, matching `run_flat`'s shared-route accesses);
/// control ops decode straight from the [`Op`] so block fields survive for the stop-block
/// and budget checks. No fusion in flat mode — same as `run_flat`.
fn decode_flat_op<T: Tier>(op: &Op) -> TOp<T> {
    match op {
        Op::Wait { .. } | Op::Signal { .. } => TOp::new(h_nop::<T>),
        Op::Select { .. } => TOp::new(h_select_flat::<T>),
        Op::Call { .. } => TOp::new(h_call_flat::<T>),
        Op::Jump { pc, block } => TOp {
            a: *pc,
            b: *block,
            ..TOp::new(h_jump_flat::<T>)
        },
        Op::Branch {
            cond,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => match cond {
            Opnd::Reg(r) => TOp {
                a: *r,
                b: *then_pc,
                c: *else_pc,
                d: *then_block,
                e: *else_block,
                ..TOp::new(h_branch_flat::<T>)
            },
            imm => {
                // Constant condition: the branch folds to its taken edge.
                let (pc, block) = if eval(&[], *imm).as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                TOp {
                    a: pc,
                    b: block,
                    ..TOp::new(h_jump_flat::<T>)
                }
            }
        },
        Op::Ret { value } => match value {
            Some(Opnd::Reg(r)) => TOp {
                a: *r,
                ..TOp::new(h_ret_r_flat::<T>)
            },
            Some(imm) => TOp {
                e: 1,
                v: eval(&[], *imm),
                ..TOp::new(h_ret_i_flat::<T>)
            },
            None => TOp::new(h_ret_i_flat::<T>),
        },
        Op::Trap { block } => TOp {
            a: *block,
            ..TOp::new(h_trap::<T>)
        },
        data => decode_data(&specialize_op(data, false))
            .expect("every non-control Op specializes to a data POp"),
    }
}

/// The decoded per-iteration code array of one [`LoopImage`]. Cheap to build (one pass
/// over the stream), so workers build their own instance.
pub(crate) struct IterTable<T: Tier> {
    pub(crate) ops: Vec<TOp<T>>,
}

impl<T: Tier> IterTable<T> {
    pub(crate) fn build(loop_image: &LoopImage) -> IterTable<T> {
        IterTable {
            ops: loop_image.pcode.iter().map(decode_iter_op).collect(),
        }
    }
}

/// Decoded whole-function code arrays of an [`ExecImage`] (flat engine: Phase A/C and
/// callee bodies), parallel to `image.funcs`.
pub(crate) struct FlatTables<T: Tier> {
    pub(crate) funcs: Vec<Vec<TOp<T>>>,
}

impl<T: Tier> FlatTables<T> {
    pub(crate) fn build(image: &ExecImage) -> FlatTables<T> {
        FlatTables {
            funcs: image
                .funcs
                .iter()
                .map(|f| f.code.iter().map(decode_flat_op).collect())
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runners.
// ---------------------------------------------------------------------------

/// [`crate::parallel_image::run_iteration`] on the threaded tier: identical contract,
/// identical observable semantics (the fuzz oracle and the telemetry parity test hold the
/// two to bitwise agreement).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_iteration_threaded<T: Tier>(
    image: &ExecImage,
    loop_image: &LoopImage,
    table: &IterTable<T>,
    iteration: u64,
    regs: &mut Vec<Value>,
    tier: &mut T,
    sync: &IterSync<'_>,
    on_control: &mut dyn FnMut(),
) -> Result<IterEnd, IterError> {
    // This worker's telemetry handle; statically `None` without the feature, exactly like
    // `run_iteration`, so every recording branch in the handlers folds away.
    #[cfg(feature = "telemetry")]
    let telem = sync.telem;
    #[cfg(not(feature = "telemetry"))]
    let telem: Option<WorkerCtx<'_>> = None;
    let mut ctx = TCtx {
        image,
        pcode: &loop_image.pcode,
        regs,
        tier,
        iteration,
        sync: Some(sync),
        on_control: Some(on_control),
        telem,
        cur_func: loop_image.func.index(),
        next_pc: 0,
        frames: Vec::new(),
        top_blocks: 0,
        budget: u64::MAX,
        stop_block: None,
        fault: None,
        end_iter: None,
        end_flat: None,
    };
    dispatch::<T>(&[], &table.ops, loop_image.entry_pc as usize, &mut ctx);
    if let Some(e) = ctx.fault {
        return Err(IterError::Exec(e));
    }
    ctx.end_iter.expect("iteration ended without a verdict")
}

/// [`crate::parallel_image::run_flat`] on the threaded tier: identical contract (stop
/// block, budget metering, unwind-to-bottom register hand-back).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_flat_threaded<T: Tier>(
    image: &ExecImage,
    tables: &FlatTables<T>,
    func: FuncId,
    start_block: u32,
    stop_block: Option<u32>,
    regs: &mut Vec<Value>,
    tier: &mut T,
    budget: u64,
) -> Result<FlatEnd, FlatError> {
    let f = &image.funcs[func.index()];
    if regs.len() < f.num_regs {
        regs.resize(f.num_regs, Value::default());
    }
    if stop_block == Some(start_block) {
        return Ok(FlatEnd::ReachedStop);
    }
    let entry = f.block_start(start_block) as usize;
    let mut ctx = TCtx {
        image,
        pcode: &[],
        regs,
        tier,
        iteration: 0,
        sync: None,
        on_control: None,
        telem: None,
        cur_func: func.index(),
        next_pc: 0,
        frames: Vec::new(),
        top_blocks: 0,
        budget,
        stop_block,
        fault: None,
        end_iter: None,
        end_flat: None,
    };
    dispatch::<T>(&tables.funcs, &tables.funcs[func.index()], entry, &mut ctx);
    let TCtx {
        frames,
        fault,
        end_flat,
        ..
    } = ctx;
    // Hand the (possibly callee-stale) top-level register file back: unwind to the bottom
    // frame if the run ended inside a callee, like `run_flat`.
    if let Some(bottom) = frames.into_iter().next() {
        *regs = bottom.regs;
    }
    if let Some(e) = fault {
        return Err(FlatError::Exec(e));
    }
    match end_flat.expect("flat run ended without a verdict") {
        FlatHalt::ReachedStop => Ok(FlatEnd::ReachedStop),
        FlatHalt::Returned(v) => Ok(FlatEnd::Returned(v)),
        FlatHalt::BudgetExceeded => Err(FlatError::BudgetExceeded),
    }
}
