//! The [`ParallelImage`]: a [`TransformedProgram`] lowered once into an execution-ready form
//! the parallel runtime dispatches directly.
//!
//! The first-generation executor block-stepped the generic [`helix_ir::ImageEvaluator`]
//! through the loop, re-deriving everything per block per iteration: set-membership tests
//! ("is this block still in the loop?", "did we just leave the prologue?") on `BTreeSet`s,
//! sync-point resolution through a modulo over a dense counter array, plus the engine's own
//! fuel/statistics/cost accounting on every op. [`LoopImage::build`] does all of that
//! *once*, at lowering time:
//!
//! * the loop's blocks (prologue + body) are re-laid-out into one contiguous op stream
//!   ([`LoopImage::code`]) with internal branch targets pre-resolved to program counters;
//! * the loop's edges are classified at lowering time: the back edge becomes a jump to the
//!   [`PC_END_ITER`] sentinel, every exit edge a jump to [`PC_EXIT`] (carrying the dense
//!   index of the Phase C resume block), so the hot loop never consults a block set;
//! * `Wait`/`Signal` ops are renumbered from [`DepId`]s to dense *lane* indices into the
//!   padded [`crate::lanes::SignalLanes`] array, with a per-segment side table
//!   ([`LoopImage::lanes`]) recording the owning segment and its flat pc range (used for
//!   precise deadlock reports and for the simulator's per-segment cost model);
//! * the prologue→body transition is materialized as an explicit control-release op
//!   (a `Signal` on the reserved [`CONTROL_DEP`] lane) at the entry of every body block
//!   reachable from the prologue, so "release the next iteration" is ordinary dispatch;
//! * `Alloc` sites the privatization analysis proved iteration-private become
//!   [`Op::PrivateAlloc`], served from the per-worker [`crate::sharded::PrivateArena`].
//!
//! The same module hosts the *lean engine*: a minimal interpreter over the lowered ops with
//! no fuel, no statistics, no observers and no cycle charging — the production dispatch loop
//! of the runtime, as opposed to the instrumented engine used for profiling. Its semantics
//! (value evaluation, memory faults, call depth, missing terminators) are identical to
//! [`helix_ir::ImageEvaluator`]; only the accounting is gone.

use crate::lanes::SignalLanes;
use crate::pool::{AdaptiveWait, Sleepers, WaitProfile};
use crate::sharded::{PrivateArena, ShardedMemory, PRIVATE_BASE};
use helix_core::TransformedProgram;
use helix_ir::interp::{eval_binop, eval_pred, eval_unop, ExecError, MAX_CALL_DEPTH};
use helix_ir::lower::{cost_table, CostClass};
use helix_ir::{
    BinOp, BlockId, CostModel, DepId, ExecImage, FuncId, InstrRef, Memory, Op, Opnd, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved lane index of the iteration-control dependence (the prologue-ordering chain).
pub const CONTROL_DEP: u32 = u32::MAX;

/// Sentinel pc: the back edge — the iteration completed.
pub const PC_END_ITER: u32 = u32::MAX;

/// Sentinel pc: an exit edge — the loop is over; the op's `block` field names the Phase C
/// resume block.
pub const PC_EXIT: u32 = u32::MAX - 1;

/// One synchronized sequential segment in lowered form.
#[derive(Clone, Debug)]
pub struct SegmentLane {
    /// The dependence this lane synchronizes.
    pub dep: DepId,
    /// Index of the segment in the plan's segment list.
    pub segment: usize,
    /// First pc of the segment's flat bytecode range (its earliest `Wait`).
    pub first_pc: u32,
    /// Last pc of the segment's flat bytecode range (its latest `Signal`).
    pub last_pc: u32,
}

impl SegmentLane {
    /// The `[first, last]` pc span of the segment in [`LoopImage::code`].
    pub fn pc_range(&self) -> (u32, u32) {
        (self.first_pc, self.last_pc)
    }
}

/// The loop portion of a [`ParallelImage`]: one iteration's flat bytecode plus side tables.
#[derive(Clone, Debug)]
pub struct LoopImage {
    /// The parallel clone function the loop lives in.
    pub func: FuncId,
    /// Dense index of the loop header block.
    pub header: u32,
    /// pc of the header's first op in [`LoopImage::code`]: where every iteration starts.
    pub entry_pc: u32,
    /// The iteration op stream in the module's generic encoding (diagnostics, segment cost
    /// model); the engine dispatches the specialized [`LoopImage::pcode`] stream instead.
    pub code: Vec<Op>,
    /// The specialized iteration op stream, parallel to `code` (same pcs): operands are
    /// pre-decoded into register/immediate variants, constants folded, global addresses
    /// fused into absolute load/store forms — the dispatch the workers actually run.
    pub(crate) pcode: Vec<POp>,
    /// Registers that must be reset to the loop-entry snapshot before each iteration,
    /// sorted. A register needs a reset only if some iteration op *reads* it before any
    /// definition in its own block (it may observe a stale previous-iteration value) *and*
    /// some iteration op writes it (otherwise it still holds the snapshot value). Every
    /// cross-iteration register flow the program's semantics rely on was demoted to the
    /// synchronized frame by Step 7, so this set exists purely to keep stale worker-local
    /// register files deterministic — and is typically tiny, which is the point: the
    /// first-generation executor cloned the whole register file per iteration.
    pub restore_regs: Vec<u32>,
    /// The clone-function instruction each op came from, parallel to `code` (synthesized
    /// control-release ops map to their block's first instruction).
    pub pc_to_ref: Vec<InstrRef>,
    /// Source block (dense index) of each op, parallel to `code`.
    pub pc_block: Vec<u32>,
    /// One entry per signal lane, indexed by the lane number carried by `Wait`/`Signal` ops.
    pub lanes: Vec<SegmentLane>,
    /// Privatized basic induction variables `(register, step)`: each worker recomputes them
    /// from the iteration number instead of synchronizing them.
    pub induction_vars: Vec<(u32, i64)>,
    /// Static words allocated privately per iteration (0 when privatization does not apply).
    pub private_words_per_iter: u64,
    /// Pre-existing (generator-noise) sync ops dropped during lowering: they are no-ops
    /// sequentially and correspond to no synchronized segment.
    pub dropped_sync_ops: usize,
}

impl LoopImage {
    /// Lowers the parallelized loop of `program` (already lowered to `image`) into its
    /// iteration bytecode. See the module docs for the rewrites performed.
    pub fn build(image: &ExecImage, program: &TransformedProgram) -> LoopImage {
        let plan = &program.plan;
        let fi = image.func(program.parallel_func);
        let header: u32 = plan.header.0;
        let prologue: BTreeSet<u32> = plan.prologue_blocks.iter().map(|b| b.0).collect();
        let body: BTreeSet<u32> = plan.body_blocks.iter().map(|b| b.0).collect();
        let loop_blocks: Vec<u32> = prologue.iter().chain(body.iter()).copied().collect();
        let in_loop: BTreeSet<u32> = loop_blocks.iter().copied().collect();

        // Dense lanes for the synchronized dependences, in segment order.
        let mut lane_of: BTreeMap<u32, u32> = BTreeMap::new();
        let mut lanes: Vec<SegmentLane> = Vec::new();
        for (index, seg) in plan.segments.iter().enumerate() {
            if seg.synchronized && !lane_of.contains_key(&seg.dep.0) {
                lane_of.insert(seg.dep.0, lanes.len() as u32);
                lanes.push(SegmentLane {
                    dep: seg.dep,
                    segment: index,
                    first_pc: u32::MAX,
                    last_pc: 0,
                });
            }
        }

        // Body blocks entered from the prologue get an explicit control-release op: reaching
        // one proves this iteration's prologue completed and decided to continue.
        let mut release_at: BTreeSet<u32> = BTreeSet::new();
        for &b in &prologue {
            for op in fi.block_code(b) {
                let mut target = |block: u32| {
                    if body.contains(&block) {
                        release_at.insert(block);
                    }
                };
                match op {
                    Op::Jump { block, .. } => target(*block),
                    Op::Branch {
                        then_block,
                        else_block,
                        ..
                    } => {
                        target(*then_block);
                        target(*else_block);
                    }
                    _ => {}
                }
            }
        }

        // Emit, recording each loop block's start pc; branch pcs are patched afterwards.
        let mut code: Vec<Op> = Vec::new();
        let mut pc_to_ref: Vec<InstrRef> = Vec::new();
        let mut pc_block: Vec<u32> = Vec::new();
        let mut start_of: BTreeMap<u32, u32> = BTreeMap::new();
        let mut dropped_sync_ops = 0usize;
        for &b in &loop_blocks {
            start_of.insert(b, code.len() as u32);
            let refs = fi.block_refs(b);
            if release_at.contains(&b) {
                code.push(Op::Signal { dep: CONTROL_DEP });
                pc_to_ref.push(
                    refs.first()
                        .copied()
                        .unwrap_or(InstrRef::new(BlockId::new(b), 0)),
                );
                pc_block.push(b);
            }
            for (op, r) in fi.block_code(b).iter().zip(refs) {
                let lowered = match op {
                    Op::Wait { dep } => match lane_of.get(dep) {
                        Some(lane) => {
                            let pc = code.len() as u32;
                            lanes[*lane as usize].first_pc = lanes[*lane as usize].first_pc.min(pc);
                            lanes[*lane as usize].last_pc = lanes[*lane as usize].last_pc.max(pc);
                            Op::Wait { dep: *lane }
                        }
                        None => {
                            dropped_sync_ops += 1;
                            continue;
                        }
                    },
                    Op::Signal { dep } => match lane_of.get(dep) {
                        Some(lane) => {
                            let pc = code.len() as u32;
                            lanes[*lane as usize].first_pc = lanes[*lane as usize].first_pc.min(pc);
                            lanes[*lane as usize].last_pc = lanes[*lane as usize].last_pc.max(pc);
                            Op::Signal { dep: *lane }
                        }
                        None => {
                            dropped_sync_ops += 1;
                            continue;
                        }
                    },
                    Op::Alloc { dst, words } if program.private_allocs.contains(r) => {
                        Op::PrivateAlloc {
                            dst: *dst,
                            words: *words,
                        }
                    }
                    other => other.clone(),
                };
                code.push(lowered);
                pc_to_ref.push(*r);
                pc_block.push(b);
            }
        }

        // Patch branch targets: internal edges get their lowered pc, the back edge and exit
        // edges get their sentinels (the `block` field keeps the original dense block index,
        // which Phase C needs for exits).
        let resolve = |block: u32| -> u32 {
            if block == header {
                PC_END_ITER
            } else if in_loop.contains(&block) {
                start_of[&block]
            } else {
                PC_EXIT
            }
        };
        for op in &mut code {
            match op {
                Op::Jump { pc, block } => *pc = resolve(*block),
                Op::Branch {
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                    ..
                } => {
                    *then_pc = resolve(*then_block);
                    *else_pc = resolve(*else_block);
                }
                _ => {}
            }
        }

        let private_words_per_iter = code
            .iter()
            .filter_map(|op| match op {
                Op::PrivateAlloc {
                    words: Opnd::Int(w),
                    ..
                } => Some((*w).max(0) as u64),
                _ => None,
            })
            .sum();
        let induction_vars: Vec<(u32, i64)> = plan
            .induction_vars
            .iter()
            .map(|(v, step)| (v.0, *step))
            .collect();
        let mut pcode: Vec<POp> = code
            .iter()
            .zip(&pc_to_ref)
            .map(|(op, r)| specialize_op(op, program.private_accesses.contains(r)))
            .collect();
        fuse_pairs(&mut pcode, &pc_block);
        let restore_regs = compute_restore_regs(&code, &pc_block, &induction_vars, fi.num_regs);
        LoopImage {
            func: program.parallel_func,
            header,
            entry_pc: start_of[&header],
            code,
            pcode,
            restore_regs,
            pc_to_ref,
            pc_block,
            lanes,
            induction_vars,
            private_words_per_iter,
            dropped_sync_ops,
        }
    }

    /// Number of signal lanes (synchronized dependences).
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane a `Wait`/`Signal` op at `pc` targets, if any.
    pub fn lane_at(&self, pc: u32) -> Option<&SegmentLane> {
        match self.code.get(pc as usize) {
            Some(Op::Wait { dep }) | Some(Op::Signal { dep }) if *dep != CONTROL_DEP => {
                self.lanes.get(*dep as usize)
            }
            _ => None,
        }
    }

    /// Static cycle estimate of each segment's flat pc span, from the lowering-time cost
    /// classes: the cycles a worker spends between entering the segment's first `Wait` and
    /// leaving its last `Signal`, assuming every op in the span executes once. The
    /// simulator uses these as its per-segment costs when no profile-weighted estimate is
    /// available (and to cross-check the profile-weighted ones).
    pub fn segment_span_cycles(&self, cost: &CostModel) -> Vec<(DepId, u64)> {
        let table = cost_table(cost);
        self.lanes
            .iter()
            .map(|lane| {
                let span = if lane.first_pc <= lane.last_pc {
                    &self.code[lane.first_pc as usize..=lane.last_pc as usize]
                } else {
                    &[][..]
                };
                let cycles = span
                    .iter()
                    .map(|op| table[cost_class_of_op(op) as usize])
                    .sum();
                (lane.dep, cycles)
            })
            .collect()
    }
}

/// Pairwise superinstruction fusion over the specialized stream: a value-producing op whose
/// result feeds the immediately following op collapses into one dispatch. The second slot of
/// each fused pair keeps its original op so control flow that jumps into the middle of a
/// pair (or re-enters a block mid-way) executes identically; straight-line execution skips
/// it. Fusion never crosses a block boundary.
fn fuse_pairs(pcode: &mut [POp], pc_block: &[u32]) {
    for pc in 0..pcode.len().saturating_sub(1) {
        if pc_block[pc] != pc_block[pc + 1] {
            continue;
        }
        let fused = match (&pcode[pc], &pcode[pc + 1]) {
            (
                POp::BinRI {
                    dst: mid,
                    op: op1,
                    lhs,
                    rhs: imm1,
                },
                POp::BinRI {
                    dst,
                    op: op2,
                    lhs: second_lhs,
                    rhs: imm2,
                },
            ) if second_lhs == mid => Some(POp::BinChainII {
                mid: *mid,
                op1: *op1,
                lhs: *lhs,
                imm1: *imm1,
                dst: *dst,
                op2: *op2,
                imm2: *imm2,
            }),
            (
                POp::BinRR {
                    dst: mid,
                    op: op1,
                    lhs,
                    rhs,
                },
                POp::BinRI {
                    dst,
                    op: op2,
                    lhs: second_lhs,
                    rhs: imm2,
                },
            ) if second_lhs == mid => Some(POp::BinChainRI {
                mid: *mid,
                op1: *op1,
                lhs: *lhs,
                rhs: *rhs,
                dst: *dst,
                op2: *op2,
                imm2: *imm2,
            }),
            (
                POp::CmpRI {
                    dst,
                    pred,
                    lhs,
                    rhs,
                },
                POp::Branch {
                    cond,
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                },
            ) if cond == dst => Some(POp::CmpBrRI {
                dst: *dst,
                pred: *pred,
                lhs: *lhs,
                imm: *rhs,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            }),
            (
                POp::CmpRR {
                    dst,
                    pred,
                    lhs,
                    rhs,
                },
                POp::Branch {
                    cond,
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                },
            ) if cond == dst => Some(POp::CmpBrRR {
                dst: *dst,
                pred: *pred,
                lhs: *lhs,
                rhs: *rhs,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            }),
            _ => None,
        };
        if let Some(f) = fused {
            pcode[pc] = f;
        }
    }
}

/// Computes [`LoopImage::restore_regs`]: registers some op reads before any definition in
/// its own block (conservatively treating every block entry as reachable from another
/// iteration) intersected with registers some op writes, plus the privatized induction
/// variables (their per-iteration recompute overwrites them anyway; listing them keeps the
/// reset story in one place for the exit path).
fn compute_restore_regs(
    code: &[Op],
    pc_block: &[u32],
    induction_vars: &[(u32, i64)],
    num_regs: usize,
) -> Vec<u32> {
    let mut written: BTreeSet<u32> = BTreeSet::new();
    let mut exposed: BTreeSet<u32> = BTreeSet::new();
    let mut block_defs: BTreeSet<u32> = BTreeSet::new();
    let mut current_block = u32::MAX;
    for (pc, op) in code.iter().enumerate() {
        if pc_block[pc] != current_block {
            current_block = pc_block[pc];
            block_defs.clear();
        }
        let mut track_use = |o: &Opnd| {
            if let Opnd::Reg(r) = o {
                if !block_defs.contains(r) {
                    exposed.insert(*r);
                }
            }
        };
        match op {
            Op::Mov { src, .. } | Op::Un { src, .. } => track_use(src),
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                track_use(lhs);
                track_use(rhs);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                track_use(cond);
                track_use(on_true);
                track_use(on_false);
            }
            Op::Load { addr, .. } => track_use(addr),
            Op::Store { addr, value, .. } => {
                track_use(addr);
                track_use(value);
            }
            Op::Alloc { words, .. } | Op::PrivateAlloc { words, .. } => track_use(words),
            Op::Call { args, .. } => {
                for a in args.iter() {
                    track_use(a);
                }
            }
            Op::Branch { cond, .. } => track_use(cond),
            Op::Ret { value } => {
                if let Some(v) = value {
                    track_use(v);
                }
            }
            Op::Wait { .. } | Op::Signal { .. } | Op::Jump { .. } | Op::Trap { .. } => {}
        }
        let dst = match op {
            Op::Mov { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Select { dst, .. }
            | Op::Load { dst, .. }
            | Op::Alloc { dst, .. }
            | Op::PrivateAlloc { dst, .. } => Some(*dst),
            Op::Call { dst, .. } => *dst,
            _ => None,
        };
        if let Some(d) = dst {
            written.insert(d);
            block_defs.insert(d);
        }
    }
    let mut restore: Vec<u32> = exposed
        .intersection(&written)
        .copied()
        .chain(induction_vars.iter().map(|(r, _)| *r))
        .filter(|r| (*r as usize) < num_regs)
        .collect();
    restore.sort_unstable();
    restore.dedup();
    restore
}

fn cost_class_of_op(op: &Op) -> CostClass {
    match op {
        Op::Mov { .. } | Op::Un { .. } | Op::Cmp { .. } | Op::Select { .. } => CostClass::Alu,
        Op::Bin { op, .. } => match op {
            BinOp::Mul => CostClass::Mul,
            BinOp::Div | BinOp::Rem => CostClass::Div,
            _ => CostClass::Alu,
        },
        Op::Load { .. } => CostClass::Load,
        Op::Store { .. } => CostClass::Store,
        Op::Alloc { .. } | Op::PrivateAlloc { .. } => CostClass::Alloc,
        Op::Call { .. } => CostClass::Call,
        Op::Wait { .. } => CostClass::Wait,
        Op::Signal { .. } => CostClass::Signal,
        Op::Jump { .. } | Op::Branch { .. } | Op::Ret { .. } | Op::Trap { .. } => CostClass::Branch,
    }
}

/// A [`TransformedProgram`] lowered once for the parallel runtime: the whole-module bytecode
/// (Phase A/C and callees execute from it) plus the loop's iteration image.
#[derive(Clone, Debug)]
pub struct ParallelImage {
    /// The flat bytecode of the whole transformed module.
    pub exec: ExecImage,
    /// The lowered parallel loop.
    pub loop_image: LoopImage,
}

impl ParallelImage {
    /// Lowers `program` end-to-end. Callers executing the same program repeatedly should
    /// lower once and reuse the image across [`crate::ParallelExecutor::run_parallel`]
    /// calls — both parts are immutable and shared freely across worker threads.
    pub fn lower(program: &TransformedProgram) -> ParallelImage {
        let exec = ExecImage::lower(&program.module);
        let loop_image = LoopImage::build(&exec, program);
        ParallelImage { exec, loop_image }
    }
}

// ---------------------------------------------------------------------------
// The specialized iteration bytecode.
// ---------------------------------------------------------------------------

/// A direct call in specialized form (boxed: calls are rare in loop bodies, and the payload
/// would otherwise dominate the op size).
#[derive(Clone, Debug)]
pub(crate) struct CallData {
    pub dst: Option<u32>,
    pub func: u32,
    pub args: Box<[Opnd]>,
}

/// A select in specialized form (boxed for the same reason).
#[derive(Clone, Debug)]
pub(crate) struct SelectData {
    pub dst: u32,
    pub cond: Opnd,
    pub on_true: Opnd,
    pub on_false: Opnd,
}

/// One specialized iteration op: the [`Op`] stream re-encoded with operands pre-decoded
/// into register/immediate variants, constants folded, and global base addresses fused into
/// absolute load/store forms. Immediates are stored as ready-made [`Value`]s so the hot loop
/// never constructs one.
#[derive(Clone, Debug)]
pub(crate) enum POp {
    MovR {
        dst: u32,
        src: u32,
    },
    MovI {
        dst: u32,
        v: Value,
    },
    UnR {
        dst: u32,
        op: helix_ir::UnOp,
        src: u32,
    },
    BinRR {
        dst: u32,
        op: BinOp,
        lhs: u32,
        rhs: u32,
    },
    BinRI {
        dst: u32,
        op: BinOp,
        lhs: u32,
        rhs: Value,
    },
    BinIR {
        dst: u32,
        op: BinOp,
        lhs: Value,
        rhs: u32,
    },
    CmpRR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: u32,
    },
    CmpRI {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: Value,
    },
    CmpIR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: Value,
        rhs: u32,
    },
    SelectB(Box<SelectData>),
    /// Load through a register-held base plus constant offset. `private_ok` marks the
    /// statically-proven privatized access sites — the only loads allowed to route into
    /// the per-worker arena; everywhere else a private-range address faults exactly as it
    /// does sequentially.
    LoadR {
        dst: u32,
        addr: u32,
        offset: i64,
        private_ok: bool,
    },
    /// Load from an absolute (global-folded) address — never private.
    LoadA {
        dst: u32,
        addr: i64,
    },
    StoreRR {
        addr: u32,
        offset: i64,
        value: u32,
        private_ok: bool,
    },
    StoreRI {
        addr: u32,
        offset: i64,
        value: Value,
        private_ok: bool,
    },
    StoreAR {
        addr: i64,
        value: u32,
    },
    StoreAI {
        addr: i64,
        value: Value,
    },
    AllocR {
        dst: u32,
        words: u32,
    },
    AllocI {
        dst: u32,
        words: i64,
    },
    PrivateAllocR {
        dst: u32,
        words: u32,
    },
    PrivateAllocI {
        dst: u32,
        words: i64,
    },
    CallB(Box<CallData>),
    Wait {
        lane: u32,
    },
    SignalLane {
        lane: u32,
    },
    SignalControl,
    /// Internal jump (sentinels are translated to [`POp::EndIter`]/[`POp::ExitJump`]).
    Jump {
        pc: u32,
    },
    EndIter,
    ExitJump {
        block: u32,
    },
    Branch {
        cond: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    RetR {
        src: u32,
    },
    RetI {
        v: Option<Value>,
    },
    Trap {
        block: u32,
    },
    // Superinstructions (pairwise fusion, see `fuse_pairs`): the second op of the pair
    // stays at its own pc so jumps into the middle still work; straight-line execution
    // dispatches once and skips both slots. Both destinations are written, preserving the
    // unfused ops' observable register effects exactly.
    /// `mid = lhs op1 imm1; dst = mid op2 imm2`.
    BinChainII {
        mid: u32,
        op1: BinOp,
        lhs: u32,
        imm1: Value,
        dst: u32,
        op2: BinOp,
        imm2: Value,
    },
    /// `mid = lhs op1 rhs; dst = mid op2 imm2`.
    BinChainRI {
        mid: u32,
        op1: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        op2: BinOp,
        imm2: Value,
    },
    /// `dst = lhs pred imm; branch on dst` (the loop-latch idiom).
    CmpBrRI {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        imm: Value,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    /// `dst = lhs pred rhs; branch on dst`.
    CmpBrRR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
}

fn opnd_value(o: Opnd) -> Option<Value> {
    match o {
        Opnd::Reg(_) => None,
        Opnd::Int(i) => Some(Value::Int(i)),
        Opnd::Float(f) => Some(Value::Float(f)),
    }
}

/// Specializes one rewritten iteration [`Op`] (see [`POp`]). Folding uses the engine's own
/// evaluation helpers, so a folded constant is bitwise what the generic engine would have
/// computed. `private_ok` is true for the statically-proven privatized access sites.
fn specialize_op(op: &Op, private_ok: bool) -> POp {
    match op {
        Op::Mov { dst, src } => match opnd_value(*src) {
            Some(v) => POp::MovI { dst: *dst, v },
            None => match src {
                Opnd::Reg(r) => POp::MovR { dst: *dst, src: *r },
                _ => unreachable!(),
            },
        },
        Op::Un { dst, op, src } => match (src, opnd_value(*src)) {
            (_, Some(v)) => POp::MovI {
                dst: *dst,
                v: eval_unop(*op, v),
            },
            (Opnd::Reg(r), None) => POp::UnR {
                dst: *dst,
                op: *op,
                src: *r,
            },
            _ => unreachable!(),
        },
        Op::Bin { dst, op, lhs, rhs } => match (lhs, rhs) {
            (Opnd::Reg(a), Opnd::Reg(b)) => POp::BinRR {
                dst: *dst,
                op: *op,
                lhs: *a,
                rhs: *b,
            },
            (Opnd::Reg(a), imm) => POp::BinRI {
                dst: *dst,
                op: *op,
                lhs: *a,
                rhs: opnd_value(*imm).expect("non-register operand"),
            },
            (imm, Opnd::Reg(b)) => POp::BinIR {
                dst: *dst,
                op: *op,
                lhs: opnd_value(*imm).expect("non-register operand"),
                rhs: *b,
            },
            (a, b) => POp::MovI {
                dst: *dst,
                v: eval_binop(
                    *op,
                    opnd_value(*a).expect("constant"),
                    opnd_value(*b).expect("constant"),
                ),
            },
        },
        Op::Cmp {
            dst,
            pred,
            lhs,
            rhs,
        } => match (lhs, rhs) {
            (Opnd::Reg(a), Opnd::Reg(b)) => POp::CmpRR {
                dst: *dst,
                pred: *pred,
                lhs: *a,
                rhs: *b,
            },
            (Opnd::Reg(a), imm) => POp::CmpRI {
                dst: *dst,
                pred: *pred,
                lhs: *a,
                rhs: opnd_value(*imm).expect("non-register operand"),
            },
            (imm, Opnd::Reg(b)) => POp::CmpIR {
                dst: *dst,
                pred: *pred,
                lhs: opnd_value(*imm).expect("non-register operand"),
                rhs: *b,
            },
            (a, b) => POp::MovI {
                dst: *dst,
                v: Value::from_bool(eval_pred(
                    *pred,
                    opnd_value(*a).expect("constant"),
                    opnd_value(*b).expect("constant"),
                )),
            },
        },
        Op::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => POp::SelectB(Box::new(SelectData {
            dst: *dst,
            cond: *cond,
            on_true: *on_true,
            on_false: *on_false,
        })),
        Op::Load { dst, addr, offset } => match addr {
            Opnd::Reg(r) => POp::LoadR {
                dst: *dst,
                addr: *r,
                offset: *offset,
                private_ok,
            },
            imm => POp::LoadA {
                dst: *dst,
                addr: opnd_value(*imm)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
            },
        },
        Op::Store {
            addr,
            offset,
            value,
        } => match (addr, value) {
            (Opnd::Reg(a), Opnd::Reg(v)) => POp::StoreRR {
                addr: *a,
                offset: *offset,
                value: *v,
                private_ok,
            },
            (Opnd::Reg(a), imm) => POp::StoreRI {
                addr: *a,
                offset: *offset,
                value: opnd_value(*imm).expect("non-register value"),
                private_ok,
            },
            (imm, Opnd::Reg(v)) => POp::StoreAR {
                addr: opnd_value(*imm)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
                value: *v,
            },
            (a, v) => POp::StoreAI {
                addr: opnd_value(*a)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
                value: opnd_value(*v).expect("non-register value"),
            },
        },
        Op::Alloc { dst, words } => match words {
            Opnd::Reg(r) => POp::AllocR {
                dst: *dst,
                words: *r,
            },
            imm => POp::AllocI {
                dst: *dst,
                words: opnd_value(*imm).expect("non-register size").as_int(),
            },
        },
        Op::PrivateAlloc { dst, words } => match words {
            Opnd::Reg(r) => POp::PrivateAllocR {
                dst: *dst,
                words: *r,
            },
            imm => POp::PrivateAllocI {
                dst: *dst,
                words: opnd_value(*imm).expect("non-register size").as_int(),
            },
        },
        Op::Call { dst, func, args } => POp::CallB(Box::new(CallData {
            dst: *dst,
            func: *func,
            args: args.clone(),
        })),
        Op::Wait { dep } => POp::Wait { lane: *dep },
        Op::Signal { dep } => {
            if *dep == CONTROL_DEP {
                POp::SignalControl
            } else {
                POp::SignalLane { lane: *dep }
            }
        }
        Op::Jump { pc, block } => match *pc {
            PC_END_ITER => POp::EndIter,
            PC_EXIT => POp::ExitJump { block: *block },
            pc => POp::Jump { pc },
        },
        Op::Branch {
            cond,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => match cond {
            Opnd::Reg(r) => POp::Branch {
                cond: *r,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            },
            imm => {
                // Constant condition: the branch folds to its taken edge.
                let (pc, block) = if opnd_value(*imm).expect("constant").as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match pc {
                    PC_END_ITER => POp::EndIter,
                    PC_EXIT => POp::ExitJump { block },
                    pc => POp::Jump { pc },
                }
            }
        },
        Op::Ret { value } => match value {
            Some(Opnd::Reg(r)) => POp::RetR { src: *r },
            Some(imm) => POp::RetI {
                v: Some(opnd_value(*imm).expect("constant")),
            },
            None => POp::RetI { v: None },
        },
        Op::Trap { block } => POp::Trap { block: *block },
    }
}

// ---------------------------------------------------------------------------
// The lean engine.
// ---------------------------------------------------------------------------

/// A worker's memory stack: the shared tier plus its private arena.
pub(crate) trait Tier {
    /// Shared-memory access: a private-range address faults exactly as it would
    /// sequentially (`Memory::MAX_WORDS` is far below [`PRIVATE_BASE`]).
    fn load(&mut self, addr: i64) -> Result<Value, ExecError>;
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError>;
    /// Access from a statically-proven privatized site: private-range addresses route to
    /// the worker's arena, everything else to shared memory.
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError>;
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError>;
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError>;
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError>;
    /// Starts a new iteration: previous private allocations are dead.
    fn reset_arena(&mut self);
    /// Words served privately since the last drain (re-reserved in shared memory).
    fn drain_private_words(&mut self) -> u64;
    /// Declares whether the caller is provably the only thread touching shared memory
    /// (solo mode / sequential phases); exclusive tiers may elide locking. Default no-op
    /// for tiers that are always exclusive.
    fn set_exclusive(&mut self, _exclusive: bool) {}
}

/// Striped shared memory + per-worker arena: the tier of multi-threaded runs. While
/// `exclusive` is set (sequential phases and the primary's solo mode, where this thread
/// provably owns all of memory) shard locks are elided entirely.
pub(crate) struct SharedTier<'a> {
    pub shared: &'a ShardedMemory,
    pub arena: PrivateArena,
    pub exclusive: bool,
}

impl Tier for SharedTier<'_> {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        if self.exclusive {
            // SAFETY: `exclusive` is only set while this thread provably owns the memory
            // (before the claim protocol publishes / after the job join barrier).
            Ok(unsafe { self.shared.load_exclusive(addr) }?)
        } else {
            Ok(self.shared.load(addr)?)
        }
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if self.exclusive {
            // SAFETY: see `load`.
            Ok(unsafe { self.shared.store_exclusive(addr, value) }?)
        } else {
            Ok(self.shared.store(addr, value)?)
        }
    }

    #[inline]
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.load(addr)?)
        } else {
            self.load(addr)
        }
    }

    #[inline]
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.store(addr, value)?)
        } else {
            self.store(addr, value)
        }
    }

    #[inline]
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.shared.alloc(words)?)
    }

    #[inline]
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.arena.alloc(words)?)
    }

    fn reset_arena(&mut self) {
        self.arena.reset();
    }

    fn drain_private_words(&mut self) -> u64 {
        self.arena.drain_skipped_words()
    }

    fn set_exclusive(&mut self, exclusive: bool) {
        self.exclusive = exclusive;
    }
}

/// Plain sequential memory + arena: the tier of single-threaded runs, where no access ever
/// needs a lock.
pub(crate) struct LocalTier {
    pub memory: Memory,
    pub arena: PrivateArena,
}

impl Tier for LocalTier {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.memory.load(addr)?)
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        Ok(self.memory.store(addr, value)?)
    }

    #[inline]
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.load(addr)?)
        } else {
            Ok(self.memory.load(addr)?)
        }
    }

    #[inline]
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.store(addr, value)?)
        } else {
            Ok(self.memory.store(addr, value)?)
        }
    }

    #[inline]
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.memory.alloc(words)?)
    }

    #[inline]
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.arena.alloc(words)?)
    }

    fn reset_arena(&mut self) {
        self.arena.reset();
    }

    fn drain_private_words(&mut self) -> u64 {
        self.arena.drain_skipped_words()
    }
}

/// Evaluates a pre-resolved operand. Reads are unchecked like the instrumented engine's:
/// lowering widens the register file to cover every referenced index, and every caller sizes
/// `regs` to the function's `num_regs`.
#[inline(always)]
fn eval(regs: &[Value], o: Opnd) -> Value {
    match o {
        Opnd::Reg(r) => {
            debug_assert!((r as usize) < regs.len());
            unsafe { *regs.get_unchecked(r as usize) }
        }
        Opnd::Int(i) => Value::Int(i),
        Opnd::Float(f) => Value::Float(f),
    }
}

/// One suspended guest frame of [`run_flat`]'s explicit call stack.
struct LeanFrame {
    func: usize,
    pc: usize,
    regs: Vec<Value>,
    dst: Option<u32>,
}

/// How a [`run_flat`] execution ended.
pub(crate) enum FlatEnd {
    /// Control reached `stop_block` at the top level (Phase A arriving at the loop header).
    ReachedStop,
    /// The function returned.
    Returned(Option<Value>),
}

/// Errors of the lean engine's sequential paths.
pub(crate) enum FlatError {
    Exec(ExecError),
    /// The top-level block-transition budget ran out (a runaway loop outside the
    /// parallelized one).
    BudgetExceeded,
}

impl From<ExecError> for FlatError {
    fn from(e: ExecError) -> Self {
        FlatError::Exec(e)
    }
}

/// Runs whole-function bytecode leanly: Phase A (with `stop_block` = the loop header),
/// Phase C and callee invocations all go through here. `Wait`/`Signal` are no-ops (outside
/// iteration code they are either Phase-bound sync the sequential engine also ignores, or
/// generator noise), matching the sequential engine's treatment.
///
/// `budget` bounds top-level block transitions (the caller's runaway-loop guard); callee
/// blocks are unmetered, like the instrumented executor's phase stepping.
pub(crate) fn run_flat<T: Tier>(
    image: &ExecImage,
    func: FuncId,
    start_block: u32,
    stop_block: Option<u32>,
    regs: &mut Vec<Value>,
    tier: &mut T,
    budget: u64,
) -> Result<FlatEnd, FlatError> {
    let mut f = &image.funcs[func.index()];
    if regs.len() < f.num_regs {
        regs.resize(f.num_regs, Value::default());
    }
    if stop_block == Some(start_block) {
        return Ok(FlatEnd::ReachedStop);
    }
    let mut func_ix = func.index();
    let mut frames: Vec<LeanFrame> = Vec::new();
    let mut pc = f.block_start(start_block) as usize;
    let mut top_blocks = 0u64;
    let mut local_regs = std::mem::take(regs);
    let result = 'run: loop {
        let op = &f.code[pc];
        match op {
            Op::Mov { dst, src } => {
                local_regs[*dst as usize] = eval(&local_regs, *src);
                pc += 1;
            }
            Op::Un { dst, op, src } => {
                local_regs[*dst as usize] = eval_unop(*op, eval(&local_regs, *src));
                pc += 1;
            }
            Op::Bin { dst, op, lhs, rhs } => {
                local_regs[*dst as usize] =
                    eval_binop(*op, eval(&local_regs, *lhs), eval(&local_regs, *rhs));
                pc += 1;
            }
            Op::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                local_regs[*dst as usize] = Value::from_bool(eval_pred(
                    *pred,
                    eval(&local_regs, *lhs),
                    eval(&local_regs, *rhs),
                ));
                pc += 1;
            }
            Op::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let v = if eval(&local_regs, *cond).as_bool() {
                    eval(&local_regs, *on_true)
                } else {
                    eval(&local_regs, *on_false)
                };
                local_regs[*dst as usize] = v;
                pc += 1;
            }
            Op::Load { dst, addr, offset } => {
                let base = eval(&local_regs, *addr).as_int();
                match tier.load(base + offset) {
                    Ok(v) => local_regs[*dst as usize] = v,
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::Store {
                addr,
                offset,
                value,
            } => {
                let base = eval(&local_regs, *addr).as_int();
                let v = eval(&local_regs, *value);
                if let Err(e) = tier.store(base + offset, v) {
                    break 'run Err(FlatError::Exec(e));
                }
                pc += 1;
            }
            Op::Alloc { dst, words } => {
                let n = eval(&local_regs, *words).as_int().max(0) as usize;
                match tier.alloc(n) {
                    Ok(base) => local_regs[*dst as usize] = Value::Int(base),
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::PrivateAlloc { dst, words } => {
                let n = eval(&local_regs, *words).as_int().max(0) as usize;
                match tier.alloc_private(n) {
                    Ok(base) => local_regs[*dst as usize] = Value::Int(base),
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::Wait { .. } | Op::Signal { .. } => pc += 1,
            Op::Call {
                dst,
                func: callee,
                args,
            } => {
                if frames.len() + 1 > MAX_CALL_DEPTH {
                    break 'run Err(FlatError::Exec(ExecError::StackOverflow));
                }
                let callee_ix = *callee as usize;
                let cf = &image.funcs[callee_ix];
                let mut callee_regs = vec![Value::default(); cf.num_regs.max(args.len())];
                for (slot, a) in callee_regs.iter_mut().zip(args.iter()).take(cf.num_params) {
                    *slot = eval(&local_regs, *a);
                }
                frames.push(LeanFrame {
                    func: func_ix,
                    pc,
                    regs: std::mem::replace(&mut local_regs, callee_regs),
                    dst: *dst,
                });
                func_ix = callee_ix;
                f = &image.funcs[func_ix];
                pc = f.block_start(f.entry_block) as usize;
            }
            Op::Jump { pc: target, block } => {
                if frames.is_empty() {
                    if stop_block == Some(*block) {
                        break 'run Ok(FlatEnd::ReachedStop);
                    }
                    top_blocks += 1;
                    if top_blocks > budget {
                        break 'run Err(FlatError::BudgetExceeded);
                    }
                }
                pc = *target as usize;
            }
            Op::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let (target, block) = if eval(&local_regs, *cond).as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                if frames.is_empty() {
                    if stop_block == Some(block) {
                        break 'run Ok(FlatEnd::ReachedStop);
                    }
                    top_blocks += 1;
                    if top_blocks > budget {
                        break 'run Err(FlatError::BudgetExceeded);
                    }
                }
                pc = target as usize;
            }
            Op::Ret { value } => {
                let v = value.map(|v| eval(&local_regs, v));
                match frames.pop() {
                    None => break 'run Ok(FlatEnd::Returned(v)),
                    Some(frame) => {
                        func_ix = frame.func;
                        f = &image.funcs[func_ix];
                        local_regs = frame.regs;
                        pc = frame.pc;
                        if let Some(d) = frame.dst {
                            local_regs[d as usize] = v.unwrap_or_default();
                        }
                        pc += 1;
                    }
                }
            }
            Op::Trap { block } => {
                break 'run Err(FlatError::Exec(ExecError::MissingTerminator(BlockId::new(
                    *block,
                ))));
            }
        }
    };
    // Hand the (possibly callee-stale) top-level register file back to the caller: unwind to
    // the bottom frame if the run ended inside a callee.
    if let Some(bottom) = frames.into_iter().next() {
        local_regs = bottom.regs;
    }
    *regs = local_regs;
    result
}

/// How one iteration ended.
pub(crate) enum IterEnd {
    /// The back edge was taken: the iteration completed and the loop continues.
    Completed,
    /// An exit edge was taken towards `block` (dense index in the clone function).
    Exit {
        /// Phase C resume block.
        block: u32,
    },
    /// A `ret` inside the loop ended the whole function.
    Returned(Option<Value>),
    /// An earlier iteration exited while this one was blocked: its work is moot.
    Cancelled,
}

/// Errors of the iteration runner.
pub(crate) enum IterError {
    Exec(ExecError),
    /// A `Wait` outlived the spin budget.
    Deadlock {
        /// The lane being waited on.
        lane: u32,
        /// pc of the blocked `Wait` in [`LoopImage::code`].
        pc: u32,
        /// Last counter value observed.
        observed: u64,
    },
}

impl From<ExecError> for IterError {
    fn from(e: ExecError) -> Self {
        IterError::Exec(e)
    }
}

/// Shared synchronization handles the iteration runner needs.
pub(crate) struct IterSync<'a> {
    pub lanes: &'a SignalLanes,
    pub sleepers: &'a Sleepers,
    /// Lowest iteration that took a loop exit (`u64::MAX` while the loop runs).
    pub exited_at: &'a AtomicU64,
    /// Spin rounds a blocked `Wait` may burn before it is declared deadlocked.
    pub spin_budget: u64,
    /// Backoff shape of this run's wait sites.
    pub profile: WaitProfile,
}

/// Executes one iteration of the lowered loop. `regs` must already hold the loop-entry
/// snapshot with induction variables privatized for `iteration`; `on_control` is invoked
/// when the iteration's prologue completes (at most once per iteration from inside the code;
/// the caller must also release control when the iteration completes without entering the
/// body).
pub(crate) fn run_iteration<T: Tier>(
    image: &ExecImage,
    loop_image: &LoopImage,
    iteration: u64,
    regs: &mut [Value],
    tier: &mut T,
    sync: &IterSync<'_>,
    on_control: &mut dyn FnMut(),
) -> Result<IterEnd, IterError> {
    let code = &loop_image.pcode[..];
    let mut pc = loop_image.entry_pc as usize;
    // Reads are unchecked (see `eval`); writes go through `set`, also unchecked: every dst
    // register index was widened into the function's register file at lowering time.
    #[inline(always)]
    fn get(regs: &[Value], r: u32) -> Value {
        debug_assert!((r as usize) < regs.len());
        unsafe { *regs.get_unchecked(r as usize) }
    }
    #[inline(always)]
    fn set(regs: &mut [Value], r: u32, v: Value) {
        debug_assert!((r as usize) < regs.len());
        unsafe {
            *regs.get_unchecked_mut(r as usize) = v;
        }
    }
    loop {
        match &code[pc] {
            POp::MovR { dst, src } => {
                set(regs, *dst, get(regs, *src));
                pc += 1;
            }
            POp::MovI { dst, v } => {
                set(regs, *dst, *v);
                pc += 1;
            }
            POp::UnR { dst, op, src } => {
                set(regs, *dst, eval_unop(*op, get(regs, *src)));
                pc += 1;
            }
            POp::BinRR { dst, op, lhs, rhs } => {
                set(
                    regs,
                    *dst,
                    eval_binop(*op, get(regs, *lhs), get(regs, *rhs)),
                );
                pc += 1;
            }
            POp::BinRI { dst, op, lhs, rhs } => {
                set(regs, *dst, eval_binop(*op, get(regs, *lhs), *rhs));
                pc += 1;
            }
            POp::BinIR { dst, op, lhs, rhs } => {
                set(regs, *dst, eval_binop(*op, *lhs, get(regs, *rhs)));
                pc += 1;
            }
            POp::CmpRR {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, get(regs, *lhs), get(regs, *rhs))),
                );
                pc += 1;
            }
            POp::CmpRI {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, get(regs, *lhs), *rhs)),
                );
                pc += 1;
            }
            POp::CmpIR {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, *lhs, get(regs, *rhs))),
                );
                pc += 1;
            }
            POp::SelectB(data) => {
                let v = if eval(regs, data.cond).as_bool() {
                    eval(regs, data.on_true)
                } else {
                    eval(regs, data.on_false)
                };
                set(regs, data.dst, v);
                pc += 1;
            }
            POp::LoadR {
                dst,
                addr,
                offset,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                let v = if *private_ok {
                    tier.load_private(a)?
                } else {
                    tier.load(a)?
                };
                set(regs, *dst, v);
                pc += 1;
            }
            POp::LoadA { dst, addr } => {
                set(regs, *dst, tier.load(*addr)?);
                pc += 1;
            }
            POp::StoreRR {
                addr,
                offset,
                value,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                let v = get(regs, *value);
                if *private_ok {
                    tier.store_private(a, v)?;
                } else {
                    tier.store(a, v)?;
                }
                pc += 1;
            }
            POp::StoreRI {
                addr,
                offset,
                value,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                if *private_ok {
                    tier.store_private(a, *value)?;
                } else {
                    tier.store(a, *value)?;
                }
                pc += 1;
            }
            POp::StoreAR { addr, value } => {
                tier.store(*addr, get(regs, *value))?;
                pc += 1;
            }
            POp::StoreAI { addr, value } => {
                tier.store(*addr, *value)?;
                pc += 1;
            }
            POp::AllocR { dst, words } => {
                let n = get(regs, *words).as_int().max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc(n)?));
                pc += 1;
            }
            POp::AllocI { dst, words } => {
                let n = (*words).max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc(n)?));
                pc += 1;
            }
            POp::PrivateAllocR { dst, words } => {
                let n = get(regs, *words).as_int().max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc_private(n)?));
                pc += 1;
            }
            POp::PrivateAllocI { dst, words } => {
                let n = (*words).max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc_private(n)?));
                pc += 1;
            }
            POp::Wait { lane } => {
                let lane_ix = *lane as usize;
                if !sync.lanes.poll(lane_ix, iteration) {
                    let mut backoff = AdaptiveWait::with_profile(sync.sleepers, sync.profile);
                    let mut polls = 0u64;
                    loop {
                        if sync.lanes.poll(lane_ix, iteration) {
                            break;
                        }
                        let charged = backoff.wait();
                        polls += 1;
                        if polls & 0x3F == 0 && sync.exited_at.load(Ordering::Acquire) < iteration {
                            return Ok(IterEnd::Cancelled);
                        }
                        if charged > sync.spin_budget {
                            return Err(IterError::Deadlock {
                                lane: *lane,
                                pc: pc as u32,
                                observed: sync.lanes.observed(lane_ix, iteration),
                            });
                        }
                    }
                }
                pc += 1;
            }
            POp::SignalLane { lane } => {
                sync.lanes.signal(*lane as usize, iteration);
                sync.sleepers.wake_all();
                pc += 1;
            }
            POp::SignalControl => {
                on_control();
                pc += 1;
            }
            POp::CallB(call) => {
                let actuals: Vec<Value> = call.args.iter().map(|a| eval(regs, *a)).collect();
                let mut callee_regs: Vec<Value> = Vec::new();
                prepare_callee_regs(image, call.func, &actuals, &mut callee_regs);
                let end = run_flat(
                    image,
                    FuncId::new(call.func),
                    image.funcs[call.func as usize].entry_block,
                    None,
                    &mut callee_regs,
                    tier,
                    u64::MAX,
                )
                .map_err(|e| match e {
                    FlatError::Exec(e) => IterError::Exec(e),
                    FlatError::BudgetExceeded => unreachable!("callees are unmetered"),
                })?;
                let v = match end {
                    FlatEnd::Returned(v) => v,
                    FlatEnd::ReachedStop => unreachable!("no stop block in callee runs"),
                };
                if let Some(d) = call.dst {
                    set(regs, d, v.unwrap_or_default());
                }
                pc += 1;
            }
            POp::Jump { pc: target } => pc = *target as usize,
            POp::EndIter => return Ok(IterEnd::Completed),
            POp::ExitJump { block } => return Ok(IterEnd::Exit { block: *block }),
            POp::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let (target, block) = if get(regs, *cond).as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
            POp::RetR { src } => return Ok(IterEnd::Returned(Some(get(regs, *src)))),
            POp::RetI { v } => return Ok(IterEnd::Returned(*v)),
            POp::Trap { block } => {
                return Err(IterError::Exec(ExecError::MissingTerminator(BlockId::new(
                    *block,
                ))));
            }
            POp::BinChainII {
                mid,
                op1,
                lhs,
                imm1,
                dst,
                op2,
                imm2,
            } => {
                let m = eval_binop(*op1, get(regs, *lhs), *imm1);
                set(regs, *mid, m);
                set(regs, *dst, eval_binop(*op2, m, *imm2));
                pc += 2;
            }
            POp::BinChainRI {
                mid,
                op1,
                lhs,
                rhs,
                dst,
                op2,
                imm2,
            } => {
                let m = eval_binop(*op1, get(regs, *lhs), get(regs, *rhs));
                set(regs, *mid, m);
                set(regs, *dst, eval_binop(*op2, m, *imm2));
                pc += 2;
            }
            POp::CmpBrRI {
                dst,
                pred,
                lhs,
                imm,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let taken = eval_pred(*pred, get(regs, *lhs), *imm);
                set(regs, *dst, Value::from_bool(taken));
                let (target, block) = if taken {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
            POp::CmpBrRR {
                dst,
                pred,
                lhs,
                rhs,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let taken = eval_pred(*pred, get(regs, *lhs), get(regs, *rhs));
                set(regs, *dst, Value::from_bool(taken));
                let (target, block) = if taken {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
        }
    }
}

/// Sizes and seeds a callee register file inside `storage` for [`run_flat`].
fn prepare_callee_regs(image: &ExecImage, callee: u32, args: &[Value], storage: &mut Vec<Value>) {
    let cf = &image.funcs[callee as usize];
    storage.resize(cf.num_regs.max(args.len()), Value::default());
    for (slot, a) in storage.iter_mut().zip(args.iter()).take(cf.num_params) {
        *slot = *a;
    }
}
