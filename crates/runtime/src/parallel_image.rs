//! The [`ParallelImage`]: a [`TransformedProgram`] lowered once into an execution-ready form
//! the parallel runtime dispatches directly.
//!
//! The first-generation executor block-stepped the generic [`helix_ir::ImageEvaluator`]
//! through the loop, re-deriving everything per block per iteration: set-membership tests
//! ("is this block still in the loop?", "did we just leave the prologue?") on `BTreeSet`s,
//! sync-point resolution through a modulo over a dense counter array, plus the engine's own
//! fuel/statistics/cost accounting on every op. [`LoopImage::build`] does all of that
//! *once*, at lowering time:
//!
//! * the loop's blocks (prologue + body) are re-laid-out into one contiguous op stream
//!   ([`LoopImage::code`]) with internal branch targets pre-resolved to program counters;
//! * the loop's edges are classified at lowering time: the back edge becomes a jump to the
//!   [`PC_END_ITER`] sentinel, every exit edge a jump to [`PC_EXIT`] (carrying the dense
//!   index of the Phase C resume block), so the hot loop never consults a block set;
//! * `Wait`/`Signal` ops are renumbered from [`DepId`]s to dense *lane* indices into the
//!   padded [`crate::lanes::SignalLanes`] array, with a per-segment side table
//!   ([`LoopImage::lanes`]) recording the owning segment and its flat pc range (used for
//!   precise deadlock reports and for the simulator's per-segment cost model);
//! * the prologue→body transition is materialized as an explicit control-release op
//!   (a `Signal` on the reserved [`CONTROL_DEP`] lane) at the entry of every body block
//!   reachable from the prologue, so "release the next iteration" is ordinary dispatch;
//! * `Alloc` sites the privatization analysis proved iteration-private become
//!   [`Op::PrivateAlloc`], served from the per-worker [`crate::sharded::PrivateArena`].
//!
//! The same module hosts the *lean engine*: a minimal interpreter over the lowered ops with
//! no fuel, no statistics, no observers and no cycle charging — the production dispatch loop
//! of the runtime, as opposed to the instrumented engine used for profiling. Its semantics
//! (value evaluation, memory faults, call depth, missing terminators) are identical to
//! [`helix_ir::ImageEvaluator`]; only the accounting is gone.

use crate::lanes::SignalLanes;
use crate::pool::{AdaptiveWait, Sleepers, WaitProfile};
use crate::sharded::{PrivateArena, ShardedMemory, PRIVATE_BASE};
use helix_core::TransformedProgram;
use helix_ir::interp::{eval_binop, eval_pred, eval_unop, ExecError, MAX_CALL_DEPTH};
use helix_ir::lower::{cost_table, CostClass};
use helix_ir::{
    BinOp, BlockId, CostModel, DepId, ExecImage, FuncId, InstrRef, Memory, Op, Opnd, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved lane index of the iteration-control dependence (the prologue-ordering chain).
pub const CONTROL_DEP: u32 = u32::MAX;

/// Sentinel pc: the back edge — the iteration completed.
pub const PC_END_ITER: u32 = u32::MAX;

/// Sentinel pc: an exit edge — the loop is over; the op's `block` field names the Phase C
/// resume block.
pub const PC_EXIT: u32 = u32::MAX - 1;

/// One synchronized sequential segment in lowered form.
#[derive(Clone, Debug)]
pub struct SegmentLane {
    /// The dependence this lane synchronizes.
    pub dep: DepId,
    /// Index of the segment in the plan's segment list.
    pub segment: usize,
    /// First pc of the segment's flat bytecode range (its earliest `Wait`).
    pub first_pc: u32,
    /// Last pc of the segment's flat bytecode range (its latest `Signal`).
    pub last_pc: u32,
}

impl SegmentLane {
    /// The `[first, last]` pc span of the segment in [`LoopImage::code`].
    pub fn pc_range(&self) -> (u32, u32) {
        (self.first_pc, self.last_pc)
    }
}

/// The loop portion of a [`ParallelImage`]: one iteration's flat bytecode plus side tables.
#[derive(Clone, Debug)]
pub struct LoopImage {
    /// The parallel clone function the loop lives in.
    pub func: FuncId,
    /// Dense index of the loop header block.
    pub header: u32,
    /// pc of the header's first op in [`LoopImage::code`]: where every iteration starts.
    pub entry_pc: u32,
    /// The iteration op stream in the module's generic encoding (diagnostics, segment cost
    /// model); the engine dispatches the specialized [`LoopImage::pcode`] stream instead.
    pub code: Vec<Op>,
    /// The specialized iteration op stream, parallel to `code` (same pcs): operands are
    /// pre-decoded into register/immediate variants, constants folded, global addresses
    /// fused into absolute load/store forms — the dispatch the workers actually run.
    pub(crate) pcode: Vec<POp>,
    /// Registers that must be reset to the loop-entry snapshot before each iteration,
    /// sorted. A register needs a reset only if some iteration op *reads* it before any
    /// definition in its own block (it may observe a stale previous-iteration value) *and*
    /// some iteration op writes it (otherwise it still holds the snapshot value). Every
    /// cross-iteration register flow the program's semantics rely on was demoted to the
    /// synchronized frame by Step 7, so this set exists purely to keep stale worker-local
    /// register files deterministic — and is typically tiny, which is the point: the
    /// first-generation executor cloned the whole register file per iteration.
    pub restore_regs: Vec<u32>,
    /// The clone-function instruction each op came from, parallel to `code` (synthesized
    /// control-release ops map to their block's first instruction).
    pub pc_to_ref: Vec<InstrRef>,
    /// Source block (dense index) of each op, parallel to `code`.
    pub pc_block: Vec<u32>,
    /// One entry per *logical* signal lane (synchronized dependence), indexed by the lane
    /// number carried by `Wait`/`Signal` ops in [`LoopImage::code`].
    pub lanes: Vec<SegmentLane>,
    /// Physical lane row of each logical lane. Lanes whose signal ops always appear in the
    /// same adjacent runs are *coalesced* onto one physical row: between two adjacent
    /// signals nothing executes, so publishing them through one counter is observationally
    /// identical — and each synchronized segment then pays one cross-thread store (and one
    /// waker wake) per iteration instead of k. The specialized [`LoopImage::pcode`] stream
    /// carries physical lanes; `code` keeps logical ones for diagnostics.
    pub phys_of: Vec<u32>,
    /// Number of physical lane rows (`<= lanes.len()`).
    pub num_phys: usize,
    /// Privatized basic induction variables `(register, step)`: each worker recomputes them
    /// from the iteration number instead of synchronizing them.
    pub induction_vars: Vec<(u32, i64)>,
    /// Static words allocated privately per iteration (0 when privatization does not apply).
    pub private_words_per_iter: u64,
    /// Pre-existing (generator-noise) sync ops dropped during lowering: they are no-ops
    /// sequentially and correspond to no synchronized segment.
    pub dropped_sync_ops: usize,
}

impl LoopImage {
    /// Lowers the parallelized loop of `program` (already lowered to `image`) into its
    /// iteration bytecode. See the module docs for the rewrites performed.
    pub fn build(image: &ExecImage, program: &TransformedProgram) -> LoopImage {
        Self::build_with_fusion(image, program, true)
    }

    /// [`LoopImage::build`] with superinstruction fusion and signal coalescing made
    /// optional: `fuse = false` produces the plain one-op-per-dispatch image (identity
    /// physical lane mapping), the reference the differential tests compare fused
    /// execution against.
    pub fn build_with_fusion(
        image: &ExecImage,
        program: &TransformedProgram,
        fuse: bool,
    ) -> LoopImage {
        let plan = &program.plan;
        let fi = image.func(program.parallel_func);
        let header: u32 = plan.header.0;
        let prologue: BTreeSet<u32> = plan.prologue_blocks.iter().map(|b| b.0).collect();
        let body: BTreeSet<u32> = plan.body_blocks.iter().map(|b| b.0).collect();
        let loop_blocks: Vec<u32> = prologue.iter().chain(body.iter()).copied().collect();
        let in_loop: BTreeSet<u32> = loop_blocks.iter().copied().collect();

        // Dense lanes for the synchronized dependences, in segment order.
        let mut lane_of: BTreeMap<u32, u32> = BTreeMap::new();
        let mut lanes: Vec<SegmentLane> = Vec::new();
        for (index, seg) in plan.segments.iter().enumerate() {
            if seg.synchronized && !lane_of.contains_key(&seg.dep.0) {
                lane_of.insert(seg.dep.0, lanes.len() as u32);
                lanes.push(SegmentLane {
                    dep: seg.dep,
                    segment: index,
                    first_pc: u32::MAX,
                    last_pc: 0,
                });
            }
        }

        // Body blocks entered from the prologue get an explicit control-release op: reaching
        // one proves this iteration's prologue completed and decided to continue.
        let mut release_at: BTreeSet<u32> = BTreeSet::new();
        for &b in &prologue {
            for op in fi.block_code(b) {
                let mut target = |block: u32| {
                    if body.contains(&block) {
                        release_at.insert(block);
                    }
                };
                match op {
                    Op::Jump { block, .. } => target(*block),
                    Op::Branch {
                        then_block,
                        else_block,
                        ..
                    } => {
                        target(*then_block);
                        target(*else_block);
                    }
                    _ => {}
                }
            }
        }

        // Emit, recording each loop block's start pc; branch pcs are patched afterwards.
        let mut code: Vec<Op> = Vec::new();
        let mut pc_to_ref: Vec<InstrRef> = Vec::new();
        let mut pc_block: Vec<u32> = Vec::new();
        let mut start_of: BTreeMap<u32, u32> = BTreeMap::new();
        let mut dropped_sync_ops = 0usize;
        for &b in &loop_blocks {
            start_of.insert(b, code.len() as u32);
            let refs = fi.block_refs(b);
            if release_at.contains(&b) {
                code.push(Op::Signal { dep: CONTROL_DEP });
                pc_to_ref.push(
                    refs.first()
                        .copied()
                        .unwrap_or(InstrRef::new(BlockId::new(b), 0)),
                );
                pc_block.push(b);
            }
            for (op, r) in fi.block_code(b).iter().zip(refs) {
                let lowered = match op {
                    Op::Wait { dep } => match lane_of.get(dep) {
                        Some(lane) => {
                            let pc = code.len() as u32;
                            lanes[*lane as usize].first_pc = lanes[*lane as usize].first_pc.min(pc);
                            lanes[*lane as usize].last_pc = lanes[*lane as usize].last_pc.max(pc);
                            Op::Wait { dep: *lane }
                        }
                        None => {
                            dropped_sync_ops += 1;
                            continue;
                        }
                    },
                    Op::Signal { dep } => match lane_of.get(dep) {
                        Some(lane) => {
                            let pc = code.len() as u32;
                            lanes[*lane as usize].first_pc = lanes[*lane as usize].first_pc.min(pc);
                            lanes[*lane as usize].last_pc = lanes[*lane as usize].last_pc.max(pc);
                            Op::Signal { dep: *lane }
                        }
                        None => {
                            dropped_sync_ops += 1;
                            continue;
                        }
                    },
                    Op::Alloc { dst, words } if program.private_allocs.contains(r) => {
                        Op::PrivateAlloc {
                            dst: *dst,
                            words: *words,
                        }
                    }
                    other => other.clone(),
                };
                code.push(lowered);
                pc_to_ref.push(*r);
                pc_block.push(b);
            }
        }

        // Patch branch targets: internal edges get their lowered pc, the back edge and exit
        // edges get their sentinels (the `block` field keeps the original dense block index,
        // which Phase C needs for exits).
        let resolve = |block: u32| -> u32 {
            if block == header {
                PC_END_ITER
            } else if in_loop.contains(&block) {
                start_of[&block]
            } else {
                PC_EXIT
            }
        };
        for op in &mut code {
            match op {
                Op::Jump { pc, block } => *pc = resolve(*block),
                Op::Branch {
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                    ..
                } => {
                    *then_pc = resolve(*then_block);
                    *else_pc = resolve(*else_block);
                }
                _ => {}
            }
        }

        let private_words_per_iter = code
            .iter()
            .filter_map(|op| match op {
                Op::PrivateAlloc {
                    words: Opnd::Int(w),
                    ..
                } => Some((*w).max(0) as u64),
                _ => None,
            })
            .sum();
        let induction_vars: Vec<(u32, i64)> = plan
            .induction_vars
            .iter()
            .map(|(v, step)| (v.0, *step))
            .collect();
        let mut pcode: Vec<POp> = code
            .iter()
            .zip(&pc_to_ref)
            .map(|(op, r)| specialize_op(op, program.private_accesses.contains(r)))
            .collect();

        // Signal coalescing. A *run* is a maximal sequence of adjacent non-control Signal
        // ops within one block; nothing executes between the ops of a run, so all of its
        // publications are observationally simultaneous. Two logical lanes whose signals
        // appear in exactly the same runs can therefore share one physical counter, and
        // each run collapses to a single multi-publish dispatch with one wake.
        let runs = signal_runs(&code, &pc_block);
        let (phys_of, num_phys) = if fuse {
            coalesce_lanes(&code, &runs, lanes.len())
        } else {
            ((0..lanes.len() as u32).collect(), lanes.len())
        };
        for p in pcode.iter_mut() {
            match p {
                POp::Wait { lane } | POp::SignalLane { lane } => {
                    *lane = phys_of[*lane as usize];
                }
                _ => {}
            }
        }
        if fuse {
            for (start, end) in &runs {
                if end - start >= 2 {
                    let mut distinct: Vec<u32> = Vec::new();
                    for p in &pcode[*start..*end] {
                        if let POp::SignalLane { lane } = p {
                            if !distinct.contains(lane) {
                                distinct.push(*lane);
                            }
                        }
                    }
                    pcode[*start] = POp::SignalMulti {
                        lanes: distinct.into_boxed_slice(),
                        width: (end - start) as u32,
                    };
                }
            }
            fuse_superinstructions(&mut pcode, &pc_block);
        }
        let restore_regs = compute_restore_regs(&code, &pc_block, &induction_vars, fi.num_regs);
        LoopImage {
            func: program.parallel_func,
            header,
            entry_pc: start_of[&header],
            code,
            pcode,
            restore_regs,
            pc_to_ref,
            pc_block,
            lanes,
            phys_of,
            num_phys,
            induction_vars,
            private_words_per_iter,
            dropped_sync_ops,
        }
    }

    /// Debug summary of fused superinstruction counts (diagnostics/examples only).
    pub fn fusion_summary(&self) -> String {
        let mut c2 = 0;
        let mut c3 = 0;
        let mut c3f = 0;
        let mut cri = 0;
        let mut lab = 0;
        let mut bsa = 0;
        let mut sidx = 0;
        let mut rmw = 0;
        let mut rmwr = 0;
        let mut cmpbr = 0;
        let mut smulti = 0;
        for p in &self.pcode {
            match p {
                POp::BinChainII { .. } => c2 += 1,
                POp::BinChain3II { .. } => c3 += 1,
                POp::BinChain3FF { .. } => c3f += 1,
                POp::BinChainRI { .. } => cri += 1,
                POp::LoadABin { .. } => lab += 1,
                POp::BinStoreA { .. } => bsa += 1,
                POp::StoreIdx { .. } => sidx += 1,
                POp::RmwA { .. } => rmw += 1,
                POp::RmwR { .. } => rmwr += 1,
                POp::CmpBrRI { .. } | POp::CmpBrRR { .. } => cmpbr += 1,
                POp::SignalMulti { .. } => smulti += 1,
                _ => {}
            }
        }
        format!(
            "chain2 {c2} chain3 {c3} chain3f {c3f} chainRI {cri} loadbin {lab} binstore {bsa}              storeidx {sidx} rmw {rmw} rmwr {rmwr} cmpbr {cmpbr} sigmulti {smulti} / {} ops",
            self.pcode.len()
        )
    }

    /// Number of physical signal-lane rows the runtime must allocate (after coalescing).
    pub fn num_phys_lanes(&self) -> usize {
        self.num_phys.max(1)
    }

    /// Number of signal lanes (synchronized dependences).
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane a `Wait`/`Signal` op at `pc` targets, if any.
    pub fn lane_at(&self, pc: u32) -> Option<&SegmentLane> {
        match self.code.get(pc as usize) {
            Some(Op::Wait { dep }) | Some(Op::Signal { dep }) if *dep != CONTROL_DEP => {
                self.lanes.get(*dep as usize)
            }
            _ => None,
        }
    }

    /// Static cycle estimate of each segment's flat pc span, walking the *specialized*
    /// dispatch stream the workers actually run: the cycles a worker spends between
    /// entering the segment's first `Wait` and leaving its last `Signal`, assuming every
    /// dispatch in the span executes once. A fused superinstruction window is charged its
    /// constituent ops' class costs minus one ALU-class dispatch per eliminated slot
    /// (floored at the heaviest constituent) — so fusion makes the measured per-segment
    /// cost genuinely smaller, and the feedback-directed selection sees it. The simulator
    /// uses these as its per-segment costs when no profile-weighted estimate is available
    /// (and to cross-check the profile-weighted ones).
    pub fn segment_span_cycles(&self, cost: &CostModel) -> Vec<(DepId, u64)> {
        let table = cost_table(cost);
        let class_cost = |pc: usize| table[cost_class_of_op(&self.code[pc]) as usize];
        self.lanes
            .iter()
            .map(|lane| {
                let mut cycles = 0u64;
                if lane.first_pc <= lane.last_pc {
                    let last = lane.last_pc as usize;
                    let mut pc = lane.first_pc as usize;
                    while pc <= last {
                        let width = self.pcode[pc].fused_width().max(1);
                        let end = (pc + width).min(last + 1);
                        let sum: u64 = (pc..end).map(class_cost).sum();
                        let heaviest = (pc..end).map(class_cost).max().unwrap_or(0);
                        let saved = table[CostClass::Alu as usize] * (end - pc - 1) as u64;
                        cycles += sum.saturating_sub(saved).max(heaviest);
                        pc = end;
                    }
                }
                (lane.dep, cycles)
            })
            .collect()
    }
}

/// The maximal runs of adjacent non-control `Signal` ops (same block), as `[start, end)`
/// pc ranges. Length-1 runs are included so every lane belongs to at least one run.
fn signal_runs(code: &[Op], pc_block: &[u32]) -> Vec<(usize, usize)> {
    let is_signal = |pc: usize| matches!(&code[pc], Op::Signal { dep } if *dep != CONTROL_DEP);
    let mut runs = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        if is_signal(pc) {
            let start = pc;
            while pc < code.len() && pc_block[pc] == pc_block[start] && is_signal(pc) {
                pc += 1;
            }
            runs.push((start, pc));
        } else {
            pc += 1;
        }
    }
    runs
}

/// Groups logical lanes into physical rows: lanes whose signal ops appear in exactly the
/// same set of runs share a row (see [`LoopImage::phys_of`] for the soundness argument).
/// A lane with no signal at all keeps a private row — it would merge with nothing
/// meaningfully, and sharing could mask its missing-signal deadlock.
fn coalesce_lanes(code: &[Op], runs: &[(usize, usize)], num_logical: usize) -> (Vec<u32>, usize) {
    let mut run_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); num_logical];
    for (rid, (start, end)) in runs.iter().enumerate() {
        for op in &code[*start..*end] {
            if let Op::Signal { dep } = op {
                if *dep != CONTROL_DEP {
                    run_sets[*dep as usize].insert(rid);
                }
            }
        }
    }
    let mut phys_of: Vec<u32> = vec![0; num_logical];
    let mut class_of: BTreeMap<Vec<usize>, u32> = BTreeMap::new();
    let mut num_phys = 0u32;
    for (lane, set) in run_sets.iter().enumerate() {
        if set.is_empty() {
            phys_of[lane] = num_phys;
            num_phys += 1;
            continue;
        }
        let key: Vec<usize> = set.iter().copied().collect();
        let phys = *class_of.entry(key).or_insert_with(|| {
            let p = num_phys;
            num_phys += 1;
            p
        });
        phys_of[lane] = phys;
    }
    (phys_of, num_phys as usize)
}

/// Superinstruction fusion over the specialized stream: value-producing ops whose results
/// feed the immediately following op(s) collapse into one dispatch. Only the *head* slot of
/// a fused window is rewritten; every interior slot keeps its original op, so control flow
/// that jumps into the middle of a window (or re-enters a block mid-way) executes
/// identically — straight-line execution dispatches the head once and skips the window.
/// Fusion never crosses a block boundary, and never crosses a segment's `Wait`/`Signal`
/// boundary ops (they are not fusable, so no window can contain one).
///
/// Every fused form is a fully *specialized inline* variant — pre-decoded operands, no
/// per-step operand dispatch, no heap indirection. (An earlier generalization that boxed
/// variable-length chains and matched operand kinds per step measured *slower* than no
/// fusion at all: the interpreter's per-dispatch cost is one well-predicted indirect jump,
/// so a superinstruction only wins if its body is as straight-line as the ops it replaces.)
///
/// Patterns, tried in priority order at each pc (windows do not overlap):
///
/// 1. **RMW** `load-abs; bin; store-abs` (width 3) — the canonical synchronized-segment
///    body (`acc = acc ⊕ x`): one dispatch for the whole read-modify-write — and its
///    register-addressed twin `load (addr+off); bin; store (addr+off)` (the
///    pointer-walking accumulation), guarded so the window provably cannot modify the
///    address register.
/// 2. **Immediate chains** (width 3 then 2) — runs of `dst = prev op imm` ops, the ALU
///    round shape of hash/blend kernels (all-int *and* all-float triples), plus the
///    `RR;RI` pair.
/// 3. **load+op** (width 2) — an absolute load feeding the next binary op.
/// 4. **op+store** (width 2) — a binary op whose result the next op stores to an absolute
///    address, and the array-store idiom `slot = base + index; store slot <- value`.
/// 5. **compare+branch** (width 2) — the loop-latch idiom.
fn fuse_superinstructions(pcode: &mut [POp], pc_block: &[u32]) {
    let len = pcode.len();
    let mut pc = 0usize;
    while pc < len {
        let width = fuse_at(pcode, pc_block, pc);
        pc += width.max(1);
    }
}

/// How a `BinRR` consumes register `prev`: `(other_register, prev_on_lhs)`.
fn rr_consumes(p: &POp, prev: u32) -> Option<(BinOp, u32, bool, u32)> {
    match p {
        POp::BinRR { dst, op, lhs, rhs } if *lhs == prev => Some((*op, *rhs, true, *dst)),
        POp::BinRR { dst, op, lhs, rhs } if *rhs == prev => Some((*op, *lhs, false, *dst)),
        _ => None,
    }
}

/// Attempts to fuse a superinstruction window starting at `pc`; rewrites the head slot and
/// returns the window width (1 when nothing fused).
fn fuse_at(pcode: &mut [POp], pc_block: &[u32], pc: usize) -> usize {
    let len = pcode.len();
    let same_block = |k: usize| k < len && pc_block[k] == pc_block[pc];

    // 1. RMW: absolute load; RR bin consuming it; absolute store of the bin's result.
    if same_block(pc + 2) {
        if let POp::LoadA {
            dst: ld,
            addr: laddr,
        } = pcode[pc]
        {
            if let Some((op, other, ld_on_lhs, dst)) = rr_consumes(&pcode[pc + 1], ld) {
                if let POp::StoreAR { addr: saddr, value } = pcode[pc + 2] {
                    if value == dst {
                        pcode[pc] = POp::RmwA {
                            laddr,
                            ld,
                            op,
                            other,
                            ld_on_lhs,
                            dst,
                            saddr,
                        };
                        return 3;
                    }
                }
            }
        }
    }

    // 1b. Register-addressed RMW: `ld = load (addr+off); bin consuming ld; store
    // (addr+off) <- dst` — the pointer-walking accumulation. The fused body computes the
    // address once, which is only sound when neither write of the window can touch the
    // address register (`ld != addr && dst != addr`) and load and store agree on the
    // offset and privatization route.
    if same_block(pc + 2) {
        if let POp::LoadR {
            dst: ld,
            addr,
            offset,
            private_ok,
        } = pcode[pc]
        {
            if let Some((op, other, ld_on_lhs, dst)) = rr_consumes(&pcode[pc + 1], ld) {
                if let POp::StoreRR {
                    addr: saddr,
                    offset: soffset,
                    value,
                    private_ok: sprivate,
                } = pcode[pc + 2]
                {
                    if saddr == addr
                        && soffset == offset
                        && sprivate == private_ok
                        && value == dst
                        && ld != addr
                        && dst != addr
                    {
                        pcode[pc] = POp::RmwR {
                            addr,
                            offset,
                            ld,
                            op,
                            other,
                            ld_on_lhs,
                            dst,
                            private_ok,
                        };
                        return 3;
                    }
                }
            }
        }
    }

    // 2. Immediate chains: `d1 = lhs op1 i1; d2 = d1 op2 i2 [; d3 = d2 op3 i3]`, plus the
    // RR;RI pair.
    if let POp::BinRI {
        dst: d1,
        op: op1,
        lhs,
        rhs: i1,
    } = pcode[pc]
    {
        if same_block(pc + 1) {
            if let POp::BinRI {
                dst: d2,
                op: op2,
                lhs: l2,
                rhs: i2,
            } = pcode[pc + 1]
            {
                if l2 == d1 {
                    if same_block(pc + 2) {
                        if let POp::BinRI {
                            dst: d3,
                            op: op3,
                            lhs: l3,
                            rhs: i3,
                        } = pcode[pc + 2]
                        {
                            if l3 == d2 {
                                // All-int and all-float triples get a width-3 form; mixed
                                // immediates fall back to the pair below.
                                match (i1, i2, i3) {
                                    (Value::Int(i1), Value::Int(i2), Value::Int(i3)) => {
                                        pcode[pc] = POp::BinChain3II {
                                            lhs,
                                            op1,
                                            i1,
                                            d1,
                                            op2,
                                            i2,
                                            d2,
                                            op3,
                                            i3,
                                            d3,
                                        };
                                        return 3;
                                    }
                                    (Value::Float(f1), Value::Float(f2), Value::Float(f3)) => {
                                        pcode[pc] = POp::BinChain3FF {
                                            lhs,
                                            op1,
                                            f1,
                                            d1,
                                            op2,
                                            f2,
                                            d2,
                                            op3,
                                            f3,
                                            d3,
                                        };
                                        return 3;
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    pcode[pc] = POp::BinChainII {
                        lhs,
                        op1,
                        i1,
                        d1,
                        op2,
                        i2,
                        d2,
                    };
                    return 2;
                }
            }
        }
        return 1;
    }
    if let POp::BinRR {
        dst: d1,
        op: op1,
        lhs,
        rhs,
    } = pcode[pc]
    {
        if same_block(pc + 1) {
            if let POp::BinRI {
                dst: d2,
                op: op2,
                lhs: l2,
                rhs: i2,
            } = pcode[pc + 1]
            {
                if l2 == d1 {
                    pcode[pc] = POp::BinChainRI {
                        lhs,
                        rhs,
                        op1,
                        d1,
                        op2,
                        i2,
                        d2,
                    };
                    return 2;
                }
            }
            // 4. op+store: the bin's result goes straight to an absolute address.
            if let POp::StoreAR { addr: saddr, value } = pcode[pc + 1] {
                if value == d1 {
                    pcode[pc] = POp::BinStoreA {
                        op: op1,
                        lhs,
                        rhs,
                        dst: d1,
                        saddr,
                    };
                    return 2;
                }
            }
        }
        return 1;
    }

    // 3. load+op: an absolute load feeding the next binary op (when no store follows —
    // the RMW case was tried first).
    if same_block(pc + 1) {
        if let POp::LoadA {
            dst: ld,
            addr: laddr,
        } = pcode[pc]
        {
            if let Some((op, other, ld_on_lhs, dst)) = rr_consumes(&pcode[pc + 1], ld) {
                pcode[pc] = POp::LoadABin {
                    laddr,
                    ld,
                    op,
                    other,
                    ld_on_lhs,
                    dst,
                };
                return 2;
            }
        }
    }

    // 4b. The array-store idiom: `slot = base + index; store slot+offset <- value`.
    if same_block(pc + 1) {
        if let POp::BinIR {
            dst,
            op: BinOp::Add,
            lhs: Value::Int(base),
            rhs: idx,
        } = pcode[pc]
        {
            if let POp::StoreRR {
                addr,
                offset,
                value,
                private_ok: false,
            } = pcode[pc + 1]
            {
                if addr == dst && value != dst {
                    pcode[pc] = POp::StoreIdx {
                        base,
                        idx,
                        dst,
                        offset,
                        value,
                    };
                    return 2;
                }
            }
        }
    }

    // 5. compare+branch (the loop-latch idiom).
    if same_block(pc + 1) {
        let fused = match (&pcode[pc], &pcode[pc + 1]) {
            (
                POp::CmpRI {
                    dst,
                    pred,
                    lhs,
                    rhs,
                },
                POp::Branch {
                    cond,
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                },
            ) if cond == dst => Some(POp::CmpBrRI {
                dst: *dst,
                pred: *pred,
                lhs: *lhs,
                imm: *rhs,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            }),
            (
                POp::CmpRR {
                    dst,
                    pred,
                    lhs,
                    rhs,
                },
                POp::Branch {
                    cond,
                    then_pc,
                    then_block,
                    else_pc,
                    else_block,
                },
            ) if cond == dst => Some(POp::CmpBrRR {
                dst: *dst,
                pred: *pred,
                lhs: *lhs,
                rhs: *rhs,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            }),
            _ => None,
        };
        if let Some(f) = fused {
            pcode[pc] = f;
            return 2;
        }
    }
    1
}

/// Computes [`LoopImage::restore_regs`]: registers some op reads before any definition in
/// its own block (conservatively treating every block entry as reachable from another
/// iteration) intersected with registers some op writes, plus the privatized induction
/// variables (their per-iteration recompute overwrites them anyway; listing them keeps the
/// reset story in one place for the exit path).
fn compute_restore_regs(
    code: &[Op],
    pc_block: &[u32],
    induction_vars: &[(u32, i64)],
    num_regs: usize,
) -> Vec<u32> {
    let mut written: BTreeSet<u32> = BTreeSet::new();
    let mut exposed: BTreeSet<u32> = BTreeSet::new();
    let mut block_defs: BTreeSet<u32> = BTreeSet::new();
    let mut current_block = u32::MAX;
    for (pc, op) in code.iter().enumerate() {
        if pc_block[pc] != current_block {
            current_block = pc_block[pc];
            block_defs.clear();
        }
        let mut track_use = |o: &Opnd| {
            if let Opnd::Reg(r) = o {
                if !block_defs.contains(r) {
                    exposed.insert(*r);
                }
            }
        };
        match op {
            Op::Mov { src, .. } | Op::Un { src, .. } => track_use(src),
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                track_use(lhs);
                track_use(rhs);
            }
            Op::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                track_use(cond);
                track_use(on_true);
                track_use(on_false);
            }
            Op::Load { addr, .. } => track_use(addr),
            Op::Store { addr, value, .. } => {
                track_use(addr);
                track_use(value);
            }
            Op::Alloc { words, .. } | Op::PrivateAlloc { words, .. } => track_use(words),
            Op::Call { args, .. } => {
                for a in args.iter() {
                    track_use(a);
                }
            }
            Op::Branch { cond, .. } => track_use(cond),
            Op::Ret { value } => {
                if let Some(v) = value {
                    track_use(v);
                }
            }
            Op::Wait { .. } | Op::Signal { .. } | Op::Jump { .. } | Op::Trap { .. } => {}
        }
        let dst = match op {
            Op::Mov { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Select { dst, .. }
            | Op::Load { dst, .. }
            | Op::Alloc { dst, .. }
            | Op::PrivateAlloc { dst, .. } => Some(*dst),
            Op::Call { dst, .. } => *dst,
            _ => None,
        };
        if let Some(d) = dst {
            written.insert(d);
            block_defs.insert(d);
        }
    }
    let mut restore: Vec<u32> = exposed
        .intersection(&written)
        .copied()
        .chain(induction_vars.iter().map(|(r, _)| *r))
        .filter(|r| (*r as usize) < num_regs)
        .collect();
    restore.sort_unstable();
    restore.dedup();
    restore
}

fn cost_class_of_op(op: &Op) -> CostClass {
    match op {
        Op::Mov { .. } | Op::Un { .. } | Op::Cmp { .. } | Op::Select { .. } => CostClass::Alu,
        Op::Bin { op, .. } => match op {
            BinOp::Mul => CostClass::Mul,
            BinOp::Div | BinOp::Rem => CostClass::Div,
            _ => CostClass::Alu,
        },
        Op::Load { .. } => CostClass::Load,
        Op::Store { .. } => CostClass::Store,
        Op::Alloc { .. } | Op::PrivateAlloc { .. } => CostClass::Alloc,
        Op::Call { .. } => CostClass::Call,
        Op::Wait { .. } => CostClass::Wait,
        Op::Signal { .. } => CostClass::Signal,
        Op::Jump { .. } | Op::Branch { .. } | Op::Ret { .. } | Op::Trap { .. } => CostClass::Branch,
    }
}

/// A [`TransformedProgram`] lowered once for the parallel runtime: the whole-module bytecode
/// (Phase A/C and callees execute from it) plus the loop's iteration image.
#[derive(Clone, Debug)]
pub struct ParallelImage {
    /// The flat bytecode of the whole transformed module.
    pub exec: ExecImage,
    /// The lowered parallel loop.
    pub loop_image: LoopImage,
}

impl ParallelImage {
    /// Lowers `program` end-to-end. Callers executing the same program repeatedly should
    /// lower once and reuse the image across [`crate::ParallelExecutor::run_parallel`]
    /// calls — both parts are immutable and shared freely across worker threads.
    pub fn lower(program: &TransformedProgram) -> ParallelImage {
        let exec = ExecImage::lower(&program.module);
        let loop_image = LoopImage::build(&exec, program);
        ParallelImage { exec, loop_image }
    }
}

// ---------------------------------------------------------------------------
// The specialized iteration bytecode.
// ---------------------------------------------------------------------------

/// A direct call in specialized form (boxed: calls are rare in loop bodies, and the payload
/// would otherwise dominate the op size).
#[derive(Clone, Debug)]
pub(crate) struct CallData {
    pub dst: Option<u32>,
    pub func: u32,
    pub args: Box<[Opnd]>,
}

/// A select in specialized form (boxed for the same reason).
#[derive(Clone, Debug)]
pub(crate) struct SelectData {
    pub dst: u32,
    pub cond: Opnd,
    pub on_true: Opnd,
    pub on_false: Opnd,
}

/// One specialized iteration op: the [`Op`] stream re-encoded with operands pre-decoded
/// into register/immediate variants, constants folded, and global base addresses fused into
/// absolute load/store forms. Immediates are stored as ready-made [`Value`]s so the hot loop
/// never constructs one.
#[derive(Clone, Debug)]
pub(crate) enum POp {
    MovR {
        dst: u32,
        src: u32,
    },
    MovI {
        dst: u32,
        v: Value,
    },
    UnR {
        dst: u32,
        op: helix_ir::UnOp,
        src: u32,
    },
    BinRR {
        dst: u32,
        op: BinOp,
        lhs: u32,
        rhs: u32,
    },
    BinRI {
        dst: u32,
        op: BinOp,
        lhs: u32,
        rhs: Value,
    },
    BinIR {
        dst: u32,
        op: BinOp,
        lhs: Value,
        rhs: u32,
    },
    CmpRR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: u32,
    },
    CmpRI {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: Value,
    },
    CmpIR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: Value,
        rhs: u32,
    },
    SelectB(Box<SelectData>),
    /// Load through a register-held base plus constant offset. `private_ok` marks the
    /// statically-proven privatized access sites — the only loads allowed to route into
    /// the per-worker arena; everywhere else a private-range address faults exactly as it
    /// does sequentially.
    LoadR {
        dst: u32,
        addr: u32,
        offset: i64,
        private_ok: bool,
    },
    /// Load from an absolute (global-folded) address — never private.
    LoadA {
        dst: u32,
        addr: i64,
    },
    StoreRR {
        addr: u32,
        offset: i64,
        value: u32,
        private_ok: bool,
    },
    StoreRI {
        addr: u32,
        offset: i64,
        value: Value,
        private_ok: bool,
    },
    StoreAR {
        addr: i64,
        value: u32,
    },
    StoreAI {
        addr: i64,
        value: Value,
    },
    AllocR {
        dst: u32,
        words: u32,
    },
    AllocI {
        dst: u32,
        words: i64,
    },
    PrivateAllocR {
        dst: u32,
        words: u32,
    },
    PrivateAllocI {
        dst: u32,
        words: i64,
    },
    CallB(Box<CallData>),
    Wait {
        lane: u32,
    },
    SignalLane {
        lane: u32,
    },
    SignalControl,
    /// Internal jump (sentinels are translated to [`POp::EndIter`]/[`POp::ExitJump`]).
    Jump {
        pc: u32,
    },
    EndIter,
    ExitJump {
        block: u32,
    },
    Branch {
        cond: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    RetR {
        src: u32,
    },
    RetI {
        v: Option<Value>,
    },
    Trap {
        block: u32,
    },
    // Superinstructions (see `fuse_superinstructions`): only the head slot of a fused
    // window is rewritten; interior slots keep their original ops so jumps into the middle
    // still work, and straight-line execution dispatches once and skips the window. Every
    // intermediate destination is written, preserving the unfused ops' observable register
    // effects exactly.
    /// `d1 = lhs op1 i1; d2 = d1 op2 i2` (width 2).
    BinChainII {
        lhs: u32,
        op1: BinOp,
        i1: Value,
        d1: u32,
        op2: BinOp,
        i2: Value,
        d2: u32,
    },
    /// `d1 = lhs op1 i1; d2 = d1 op2 i2; d3 = d2 op3 i3` with integer immediates
    /// (width 3; all-float triples get [`POp::BinChain3FF`], mixed ones fall back to
    /// pairs so both variants stay flat-sized).
    BinChain3II {
        lhs: u32,
        op1: BinOp,
        i1: i64,
        d1: u32,
        op2: BinOp,
        i2: i64,
        d2: u32,
        op3: BinOp,
        i3: i64,
        d3: u32,
    },
    /// `d1 = lhs op1 f1; d2 = d1 op2 f2; d3 = d2 op3 f3` with float immediates (width 3) —
    /// the float scaling/blend chains that previously fell back to pairs.
    BinChain3FF {
        lhs: u32,
        op1: BinOp,
        f1: f64,
        d1: u32,
        op2: BinOp,
        f2: f64,
        d2: u32,
        op3: BinOp,
        f3: f64,
        d3: u32,
    },
    /// `d1 = lhs op1 rhs; d2 = d1 op2 i2` (width 2).
    BinChainRI {
        lhs: u32,
        rhs: u32,
        op1: BinOp,
        d1: u32,
        op2: BinOp,
        i2: Value,
        d2: u32,
    },
    /// `ld = load laddr; dst = ld op other` (`other op ld` when `ld_on_lhs` is false)
    /// (width 2).
    LoadABin {
        laddr: i64,
        ld: u32,
        op: BinOp,
        other: u32,
        ld_on_lhs: bool,
        dst: u32,
    },
    /// `dst = lhs op rhs; store saddr <- dst` (width 2).
    BinStoreA {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        dst: u32,
        saddr: i64,
    },
    /// `dst = base + idx; store dst+offset <- value` — the array-store idiom (width 2).
    StoreIdx {
        base: i64,
        idx: u32,
        dst: u32,
        offset: i64,
        value: u32,
    },
    /// `ld = load laddr; dst = ld op other; store saddr <- dst` (width 3) — the
    /// read-modify-write at the heart of a typical synchronized segment.
    RmwA {
        laddr: i64,
        ld: u32,
        op: BinOp,
        other: u32,
        ld_on_lhs: bool,
        dst: u32,
        saddr: i64,
    },
    /// `ld = load (addr+offset); dst = ld op other; store (addr+offset) <- dst` (width 3)
    /// — the register-addressed read-modify-write (pointer-walking accumulations). Sound
    /// only when the load/bin provably leave the address register unmodified
    /// (`ld != addr && dst != addr`), so the fused body may compute the address once.
    RmwR {
        addr: u32,
        offset: i64,
        ld: u32,
        op: BinOp,
        other: u32,
        ld_on_lhs: bool,
        dst: u32,
        private_ok: bool,
    },
    /// Publishes several signal lanes with one dispatch and one wake (width
    /// `lanes.len()`), produced by coalescing a run of adjacent end-of-segment signals.
    SignalMulti {
        lanes: Box<[u32]>,
        width: u32,
    },
    /// `dst = lhs pred imm; branch on dst` (the loop-latch idiom).
    CmpBrRI {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        imm: Value,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
    /// `dst = lhs pred rhs; branch on dst`.
    CmpBrRR {
        dst: u32,
        pred: helix_ir::Pred,
        lhs: u32,
        rhs: u32,
        then_pc: u32,
        then_block: u32,
        else_pc: u32,
        else_block: u32,
    },
}

impl POp {
    /// Width of the fused window this op heads: how many pc slots straight-line dispatch
    /// advances past it (1 for plain ops).
    pub(crate) fn fused_width(&self) -> usize {
        match self {
            POp::BinChainII { .. }
            | POp::BinChainRI { .. }
            | POp::LoadABin { .. }
            | POp::BinStoreA { .. }
            | POp::StoreIdx { .. }
            | POp::CmpBrRI { .. }
            | POp::CmpBrRR { .. } => 2,
            POp::BinChain3II { .. }
            | POp::BinChain3FF { .. }
            | POp::RmwA { .. }
            | POp::RmwR { .. } => 3,
            POp::SignalMulti { width, .. } => *width as usize,
            _ => 1,
        }
    }
}

fn opnd_value(o: Opnd) -> Option<Value> {
    match o {
        Opnd::Reg(_) => None,
        Opnd::Int(i) => Some(Value::Int(i)),
        Opnd::Float(f) => Some(Value::Float(f)),
    }
}

/// Specializes one rewritten iteration [`Op`] (see [`POp`]). Folding uses the engine's own
/// evaluation helpers, so a folded constant is bitwise what the generic engine would have
/// computed. `private_ok` is true for the statically-proven privatized access sites.
pub(crate) fn specialize_op(op: &Op, private_ok: bool) -> POp {
    match op {
        Op::Mov { dst, src } => match opnd_value(*src) {
            Some(v) => POp::MovI { dst: *dst, v },
            None => match src {
                Opnd::Reg(r) => POp::MovR { dst: *dst, src: *r },
                _ => unreachable!(),
            },
        },
        Op::Un { dst, op, src } => match (src, opnd_value(*src)) {
            (_, Some(v)) => POp::MovI {
                dst: *dst,
                v: eval_unop(*op, v),
            },
            (Opnd::Reg(r), None) => POp::UnR {
                dst: *dst,
                op: *op,
                src: *r,
            },
            _ => unreachable!(),
        },
        Op::Bin { dst, op, lhs, rhs } => match (lhs, rhs) {
            (Opnd::Reg(a), Opnd::Reg(b)) => POp::BinRR {
                dst: *dst,
                op: *op,
                lhs: *a,
                rhs: *b,
            },
            (Opnd::Reg(a), imm) => POp::BinRI {
                dst: *dst,
                op: *op,
                lhs: *a,
                rhs: opnd_value(*imm).expect("non-register operand"),
            },
            (imm, Opnd::Reg(b)) => POp::BinIR {
                dst: *dst,
                op: *op,
                lhs: opnd_value(*imm).expect("non-register operand"),
                rhs: *b,
            },
            (a, b) => POp::MovI {
                dst: *dst,
                v: eval_binop(
                    *op,
                    opnd_value(*a).expect("constant"),
                    opnd_value(*b).expect("constant"),
                ),
            },
        },
        Op::Cmp {
            dst,
            pred,
            lhs,
            rhs,
        } => match (lhs, rhs) {
            (Opnd::Reg(a), Opnd::Reg(b)) => POp::CmpRR {
                dst: *dst,
                pred: *pred,
                lhs: *a,
                rhs: *b,
            },
            (Opnd::Reg(a), imm) => POp::CmpRI {
                dst: *dst,
                pred: *pred,
                lhs: *a,
                rhs: opnd_value(*imm).expect("non-register operand"),
            },
            (imm, Opnd::Reg(b)) => POp::CmpIR {
                dst: *dst,
                pred: *pred,
                lhs: opnd_value(*imm).expect("non-register operand"),
                rhs: *b,
            },
            (a, b) => POp::MovI {
                dst: *dst,
                v: Value::from_bool(eval_pred(
                    *pred,
                    opnd_value(*a).expect("constant"),
                    opnd_value(*b).expect("constant"),
                )),
            },
        },
        Op::Select {
            dst,
            cond,
            on_true,
            on_false,
        } => POp::SelectB(Box::new(SelectData {
            dst: *dst,
            cond: *cond,
            on_true: *on_true,
            on_false: *on_false,
        })),
        Op::Load { dst, addr, offset } => match addr {
            Opnd::Reg(r) => POp::LoadR {
                dst: *dst,
                addr: *r,
                offset: *offset,
                private_ok,
            },
            imm => POp::LoadA {
                dst: *dst,
                addr: opnd_value(*imm)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
            },
        },
        Op::Store {
            addr,
            offset,
            value,
        } => match (addr, value) {
            (Opnd::Reg(a), Opnd::Reg(v)) => POp::StoreRR {
                addr: *a,
                offset: *offset,
                value: *v,
                private_ok,
            },
            (Opnd::Reg(a), imm) => POp::StoreRI {
                addr: *a,
                offset: *offset,
                value: opnd_value(*imm).expect("non-register value"),
                private_ok,
            },
            (imm, Opnd::Reg(v)) => POp::StoreAR {
                addr: opnd_value(*imm)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
                value: *v,
            },
            (a, v) => POp::StoreAI {
                addr: opnd_value(*a)
                    .expect("non-register address")
                    .as_int()
                    .wrapping_add(*offset),
                value: opnd_value(*v).expect("non-register value"),
            },
        },
        Op::Alloc { dst, words } => match words {
            Opnd::Reg(r) => POp::AllocR {
                dst: *dst,
                words: *r,
            },
            imm => POp::AllocI {
                dst: *dst,
                words: opnd_value(*imm).expect("non-register size").as_int(),
            },
        },
        Op::PrivateAlloc { dst, words } => match words {
            Opnd::Reg(r) => POp::PrivateAllocR {
                dst: *dst,
                words: *r,
            },
            imm => POp::PrivateAllocI {
                dst: *dst,
                words: opnd_value(*imm).expect("non-register size").as_int(),
            },
        },
        Op::Call { dst, func, args } => POp::CallB(Box::new(CallData {
            dst: *dst,
            func: *func,
            args: args.clone(),
        })),
        Op::Wait { dep } => POp::Wait { lane: *dep },
        Op::Signal { dep } => {
            if *dep == CONTROL_DEP {
                POp::SignalControl
            } else {
                POp::SignalLane { lane: *dep }
            }
        }
        Op::Jump { pc, block } => match *pc {
            PC_END_ITER => POp::EndIter,
            PC_EXIT => POp::ExitJump { block: *block },
            pc => POp::Jump { pc },
        },
        Op::Branch {
            cond,
            then_pc,
            then_block,
            else_pc,
            else_block,
        } => match cond {
            Opnd::Reg(r) => POp::Branch {
                cond: *r,
                then_pc: *then_pc,
                then_block: *then_block,
                else_pc: *else_pc,
                else_block: *else_block,
            },
            imm => {
                // Constant condition: the branch folds to its taken edge.
                let (pc, block) = if opnd_value(*imm).expect("constant").as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match pc {
                    PC_END_ITER => POp::EndIter,
                    PC_EXIT => POp::ExitJump { block },
                    pc => POp::Jump { pc },
                }
            }
        },
        Op::Ret { value } => match value {
            Some(Opnd::Reg(r)) => POp::RetR { src: *r },
            Some(imm) => POp::RetI {
                v: Some(opnd_value(*imm).expect("constant")),
            },
            None => POp::RetI { v: None },
        },
        Op::Trap { block } => POp::Trap { block: *block },
    }
}

// ---------------------------------------------------------------------------
// The lean engine.
// ---------------------------------------------------------------------------

/// A worker's memory stack: the shared tier plus its private arena.
pub(crate) trait Tier {
    /// Shared-memory access: a private-range address faults exactly as it would
    /// sequentially (`Memory::MAX_WORDS` is far below [`PRIVATE_BASE`]).
    fn load(&mut self, addr: i64) -> Result<Value, ExecError>;
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError>;
    /// Access from a statically-proven privatized site: private-range addresses route to
    /// the worker's arena, everything else to shared memory.
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError>;
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError>;
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError>;
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError>;
    /// Starts a new iteration: previous private allocations are dead.
    fn reset_arena(&mut self);
    /// Words served privately since the last drain (re-reserved in shared memory).
    fn drain_private_words(&mut self) -> u64;
    /// Declares whether the caller is provably the only thread touching shared memory
    /// (solo mode / sequential phases); exclusive tiers may elide locking. Default no-op
    /// for tiers that are always exclusive.
    fn set_exclusive(&mut self, _exclusive: bool) {}
}

/// Striped shared memory + per-worker arena: the tier of multi-threaded runs. While
/// `exclusive` is set (sequential phases and the primary's solo mode, where this thread
/// provably owns all of memory) shard locks are elided entirely.
pub(crate) struct SharedTier<'a> {
    pub shared: &'a ShardedMemory,
    pub arena: PrivateArena,
    pub exclusive: bool,
}

impl Tier for SharedTier<'_> {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        if self.exclusive {
            // SAFETY: `exclusive` is only set while this thread provably owns the memory
            // (before the claim protocol publishes / after the job join barrier).
            Ok(unsafe { self.shared.load_exclusive(addr) }?)
        } else {
            Ok(self.shared.load(addr)?)
        }
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if self.exclusive {
            // SAFETY: see `load`.
            Ok(unsafe { self.shared.store_exclusive(addr, value) }?)
        } else {
            Ok(self.shared.store(addr, value)?)
        }
    }

    #[inline]
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.load(addr)?)
        } else {
            self.load(addr)
        }
    }

    #[inline]
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.store(addr, value)?)
        } else {
            self.store(addr, value)
        }
    }

    #[inline]
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.shared.alloc(words)?)
    }

    #[inline]
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.arena.alloc(words)?)
    }

    fn reset_arena(&mut self) {
        self.arena.reset();
    }

    fn drain_private_words(&mut self) -> u64 {
        self.arena.drain_skipped_words()
    }

    fn set_exclusive(&mut self, exclusive: bool) {
        self.exclusive = exclusive;
    }
}

/// Plain sequential memory + arena: the tier of single-threaded runs, where no access ever
/// needs a lock.
pub(crate) struct LocalTier {
    pub memory: Memory,
    pub arena: PrivateArena,
}

impl Tier for LocalTier {
    #[inline]
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.memory.load(addr)?)
    }

    #[inline]
    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        Ok(self.memory.store(addr, value)?)
    }

    #[inline]
    fn load_private(&mut self, addr: i64) -> Result<Value, ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.load(addr)?)
        } else {
            Ok(self.memory.load(addr)?)
        }
    }

    #[inline]
    fn store_private(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        if addr >= PRIVATE_BASE {
            Ok(self.arena.store(addr, value)?)
        } else {
            Ok(self.memory.store(addr, value)?)
        }
    }

    #[inline]
    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.memory.alloc(words)?)
    }

    #[inline]
    fn alloc_private(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.arena.alloc(words)?)
    }

    fn reset_arena(&mut self) {
        self.arena.reset();
    }

    fn drain_private_words(&mut self) -> u64 {
        self.arena.drain_skipped_words()
    }
}

/// Evaluates a pre-resolved operand. Reads are unchecked like the instrumented engine's:
/// lowering widens the register file to cover every referenced index, and every caller sizes
/// `regs` to the function's `num_regs`.
#[inline(always)]
pub(crate) fn eval(regs: &[Value], o: Opnd) -> Value {
    match o {
        Opnd::Reg(r) => {
            debug_assert!((r as usize) < regs.len());
            unsafe { *regs.get_unchecked(r as usize) }
        }
        Opnd::Int(i) => Value::Int(i),
        Opnd::Float(f) => Value::Float(f),
    }
}

/// One suspended guest frame of [`run_flat`]'s explicit call stack.
struct LeanFrame {
    func: usize,
    pc: usize,
    regs: Vec<Value>,
    dst: Option<u32>,
}

/// How a [`run_flat`] execution ended.
pub(crate) enum FlatEnd {
    /// Control reached `stop_block` at the top level (Phase A arriving at the loop header).
    ReachedStop,
    /// The function returned.
    Returned(Option<Value>),
}

/// Errors of the lean engine's sequential paths.
pub(crate) enum FlatError {
    Exec(ExecError),
    /// The top-level block-transition budget ran out (a runaway loop outside the
    /// parallelized one).
    BudgetExceeded,
}

impl From<ExecError> for FlatError {
    fn from(e: ExecError) -> Self {
        FlatError::Exec(e)
    }
}

/// Runs whole-function bytecode leanly: Phase A (with `stop_block` = the loop header),
/// Phase C and callee invocations all go through here. `Wait`/`Signal` are no-ops (outside
/// iteration code they are either Phase-bound sync the sequential engine also ignores, or
/// generator noise), matching the sequential engine's treatment.
///
/// `budget` bounds top-level block transitions (the caller's runaway-loop guard); callee
/// blocks are unmetered, like the instrumented executor's phase stepping.
pub(crate) fn run_flat<T: Tier>(
    image: &ExecImage,
    func: FuncId,
    start_block: u32,
    stop_block: Option<u32>,
    regs: &mut Vec<Value>,
    tier: &mut T,
    budget: u64,
) -> Result<FlatEnd, FlatError> {
    let mut f = &image.funcs[func.index()];
    if regs.len() < f.num_regs {
        regs.resize(f.num_regs, Value::default());
    }
    if stop_block == Some(start_block) {
        return Ok(FlatEnd::ReachedStop);
    }
    let mut func_ix = func.index();
    let mut frames: Vec<LeanFrame> = Vec::new();
    let mut pc = f.block_start(start_block) as usize;
    let mut top_blocks = 0u64;
    let mut local_regs = std::mem::take(regs);
    let result = 'run: loop {
        let op = &f.code[pc];
        match op {
            Op::Mov { dst, src } => {
                local_regs[*dst as usize] = eval(&local_regs, *src);
                pc += 1;
            }
            Op::Un { dst, op, src } => {
                local_regs[*dst as usize] = eval_unop(*op, eval(&local_regs, *src));
                pc += 1;
            }
            Op::Bin { dst, op, lhs, rhs } => {
                local_regs[*dst as usize] =
                    eval_binop(*op, eval(&local_regs, *lhs), eval(&local_regs, *rhs));
                pc += 1;
            }
            Op::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                local_regs[*dst as usize] = Value::from_bool(eval_pred(
                    *pred,
                    eval(&local_regs, *lhs),
                    eval(&local_regs, *rhs),
                ));
                pc += 1;
            }
            Op::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let v = if eval(&local_regs, *cond).as_bool() {
                    eval(&local_regs, *on_true)
                } else {
                    eval(&local_regs, *on_false)
                };
                local_regs[*dst as usize] = v;
                pc += 1;
            }
            Op::Load { dst, addr, offset } => {
                let base = eval(&local_regs, *addr).as_int();
                match tier.load(base + offset) {
                    Ok(v) => local_regs[*dst as usize] = v,
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::Store {
                addr,
                offset,
                value,
            } => {
                let base = eval(&local_regs, *addr).as_int();
                let v = eval(&local_regs, *value);
                if let Err(e) = tier.store(base + offset, v) {
                    break 'run Err(FlatError::Exec(e));
                }
                pc += 1;
            }
            Op::Alloc { dst, words } => {
                let n = eval(&local_regs, *words).as_int().max(0) as usize;
                match tier.alloc(n) {
                    Ok(base) => local_regs[*dst as usize] = Value::Int(base),
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::PrivateAlloc { dst, words } => {
                let n = eval(&local_regs, *words).as_int().max(0) as usize;
                match tier.alloc_private(n) {
                    Ok(base) => local_regs[*dst as usize] = Value::Int(base),
                    Err(e) => break 'run Err(FlatError::Exec(e)),
                }
                pc += 1;
            }
            Op::Wait { .. } | Op::Signal { .. } => pc += 1,
            Op::Call {
                dst,
                func: callee,
                args,
            } => {
                if frames.len() + 1 > MAX_CALL_DEPTH {
                    break 'run Err(FlatError::Exec(ExecError::StackOverflow));
                }
                let callee_ix = *callee as usize;
                let cf = &image.funcs[callee_ix];
                let mut callee_regs = vec![Value::default(); cf.num_regs.max(args.len())];
                for (slot, a) in callee_regs.iter_mut().zip(args.iter()).take(cf.num_params) {
                    *slot = eval(&local_regs, *a);
                }
                frames.push(LeanFrame {
                    func: func_ix,
                    pc,
                    regs: std::mem::replace(&mut local_regs, callee_regs),
                    dst: *dst,
                });
                func_ix = callee_ix;
                f = &image.funcs[func_ix];
                pc = f.entry_pc() as usize;
            }
            Op::Jump { pc: target, block } => {
                if frames.is_empty() {
                    if stop_block == Some(*block) {
                        break 'run Ok(FlatEnd::ReachedStop);
                    }
                    top_blocks += 1;
                    if top_blocks > budget {
                        break 'run Err(FlatError::BudgetExceeded);
                    }
                }
                pc = *target as usize;
            }
            Op::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let (target, block) = if eval(&local_regs, *cond).as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                if frames.is_empty() {
                    if stop_block == Some(block) {
                        break 'run Ok(FlatEnd::ReachedStop);
                    }
                    top_blocks += 1;
                    if top_blocks > budget {
                        break 'run Err(FlatError::BudgetExceeded);
                    }
                }
                pc = target as usize;
            }
            Op::Ret { value } => {
                let v = value.map(|v| eval(&local_regs, v));
                match frames.pop() {
                    None => break 'run Ok(FlatEnd::Returned(v)),
                    Some(frame) => {
                        func_ix = frame.func;
                        f = &image.funcs[func_ix];
                        local_regs = frame.regs;
                        pc = frame.pc;
                        if let Some(d) = frame.dst {
                            local_regs[d as usize] = v.unwrap_or_default();
                        }
                        pc += 1;
                    }
                }
            }
            Op::Trap { block } => {
                break 'run Err(FlatError::Exec(ExecError::MissingTerminator(BlockId::new(
                    *block,
                ))));
            }
        }
    };
    // Hand the (possibly callee-stale) top-level register file back to the caller: unwind to
    // the bottom frame if the run ended inside a callee.
    if let Some(bottom) = frames.into_iter().next() {
        local_regs = bottom.regs;
    }
    *regs = local_regs;
    result
}

/// How one iteration ended.
pub(crate) enum IterEnd {
    /// The back edge was taken: the iteration completed and the loop continues.
    Completed,
    /// An exit edge was taken towards `block` (dense index in the clone function).
    Exit {
        /// Phase C resume block.
        block: u32,
    },
    /// A `ret` inside the loop ended the whole function.
    Returned(Option<Value>),
    /// An earlier iteration exited while this one was blocked: its work is moot.
    Cancelled,
}

/// Errors of the iteration runner.
pub(crate) enum IterError {
    Exec(ExecError),
    /// A `Wait` outlived the spin budget.
    Deadlock {
        /// The lane being waited on.
        lane: u32,
        /// pc of the blocked `Wait` in [`LoopImage::code`].
        pc: u32,
        /// Last counter value observed.
        observed: u64,
    },
}

impl From<ExecError> for IterError {
    fn from(e: ExecError) -> Self {
        IterError::Exec(e)
    }
}

/// Shared synchronization handles the iteration runner needs.
pub(crate) struct IterSync<'a> {
    pub lanes: &'a SignalLanes,
    pub sleepers: &'a Sleepers,
    /// Lowest iteration that took a loop exit (`u64::MAX` while the loop runs).
    pub exited_at: &'a AtomicU64,
    /// Spin rounds a blocked `Wait` may burn before it is declared deadlocked.
    pub spin_budget: u64,
    /// Backoff shape of this run's wait sites.
    pub profile: WaitProfile,
    /// This worker's telemetry handle, `None` when telemetry is disabled. Compiled out
    /// entirely without the `telemetry` feature (`run_iteration` then binds a statically
    /// `None` local, folding every recording branch away).
    #[cfg(feature = "telemetry")]
    pub telem: Option<crate::telemetry::WorkerCtx<'a>>,
}

/// How a blocking lane wait ended (the traced slow path of [`POp::Wait`]).
pub(crate) enum WaitOutcome {
    /// The awaited signal arrived.
    Passed,
    /// An earlier iteration exited the loop; this iteration's work is moot.
    Cancelled,
    /// The spin budget ran out; `observed` is the last counter value seen.
    Deadlocked { observed: u64 },
}

/// The blocking branch of a lane `Wait`: adaptive backoff until the signal arrives, the
/// loop exits underneath the waiter, or the deadlock budget runs out. Out of line from the
/// dispatch loop (the fast path is a single satisfied poll); `telem` is this worker's
/// recording handle and is statically `None` when the `telemetry` feature is off.
pub(crate) fn wait_blocking(
    sync: &IterSync<'_>,
    telem: Option<crate::telemetry::WorkerCtx<'_>>,
    lane_ix: usize,
    iteration: u64,
    pc: u32,
) -> WaitOutcome {
    let begin_ns = telem.map(|t| t.on_wait_begin(iteration, pc));
    let mut backoff = AdaptiveWait::with_profile(sync.sleepers, sync.profile);
    let mut polls = 0u64;
    let mut parked = false;
    let end = |outcome: WaitOutcome, backoff: &AdaptiveWait<'_>| {
        if let (Some(t), Some(begin)) = (telem, begin_ns) {
            let observed = sync.lanes.observed(lane_ix, iteration);
            t.on_wait_end(iteration, pc, begin, observed, backoff.stats());
        }
        outcome
    };
    loop {
        if sync.lanes.poll(lane_ix, iteration) {
            return end(WaitOutcome::Passed, &backoff);
        }
        let charged = backoff.wait();
        if telem.is_some() && !parked && backoff.stats().parks > 0 {
            parked = true;
            if let Some(t) = telem {
                t.on_park(iteration, pc);
            }
        }
        polls += 1;
        if polls & 0x3F == 0 && sync.exited_at.load(Ordering::Acquire) < iteration {
            return end(WaitOutcome::Cancelled, &backoff);
        }
        if charged > sync.spin_budget {
            let observed = sync.lanes.observed(lane_ix, iteration);
            return end(WaitOutcome::Deadlocked { observed }, &backoff);
        }
    }
}

/// Executes one iteration of the lowered loop. `regs` must already hold the loop-entry
/// snapshot with induction variables privatized for `iteration`; `on_control` is invoked
/// when the iteration's prologue completes (at most once per iteration from inside the code;
/// the caller must also release control when the iteration completes without entering the
/// body).
pub(crate) fn run_iteration<T: Tier>(
    image: &ExecImage,
    loop_image: &LoopImage,
    iteration: u64,
    regs: &mut [Value],
    tier: &mut T,
    sync: &IterSync<'_>,
    on_control: &mut dyn FnMut(),
) -> Result<IterEnd, IterError> {
    let code = &loop_image.pcode[..];
    let mut pc = loop_image.entry_pc as usize;
    // This worker's telemetry handle. Without the `telemetry` feature the local is a
    // statically-known `None` and every recording branch below folds away.
    #[cfg(feature = "telemetry")]
    let telem = sync.telem;
    #[cfg(not(feature = "telemetry"))]
    let telem: Option<crate::telemetry::WorkerCtx<'_>> = None;
    // Reads are unchecked (see `eval`); writes go through `set`, also unchecked: every dst
    // register index was widened into the function's register file at lowering time.
    #[inline(always)]
    fn get(regs: &[Value], r: u32) -> Value {
        debug_assert!((r as usize) < regs.len());
        unsafe { *regs.get_unchecked(r as usize) }
    }
    #[inline(always)]
    fn set(regs: &mut [Value], r: u32, v: Value) {
        debug_assert!((r as usize) < regs.len());
        unsafe {
            *regs.get_unchecked_mut(r as usize) = v;
        }
    }
    loop {
        match &code[pc] {
            POp::MovR { dst, src } => {
                set(regs, *dst, get(regs, *src));
                pc += 1;
            }
            POp::MovI { dst, v } => {
                set(regs, *dst, *v);
                pc += 1;
            }
            POp::UnR { dst, op, src } => {
                set(regs, *dst, eval_unop(*op, get(regs, *src)));
                pc += 1;
            }
            POp::BinRR { dst, op, lhs, rhs } => {
                set(
                    regs,
                    *dst,
                    eval_binop(*op, get(regs, *lhs), get(regs, *rhs)),
                );
                pc += 1;
            }
            POp::BinRI { dst, op, lhs, rhs } => {
                set(regs, *dst, eval_binop(*op, get(regs, *lhs), *rhs));
                pc += 1;
            }
            POp::BinIR { dst, op, lhs, rhs } => {
                set(regs, *dst, eval_binop(*op, *lhs, get(regs, *rhs)));
                pc += 1;
            }
            POp::CmpRR {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, get(regs, *lhs), get(regs, *rhs))),
                );
                pc += 1;
            }
            POp::CmpRI {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, get(regs, *lhs), *rhs)),
                );
                pc += 1;
            }
            POp::CmpIR {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                set(
                    regs,
                    *dst,
                    Value::from_bool(eval_pred(*pred, *lhs, get(regs, *rhs))),
                );
                pc += 1;
            }
            POp::SelectB(data) => {
                let v = if eval(regs, data.cond).as_bool() {
                    eval(regs, data.on_true)
                } else {
                    eval(regs, data.on_false)
                };
                set(regs, data.dst, v);
                pc += 1;
            }
            POp::LoadR {
                dst,
                addr,
                offset,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                let v = if *private_ok {
                    tier.load_private(a)?
                } else {
                    tier.load(a)?
                };
                set(regs, *dst, v);
                pc += 1;
            }
            POp::LoadA { dst, addr } => {
                set(regs, *dst, tier.load(*addr)?);
                pc += 1;
            }
            POp::StoreRR {
                addr,
                offset,
                value,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                let v = get(regs, *value);
                if *private_ok {
                    tier.store_private(a, v)?;
                } else {
                    tier.store(a, v)?;
                }
                pc += 1;
            }
            POp::StoreRI {
                addr,
                offset,
                value,
                private_ok,
            } => {
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                if *private_ok {
                    tier.store_private(a, *value)?;
                } else {
                    tier.store(a, *value)?;
                }
                pc += 1;
            }
            POp::StoreAR { addr, value } => {
                tier.store(*addr, get(regs, *value))?;
                pc += 1;
            }
            POp::StoreAI { addr, value } => {
                tier.store(*addr, *value)?;
                pc += 1;
            }
            POp::AllocR { dst, words } => {
                let n = get(regs, *words).as_int().max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc(n)?));
                pc += 1;
            }
            POp::AllocI { dst, words } => {
                let n = (*words).max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc(n)?));
                pc += 1;
            }
            POp::PrivateAllocR { dst, words } => {
                let n = get(regs, *words).as_int().max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc_private(n)?));
                pc += 1;
            }
            POp::PrivateAllocI { dst, words } => {
                let n = (*words).max(0) as usize;
                set(regs, *dst, Value::Int(tier.alloc_private(n)?));
                pc += 1;
            }
            POp::Wait { lane } => {
                let lane_ix = *lane as usize;
                if !sync.lanes.poll(lane_ix, iteration) {
                    match wait_blocking(sync, telem, lane_ix, iteration, pc as u32) {
                        WaitOutcome::Passed => {}
                        WaitOutcome::Cancelled => return Ok(IterEnd::Cancelled),
                        WaitOutcome::Deadlocked { observed } => {
                            return Err(IterError::Deadlock {
                                lane: *lane,
                                pc: pc as u32,
                                observed,
                            });
                        }
                    }
                } else if let Some(t) = telem {
                    t.on_wait_fast(iteration, pc as u32);
                }
                pc += 1;
            }
            POp::SignalLane { lane } => {
                sync.lanes.signal(*lane as usize, iteration);
                sync.sleepers.wake_all();
                if let Some(t) = telem {
                    t.on_signal(iteration, pc as u32);
                }
                pc += 1;
            }
            POp::SignalControl => {
                on_control();
                pc += 1;
            }
            POp::CallB(call) => {
                let actuals: Vec<Value> = call.args.iter().map(|a| eval(regs, *a)).collect();
                let mut callee_regs: Vec<Value> = Vec::new();
                prepare_callee_regs(image, call.func, &actuals, &mut callee_regs);
                let end = run_flat(
                    image,
                    FuncId::new(call.func),
                    image.funcs[call.func as usize].entry_block,
                    None,
                    &mut callee_regs,
                    tier,
                    u64::MAX,
                )
                .map_err(|e| match e {
                    FlatError::Exec(e) => IterError::Exec(e),
                    FlatError::BudgetExceeded => unreachable!("callees are unmetered"),
                })?;
                let v = match end {
                    FlatEnd::Returned(v) => v,
                    FlatEnd::ReachedStop => unreachable!("no stop block in callee runs"),
                };
                if let Some(d) = call.dst {
                    set(regs, d, v.unwrap_or_default());
                }
                pc += 1;
            }
            POp::Jump { pc: target } => pc = *target as usize,
            POp::EndIter => return Ok(IterEnd::Completed),
            POp::ExitJump { block } => return Ok(IterEnd::Exit { block: *block }),
            POp::Branch {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let (target, block) = if get(regs, *cond).as_bool() {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
            POp::RetR { src } => return Ok(IterEnd::Returned(Some(get(regs, *src)))),
            POp::RetI { v } => return Ok(IterEnd::Returned(*v)),
            POp::Trap { block } => {
                return Err(IterError::Exec(ExecError::MissingTerminator(BlockId::new(
                    *block,
                ))));
            }
            POp::BinChainII {
                lhs,
                op1,
                i1,
                d1,
                op2,
                i2,
                d2,
            } => {
                let a = eval_binop(*op1, get(regs, *lhs), *i1);
                set(regs, *d1, a);
                set(regs, *d2, eval_binop(*op2, a, *i2));
                pc += 2;
            }
            POp::BinChain3II {
                lhs,
                op1,
                i1,
                d1,
                op2,
                i2,
                d2,
                op3,
                i3,
                d3,
            } => {
                let a = eval_binop(*op1, get(regs, *lhs), Value::Int(*i1));
                set(regs, *d1, a);
                let b = eval_binop(*op2, a, Value::Int(*i2));
                set(regs, *d2, b);
                set(regs, *d3, eval_binop(*op3, b, Value::Int(*i3)));
                pc += 3;
            }
            POp::BinChain3FF {
                lhs,
                op1,
                f1,
                d1,
                op2,
                f2,
                d2,
                op3,
                f3,
                d3,
            } => {
                let a = eval_binop(*op1, get(regs, *lhs), Value::Float(*f1));
                set(regs, *d1, a);
                let b = eval_binop(*op2, a, Value::Float(*f2));
                set(regs, *d2, b);
                set(regs, *d3, eval_binop(*op3, b, Value::Float(*f3)));
                pc += 3;
            }
            POp::BinChainRI {
                lhs,
                rhs,
                op1,
                d1,
                op2,
                i2,
                d2,
            } => {
                let a = eval_binop(*op1, get(regs, *lhs), get(regs, *rhs));
                set(regs, *d1, a);
                set(regs, *d2, eval_binop(*op2, a, *i2));
                pc += 2;
            }
            POp::LoadABin {
                laddr,
                ld,
                op,
                other,
                ld_on_lhs,
                dst,
            } => {
                let l = tier.load(*laddr)?;
                set(regs, *ld, l);
                let o = get(regs, *other);
                let v = if *ld_on_lhs {
                    eval_binop(*op, l, o)
                } else {
                    eval_binop(*op, o, l)
                };
                set(regs, *dst, v);
                pc += 2;
            }
            POp::BinStoreA {
                op,
                lhs,
                rhs,
                dst,
                saddr,
            } => {
                let v = eval_binop(*op, get(regs, *lhs), get(regs, *rhs));
                set(regs, *dst, v);
                tier.store(*saddr, v)?;
                pc += 2;
            }
            POp::StoreIdx {
                base,
                idx,
                dst,
                offset,
                value,
            } => {
                // Mirror the unfused BinIR+StoreRR pair exactly: the add goes through
                // eval_binop (a float index register must produce the same float-typed
                // dst and float-rounded address the sequential engine would).
                let v = eval_binop(BinOp::Add, Value::Int(*base), get(regs, *idx));
                set(regs, *dst, v);
                tier.store(v.as_int() + offset, get(regs, *value))?;
                pc += 2;
            }
            POp::RmwA {
                laddr,
                ld,
                op,
                other,
                ld_on_lhs,
                dst,
                saddr,
            } => {
                let l = tier.load(*laddr)?;
                set(regs, *ld, l);
                let o = get(regs, *other);
                let v = if *ld_on_lhs {
                    eval_binop(*op, l, o)
                } else {
                    eval_binop(*op, o, l)
                };
                set(regs, *dst, v);
                tier.store(*saddr, v)?;
                pc += 3;
            }
            POp::RmwR {
                addr,
                offset,
                ld,
                op,
                other,
                ld_on_lhs,
                dst,
                private_ok,
            } => {
                // The address register is provably unmodified by the window (fusion
                // guards `ld != addr && dst != addr`), so computing the address once is
                // bitwise what the unfused load/store pair would do.
                let base = get(regs, *addr).as_int();
                let a = base + offset;
                let l = if *private_ok {
                    tier.load_private(a)?
                } else {
                    tier.load(a)?
                };
                set(regs, *ld, l);
                let o = get(regs, *other);
                let v = if *ld_on_lhs {
                    eval_binop(*op, l, o)
                } else {
                    eval_binop(*op, o, l)
                };
                set(regs, *dst, v);
                if *private_ok {
                    tier.store_private(a, v)?;
                } else {
                    tier.store(a, v)?;
                }
                pc += 3;
            }
            POp::SignalMulti { lanes, width } => {
                for lane in lanes.iter() {
                    sync.lanes.signal(*lane as usize, iteration);
                }
                sync.sleepers.wake_all();
                if let Some(t) = telem {
                    // The fused window covers the constituent logical signal pcs.
                    for k in pc..pc + *width as usize {
                        if t.lane_of(k as u32) != crate::telemetry::NO_LANE {
                            t.on_signal(iteration, k as u32);
                        }
                    }
                }
                pc += *width as usize;
            }
            POp::CmpBrRI {
                dst,
                pred,
                lhs,
                imm,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let taken = eval_pred(*pred, get(regs, *lhs), *imm);
                set(regs, *dst, Value::from_bool(taken));
                let (target, block) = if taken {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
            POp::CmpBrRR {
                dst,
                pred,
                lhs,
                rhs,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                let taken = eval_pred(*pred, get(regs, *lhs), get(regs, *rhs));
                set(regs, *dst, Value::from_bool(taken));
                let (target, block) = if taken {
                    (*then_pc, *then_block)
                } else {
                    (*else_pc, *else_block)
                };
                match target {
                    PC_END_ITER => return Ok(IterEnd::Completed),
                    PC_EXIT => return Ok(IterEnd::Exit { block }),
                    t => pc = t as usize,
                }
            }
        }
    }
}

/// Sizes and seeds a callee register file inside `storage` for [`run_flat`].
pub(crate) fn prepare_callee_regs(
    image: &ExecImage,
    callee: u32,
    args: &[Value],
    storage: &mut Vec<Value>,
) {
    let cf = &image.funcs[callee as usize];
    storage.resize(cf.num_regs.max(args.len()), Value::default());
    for (slot, a) in storage.iter_mut().zip(args.iter()).take(cf.num_params) {
        *slot = *a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelExecutor;
    use helix_analysis::LoopNestingGraph;
    use helix_core::{transform, Helix, HelixConfig};
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{Machine, Module, Operand};
    use helix_profiler::profile_program_image;

    /// Analyzes `module`, transforms the hottest main-level plan and lowers it twice:
    /// fused and unfused.
    fn lower_both(
        module: &Module,
        main: FuncId,
    ) -> Option<(TransformedProgram, LoopImage, LoopImage)> {
        let nesting = LoopNestingGraph::new(module);
        let profile = profile_program_image(module, &nesting, main, &[]).ok()?;
        let output = Helix::new(HelixConfig::i7_980x()).analyze(module, &profile);
        let plan = output
            .plans
            .values()
            .filter(|p| p.func == main)
            .max_by_key(|p| profile.loop_profile((p.func, p.loop_id)).cycles)?
            .clone();
        let transformed = transform::apply(module, &plan);
        let exec = ExecImage::lower(&transformed.module);
        let fused = LoopImage::build_with_fusion(&exec, &transformed, true);
        let plain = LoopImage::build_with_fusion(&exec, &transformed, false);
        Some((transformed, fused, plain))
    }

    /// An accumulator kernel with a long ALU chain (chain-fusion bait) and a
    /// load-add-store global accumulation (RMW bait).
    fn chain_accumulator() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("chain_acc");
        let acc = mb.add_global("acc", 1);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(64), 1);
        let mut v = fb.binary_to_new(
            helix_ir::BinOp::Mul,
            Operand::Var(lh.induction_var),
            Operand::int(2654435761),
        );
        for round in 0..6 {
            v = fb.binary_to_new(
                helix_ir::BinOp::Xor,
                Operand::Var(v),
                Operand::int(17 + round),
            );
        }
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(cur), Operand::Var(v));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        mb.add_function(fb.finish());
        let module = mb.finish();
        let main = module.function_by_name("main").unwrap();
        (module, main)
    }

    /// A loop whose two global accumulators live in different branch arms: two sequential
    /// segments that survive Step 6 merging, with frontier signals meeting at the join.
    fn two_segment_witness() -> (Module, FuncId) {
        let mut mb = ModuleBuilder::new("two_segs");
        let a = mb.add_global("a", 1);
        let b = mb.add_global("b", 1);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(32), 1);
        let mixed = fb.binary_to_new(
            helix_ir::BinOp::Mul,
            Operand::Var(lh.induction_var),
            Operand::int(3),
        );
        let bit = fb.binary_to_new(
            helix_ir::BinOp::And,
            Operand::Var(lh.induction_var),
            Operand::int(1),
        );
        let ie = fb.if_else(Operand::Var(bit));
        let ca = fb.new_var();
        fb.load(ca, Operand::Global(a), 0);
        let na = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(ca), Operand::Var(mixed));
        fb.store(Operand::Global(a), 0, Operand::Var(na));
        fb.br(ie.join);
        fb.switch_to(ie.else_bb);
        let cb = fb.new_var();
        fb.load(cb, Operand::Global(b), 0);
        let nb = fb.binary_to_new(helix_ir::BinOp::Xor, Operand::Var(cb), Operand::Var(mixed));
        fb.store(Operand::Global(b), 0, Operand::Var(nb));
        fb.br(ie.join);
        fb.switch_to(ie.join);
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let ra = fb.new_var();
        fb.load(ra, Operand::Global(a), 0);
        let rb = fb.new_var();
        fb.load(rb, Operand::Global(b), 0);
        let sum = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(ra), Operand::Var(rb));
        fb.ret(Some(Operand::Var(sum)));
        mb.add_function(fb.finish());
        let module = mb.finish();
        let main = module.function_by_name("main").unwrap();
        (module, main)
    }

    #[test]
    fn fusion_produces_chains_and_rmw_superinstructions() {
        let (module, main) = chain_accumulator();
        let (_t, fused, plain) = lower_both(&module, main).expect("plan exists");
        let chains = fused
            .pcode
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    POp::BinChainII { .. } | POp::BinChain3II { .. } | POp::BinChainRI { .. }
                )
            })
            .count();
        let rmws = fused
            .pcode
            .iter()
            .filter(|p| matches!(p, POp::RmwA { .. }))
            .count();
        assert!(chains >= 1, "the 7-op ALU chain must fuse");
        assert!(
            rmws >= 1,
            "the load-add-store accumulation must fuse into an RMW"
        );
        let longest = fused
            .pcode
            .iter()
            .filter_map(|p| match p {
                POp::BinChain3II { .. } => Some(3),
                POp::BinChainII { .. } | POp::BinChainRI { .. } => Some(2),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(
            longest >= 3,
            "chains longer than a pair must form, got {longest}"
        );
        assert!(plain.pcode.iter().all(|p| p.fused_width() == 1));
    }

    #[test]
    fn fusion_never_crosses_block_or_segment_boundaries() {
        for (name, module, main) in helix_workloads::corpus::load_all().expect("corpus") {
            let Some((_t, fused, _plain)) = lower_both(&module, main) else {
                continue;
            };
            for pc in 0..fused.pcode.len() {
                let width = fused.pcode[pc].fused_width();
                if width <= 1 {
                    continue;
                }
                let end = pc + width;
                assert!(end <= fused.pcode.len(), "{name}: window at {pc} overruns");
                // Never across a block boundary.
                for k in pc..end {
                    assert_eq!(
                        fused.pc_block[k], fused.pc_block[pc],
                        "{name}: fused window {pc}..{end} crosses a block boundary"
                    );
                }
                // Never across a segment's [first, last] sync boundary: a window either
                // lies entirely inside the open span or entirely outside it, and only
                // signal-coalescing windows may contain sync ops at all.
                let is_multi = matches!(fused.pcode[pc], POp::SignalMulti { .. });
                for lane in &fused.lanes {
                    let (first, last) = (lane.first_pc as usize, lane.last_pc as usize);
                    for &boundary in &[first, last] {
                        assert!(
                            !(pc < boundary && boundary < end) || is_multi,
                            "{name}: window {pc}..{end} straddles sync pc {boundary}"
                        );
                    }
                }
                if !is_multi {
                    for k in pc..end {
                        assert!(
                            !matches!(fused.code[k], Op::Wait { .. } | Op::Signal { .. }),
                            "{name}: non-signal window {pc}..{end} swallowed a sync op"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fusion_preserves_restore_regs_and_side_tables() {
        for (_name, module, main) in helix_workloads::corpus::load_all().expect("corpus") {
            let Some((_t, fused, plain)) = lower_both(&module, main) else {
                continue;
            };
            assert_eq!(fused.restore_regs, plain.restore_regs);
            assert_eq!(fused.code.len(), plain.code.len());
            assert_eq!(fused.lanes.len(), plain.lanes.len());
            assert_eq!(fused.entry_pc, plain.entry_pc);
            assert!(fused.num_phys_lanes() <= plain.num_phys_lanes());
        }
    }

    #[test]
    fn fused_and_unfused_images_execute_bitwise_identically() {
        for (name, module, main) in helix_workloads::corpus::load_all().expect("corpus") {
            let Some((transformed, fused, plain)) = lower_both(&module, main) else {
                continue;
            };
            let mut machine = Machine::new(&transformed.module);
            let expected = machine.call(transformed.parallel_func, &[]).unwrap();
            let exec = ExecImage::lower(&transformed.module);
            for threads in [1, 2, 4] {
                let executor = ParallelExecutor::new(threads)
                    .with_wait_profile(crate::pool::WaitProfile::DEDICATED);
                let got_fused = executor
                    .run_lowered(&exec, &fused, &[])
                    .unwrap_or_else(|e| panic!("{name} fused {threads}t: {e}"));
                let got_plain = executor
                    .run_lowered(&exec, &plain, &[])
                    .unwrap_or_else(|e| panic!("{name} plain {threads}t: {e}"));
                assert_eq!(got_fused, expected, "{name} fused diverged at {threads}t");
                assert_eq!(got_plain, expected, "{name} plain diverged at {threads}t");
            }
        }
    }

    #[test]
    fn adjacent_signals_coalesce_into_one_publish() {
        // Two synchronized segments whose Step 4 placement ends at the shared latch emit
        // adjacent end-of-iteration signals: they must share a physical lane row (one
        // cross-thread store) or at least collapse into one SignalMulti dispatch.
        let mut found_multi_or_merge = false;
        for (_name, module, main) in helix_workloads::corpus::load_all().expect("corpus") {
            let Some((_t, fused, _plain)) = lower_both(&module, main) else {
                continue;
            };
            if fused.num_phys_lanes() < fused.lanes.len()
                || fused
                    .pcode
                    .iter()
                    .any(|p| matches!(p, POp::SignalMulti { .. }))
            {
                found_multi_or_merge = true;
            }
            // The mapping must stay a function onto [0, num_phys).
            for &p in &fused.phys_of {
                assert!((p as usize) < fused.num_phys.max(1));
            }
        }
        // The corpus currently carries single-segment plans; build a two-segment witness:
        // two accumulators updated in *different branch arms* (so Step 6 cannot merge their
        // non-touching segments), whose frontier signal points both land at the join block
        // — the adjacent-signal shape.
        let (module, main) = two_segment_witness();
        if let Some((_t, fused, plain)) = lower_both(&module, main) {
            if fused.lanes.len() >= 2 {
                assert!(
                    fused.num_phys_lanes() < plain.num_phys_lanes()
                        || fused
                            .pcode
                            .iter()
                            .any(|p| matches!(p, POp::SignalMulti { .. })),
                    "two latch-adjacent segments must coalesce"
                );
                found_multi_or_merge = true;
            }
        }
        assert!(
            found_multi_or_merge,
            "no coalescing opportunity found anywhere"
        );
    }

    #[test]
    fn store_idx_fusion_preserves_float_index_semantics() {
        // `slot = out_base + f` with a *float* index register: the fused StoreIdx must
        // keep the float-typed dst register and the float-rounded address the unfused
        // BinIR+StoreRR pair produces (an early fused version truncated the index to an
        // integer before the add — a bitwise divergence the differential oracle counts
        // as a soundness bug).
        let mut mb = ModuleBuilder::new("fidx");
        let out = mb.add_global("out", 16);
        let acc = mb.add_global("acc", 1);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(8), 1);
        // The synchronized accumulator segment comes *first*, so Theorem 1 covers the
        // out-store's dependence: no Wait lands before the store and the
        // address-computation + store pair stays adjacent (fusable).
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(
            helix_ir::BinOp::Add,
            Operand::Var(cur),
            Operand::Var(lh.induction_var),
        );
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        let f = fb.unary_to_new(helix_ir::UnOp::ToFloat, Operand::Var(lh.induction_var));
        let half = fb.binary_to_new(helix_ir::BinOp::Mul, Operand::Var(f), Operand::float(0.75));
        let slot = fb.binary_to_new(
            helix_ir::BinOp::Add,
            Operand::Global(out),
            Operand::Var(half),
        );
        fb.store(Operand::Var(slot), 0, Operand::Var(lh.induction_var));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let mut sum = fb.load_to_new(Operand::Global(acc), 0);
        for k in 0..6i64 {
            let w = fb.load_to_new(Operand::Global(out), k);
            sum = fb.binary_to_new(helix_ir::BinOp::Xor, Operand::Var(sum), Operand::Var(w));
        }
        fb.ret(Some(Operand::Var(sum)));
        mb.add_function(fb.finish());
        let module = mb.finish();
        let main = module.function_by_name("main").unwrap();
        let (transformed, fused, plain) = lower_both(&module, main).expect("plan exists");
        assert!(
            fused
                .pcode
                .iter()
                .any(|p| matches!(p, POp::StoreIdx { .. })),
            "the float-indexed store must still fuse"
        );
        let mut machine = Machine::new(&transformed.module);
        let expected = machine.call(transformed.parallel_func, &[]).unwrap();
        let exec = ExecImage::lower(&transformed.module);
        let executor =
            ParallelExecutor::new(2).with_wait_profile(crate::pool::WaitProfile::DEDICATED);
        assert_eq!(executor.run_lowered(&exec, &fused, &[]).unwrap(), expected);
        assert_eq!(executor.run_lowered(&exec, &plain, &[]).unwrap(), expected);
    }

    #[test]
    fn float_chain_triples_fuse_and_match_unfused() {
        // Three chained float-immediate binops (`a = f * 1.5; b = a + 0.25; c = b * 0.75`)
        // must fuse into one width-3 BinChain3FF — and the fused body must reproduce the
        // unfused ops' float results bit for bit at every thread count.
        let mut mb = ModuleBuilder::new("fchain");
        let acc = mb.add_global("acc", 1);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(64), 1);
        let f = fb.unary_to_new(helix_ir::UnOp::ToFloat, Operand::Var(lh.induction_var));
        let a = fb.binary_to_new(helix_ir::BinOp::Mul, Operand::Var(f), Operand::float(1.5));
        let b = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(a), Operand::float(0.25));
        let c = fb.binary_to_new(helix_ir::BinOp::Mul, Operand::Var(b), Operand::float(0.75));
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(cur), Operand::Var(c));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        mb.add_function(fb.finish());
        let module = mb.finish();
        let main = module.function_by_name("main").unwrap();
        let (transformed, fused, plain) = lower_both(&module, main).expect("plan exists");
        assert!(
            fused
                .pcode
                .iter()
                .any(|p| matches!(p, POp::BinChain3FF { .. })),
            "the all-float immediate triple must fuse: {}",
            fused.fusion_summary()
        );
        let mut machine = Machine::new(&transformed.module);
        let expected = machine.call(transformed.parallel_func, &[]).unwrap();
        let exec = ExecImage::lower(&transformed.module);
        for threads in [1, 2, 4] {
            let executor = ParallelExecutor::new(threads)
                .with_wait_profile(crate::pool::WaitProfile::DEDICATED);
            assert_eq!(
                executor.run_lowered(&exec, &fused, &[]).unwrap(),
                expected,
                "fused diverged at {threads}t"
            );
            assert_eq!(
                executor.run_lowered(&exec, &plain, &[]).unwrap(),
                expected,
                "plain diverged at {threads}t"
            );
        }
    }

    #[test]
    fn register_addressed_rmw_fuses_and_matches_unfused() {
        // A histogram-style accumulation through a register-held address
        // (`out[iv & 3] ^= x`): `slot = base + bit; ld = load slot; bin; store slot <- dst`
        // must fuse the load/bin/store tail into a width-3 RmwR, and run bitwise like the
        // unfused window at every thread count.
        let mut mb = ModuleBuilder::new("rmwr");
        let out = mb.add_global("out", 4);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(64), 1);
        let x = fb.binary_to_new(
            helix_ir::BinOp::Mul,
            Operand::Var(lh.induction_var),
            Operand::int(2654435761),
        );
        let bit = fb.binary_to_new(
            helix_ir::BinOp::And,
            Operand::Var(lh.induction_var),
            Operand::int(3),
        );
        let slot = fb.binary_to_new(
            helix_ir::BinOp::Add,
            Operand::Global(out),
            Operand::Var(bit),
        );
        let cur = fb.load_to_new(Operand::Var(slot), 0);
        let next = fb.binary_to_new(helix_ir::BinOp::Xor, Operand::Var(cur), Operand::Var(x));
        fb.store(Operand::Var(slot), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let mut sum = fb.load_to_new(Operand::Global(out), 0);
        for k in 1..4i64 {
            let w = fb.load_to_new(Operand::Global(out), k);
            sum = fb.binary_to_new(helix_ir::BinOp::Add, Operand::Var(sum), Operand::Var(w));
        }
        fb.ret(Some(Operand::Var(sum)));
        mb.add_function(fb.finish());
        let module = mb.finish();
        let main = module.function_by_name("main").unwrap();
        let (transformed, fused, plain) = lower_both(&module, main).expect("plan exists");
        assert!(
            fused.pcode.iter().any(|p| matches!(p, POp::RmwR { .. })),
            "the register-addressed RMW must fuse: {}",
            fused.fusion_summary()
        );
        let mut machine = Machine::new(&transformed.module);
        let expected = machine.call(transformed.parallel_func, &[]).unwrap();
        let exec = ExecImage::lower(&transformed.module);
        for threads in [1, 2, 4] {
            let executor = ParallelExecutor::new(threads)
                .with_wait_profile(crate::pool::WaitProfile::DEDICATED);
            assert_eq!(
                executor.run_lowered(&exec, &fused, &[]).unwrap(),
                expected,
                "fused diverged at {threads}t"
            );
            assert_eq!(
                executor.run_lowered(&exec, &plain, &[]).unwrap(),
                expected,
                "plain diverged at {threads}t"
            );
        }
    }

    #[test]
    fn fused_segment_costs_are_no_larger() {
        let cost = CostModel::default();
        for (_name, module, main) in helix_workloads::corpus::load_all().expect("corpus") {
            let Some((_t, fused, plain)) = lower_both(&module, main) else {
                continue;
            };
            let fused_costs: BTreeMap<DepId, u64> =
                fused.segment_span_cycles(&cost).into_iter().collect();
            for (dep, plain_cycles) in plain.segment_span_cycles(&cost) {
                let f = fused_costs[&dep];
                assert!(
                    f <= plain_cycles,
                    "fusion must not raise a segment's measured cost ({f} > {plain_cycles})"
                );
            }
        }
    }
}
