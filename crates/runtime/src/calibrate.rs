//! The runtime micro-calibrator: measures, on the machine the runtime actually runs on,
//! the quantities the HELIX cost model otherwise takes from the paper's i7-980X — per-op
//! dispatch cost by class, the cross-thread signal latency through [`SignalLanes`], and
//! the worker-pool wake cost — and packages them as a [`CalibrationProfile`] that the
//! selection pipeline consumes.
//!
//! The ROADMAP's "loop-selection recalibration" item, closed: Section 2.2's selection
//! model prices signals with `HelixConfig::selection_signal_latency`, and Figures 12–13 of
//! the paper show how badly mis-estimating that one number distorts selection. On this
//! interpreter the honest numbers are nothing like the paper's silicon constants — a
//! dispatched op costs nanoseconds (not a cycle), and a cross-thread signal handoff on an
//! oversubscribed host costs a scheduler round-trip (microseconds, not 110 cycles). The
//! calibrator measures both in the same currency and [`CalibrationProfile::helix_config`]
//! rewrites the config so selection, segment pricing ([`CalibrationProfile::cost_model`]),
//! prefetch scheduling and the simulator all price plans with measured numbers.
//!
//! Measurement is deliberately cheap (a few milliseconds, cached process-wide behind
//! [`CalibrationProfile::cached`]) and robust: every micro-benchmark takes the *minimum*
//! over repetitions, and per-op costs are derived from the slope between a long and a
//! short kernel so fixed call overhead cancels.

use crate::lanes::SignalLanes;
use crate::parallel_image::{run_flat, LocalTier};
use crate::pool::WorkerPool;
use crate::sharded::PrivateArena;
use crate::threaded::{run_flat_threaded, DispatchTier, FlatTables};
use helix_core::HelixConfig;
use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
use helix_ir::{BinOp, CostModel, ExecImage, FuncId, Operand, Pred, Value};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The op classes the calibrator times individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kernel {
    Alu,
    Mul,
    Div,
    Load,
    Store,
}

/// Measured machine constants, in nanoseconds, plus the topology they were measured on.
///
/// All per-op numbers are *lean-engine dispatch costs* — what one executed op of that
/// class costs end to end in the runtime's interpreter, dominated by dispatch rather than
/// the ALU work itself. That is the right currency: the speedup model compares segment
/// cycles against signal latencies, and both must be priced in what *this* runtime pays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationProfile {
    /// ns per dispatched ALU-class op (add/xor/compare/move) in the switch tier.
    pub alu_ns: f64,
    /// ns per dispatched multiply in the switch tier.
    pub mul_ns: f64,
    /// ns per dispatched divide/remainder in the switch tier.
    pub div_ns: f64,
    /// ns per dispatched load in the switch tier.
    pub load_ns: f64,
    /// ns per dispatched store in the switch tier.
    pub store_ns: f64,
    /// ns per dispatched ALU-class op in the direct-threaded tier.
    pub alu_threaded_ns: f64,
    /// ns per dispatched multiply in the direct-threaded tier.
    pub mul_threaded_ns: f64,
    /// ns per dispatched divide/remainder in the direct-threaded tier.
    pub div_threaded_ns: f64,
    /// ns per dispatched load in the direct-threaded tier.
    pub load_threaded_ns: f64,
    /// ns per dispatched store in the direct-threaded tier.
    pub store_threaded_ns: f64,
    /// ns per ALU-class op in the template-JIT tier (native straight-line code; where the
    /// JIT is unsupported these mirror the threaded costs, see `measure`).
    pub alu_jit_ns: f64,
    /// ns per multiply in the template-JIT tier.
    pub mul_jit_ns: f64,
    /// ns per divide/remainder in the template-JIT tier.
    pub div_jit_ns: f64,
    /// ns per dispatched load in the template-JIT tier (loads are not JIT-covered, so
    /// this is threaded dispatch measured under the JIT configuration).
    pub load_jit_ns: f64,
    /// ns per dispatched store in the template-JIT tier (same caveat as loads).
    pub store_jit_ns: f64,
    /// Cross-thread signal latency: publish on one thread → observed by a poll on another,
    /// measured as half a [`SignalLanes`] ping-pong round trip. On an oversubscribed host
    /// this includes the scheduler handoff — the honest cost of an unprefetched signal.
    pub signal_observe_ns: f64,
    /// Local cost of publishing one signal lane (the `fetch_max` + waker check).
    pub signal_publish_ns: f64,
    /// Cost of a satisfied `Wait` poll (the published line is already local) — the
    /// measured analogue of the paper's fully-prefetched 4-cycle signal.
    pub signal_poll_ns: f64,
    /// Worker-pool round trip: submit a no-op job to one helper and join it — the measured
    /// per-invocation configuration overhead (`Conf_i`).
    pub pool_wake_ns: f64,
    /// Hardware threads the OS reports for this process.
    pub hardware_threads: usize,
}

impl CalibrationProfile {
    /// Measures the machine. Takes a few milliseconds; prefer
    /// [`CalibrationProfile::cached`] unless a fresh measurement is explicitly wanted.
    pub fn measure() -> CalibrationProfile {
        let alu_ns = per_op_ns(Kernel::Alu, DispatchTier::Switch);
        let mul_ns = per_op_ns(Kernel::Mul, DispatchTier::Switch).max(alu_ns);
        let div_ns = per_op_ns(Kernel::Div, DispatchTier::Switch).max(alu_ns);
        let load_ns = per_op_ns(Kernel::Load, DispatchTier::Switch).max(alu_ns);
        let store_ns = per_op_ns(Kernel::Store, DispatchTier::Switch).max(alu_ns);
        let alu_threaded_ns = per_op_ns(Kernel::Alu, DispatchTier::Threaded);
        let mul_threaded_ns = per_op_ns(Kernel::Mul, DispatchTier::Threaded).max(alu_threaded_ns);
        let div_threaded_ns = per_op_ns(Kernel::Div, DispatchTier::Threaded).max(alu_threaded_ns);
        let load_threaded_ns = per_op_ns(Kernel::Load, DispatchTier::Threaded).max(alu_threaded_ns);
        let store_threaded_ns =
            per_op_ns(Kernel::Store, DispatchTier::Threaded).max(alu_threaded_ns);
        // Where the JIT cannot run, its honest cost *is* the threaded cost (that is what
        // the Jit tier degrades to), so mirror rather than invent numbers.
        let (alu_jit_ns, mul_jit_ns, div_jit_ns, load_jit_ns, store_jit_ns) =
            if crate::jit::jit_supported() {
                let alu = per_op_ns(Kernel::Alu, DispatchTier::Jit);
                (
                    alu,
                    per_op_ns(Kernel::Mul, DispatchTier::Jit).max(alu),
                    per_op_ns(Kernel::Div, DispatchTier::Jit).max(alu),
                    per_op_ns(Kernel::Load, DispatchTier::Jit).max(alu),
                    per_op_ns(Kernel::Store, DispatchTier::Jit).max(alu),
                )
            } else {
                (
                    alu_threaded_ns,
                    mul_threaded_ns,
                    div_threaded_ns,
                    load_threaded_ns,
                    store_threaded_ns,
                )
            };
        let (signal_observe_ns, signal_publish_ns, signal_poll_ns) = signal_latencies();
        let pool_wake_ns = pool_wake();
        CalibrationProfile {
            alu_ns,
            mul_ns,
            div_ns,
            load_ns,
            store_ns,
            alu_threaded_ns,
            mul_threaded_ns,
            div_threaded_ns,
            load_threaded_ns,
            store_threaded_ns,
            alu_jit_ns,
            mul_jit_ns,
            div_jit_ns,
            load_jit_ns,
            store_jit_ns,
            signal_observe_ns,
            signal_publish_ns,
            signal_poll_ns,
            pool_wake_ns,
            hardware_threads: crate::pool::detect_hardware_threads(),
        }
    }

    /// The process-wide profile, measured once on first use.
    pub fn cached() -> &'static CalibrationProfile {
        static PROFILE: OnceLock<CalibrationProfile> = OnceLock::new();
        PROFILE.get_or_init(CalibrationProfile::measure)
    }

    /// Per-class dispatch costs `[alu, mul, div, load, store]` of `tier`, in ns.
    /// [`DispatchTier::Auto`] resolves through [`CalibrationProfile::selected_tier`].
    pub fn dispatch_ns(&self, tier: DispatchTier) -> [f64; 5] {
        match tier {
            DispatchTier::Switch => [
                self.alu_ns,
                self.mul_ns,
                self.div_ns,
                self.load_ns,
                self.store_ns,
            ],
            DispatchTier::Threaded => [
                self.alu_threaded_ns,
                self.mul_threaded_ns,
                self.div_threaded_ns,
                self.load_threaded_ns,
                self.store_threaded_ns,
            ],
            DispatchTier::Jit => [
                self.alu_jit_ns,
                self.mul_jit_ns,
                self.div_jit_ns,
                self.load_jit_ns,
                self.store_jit_ns,
            ],
            DispatchTier::Auto => self.dispatch_ns(self.selected_tier()),
        }
    }

    /// The dispatch tier that measured fastest on this machine, by mean per-op dispatch
    /// cost across the five kernel classes. The JIT tier is considered only where it can
    /// actually run ([`crate::jit::jit_supported`]) and only on a *strict* win — mirrored
    /// profiles (v1/v2 files, unsupported hosts) therefore never select it. Remaining
    /// ties go to the threaded tier (it is the one with the flat-profile branch predictor
    /// win the microkernels cannot see).
    pub fn selected_tier(&self) -> DispatchTier {
        let mean = |c: [f64; 5]| c.iter().sum::<f64>() / 5.0;
        let threaded = mean(self.dispatch_ns(DispatchTier::Threaded));
        let switch = mean(self.dispatch_ns(DispatchTier::Switch));
        if crate::jit::jit_supported()
            && mean(self.dispatch_ns(DispatchTier::Jit)) < threaded.min(switch)
        {
            DispatchTier::Jit
        } else if threaded <= switch {
            DispatchTier::Threaded
        } else {
            DispatchTier::Switch
        }
    }

    /// Nanoseconds per *model cycle*: the measured ALU dispatch of the selected tier
    /// anchors the currency (an ALU op costs 1 cycle in every [`CostModel`]).
    pub fn ns_per_cycle(&self) -> f64 {
        self.dispatch_ns(DispatchTier::Auto)[0].max(0.05)
    }

    fn cycles(&self, ns: f64) -> u64 {
        (ns / self.ns_per_cycle()).round().max(1.0) as u64
    }

    /// The measured intra-core cost model: per-class dispatch costs of the *selected*
    /// tier — the one the executor will actually run — converted into model cycles
    /// (ALU = 1 by construction). In an interpreter, dispatch dominates, so the classes
    /// are much flatter than silicon's — exactly what segment pricing should use.
    pub fn cost_model(&self) -> CostModel {
        let paper = CostModel::intel_i7_980x();
        let [_, mul_ns, div_ns, load_ns, store_ns] = self.dispatch_ns(DispatchTier::Auto);
        CostModel {
            alu: 1,
            mul: self.cycles(mul_ns),
            div: self.cycles(div_ns),
            load: self.cycles(load_ns),
            store: self.cycles(store_ns),
            // Calls and allocations are not micro-timed (rare in loop bodies); scale the
            // paper's ratios by the measured load cost so they stay plausible.
            call: (paper.call * self.cycles(load_ns)).max(1) / paper.load.max(1),
            alloc: (paper.alloc * self.cycles(load_ns)).max(1) / paper.load.max(1),
            branch: 1,
            wait_local: self.cycles(self.signal_poll_ns),
            signal: self.cycles(self.signal_publish_ns),
        }
    }

    /// Rewrites `base` so every latency the selection model, the prefetch scheduler and
    /// the simulator consult is the measured one:
    ///
    /// * run-time signal latencies (`signal_latency_unprefetched`/`_prefetched`) become the
    ///   measured cross-thread observe / local poll costs,
    /// * the *selection* latencies follow them — the whole point of the feedback loop,
    /// * word transfer rides the same cache-line handoff as a signal,
    /// * the per-invocation configuration overhead becomes the measured pool wake cost,
    /// * helper-thread prefetching is disabled: this runtime implements no SMT signal
    ///   prefetchers (a ROADMAP item), so pricing signals as prefetched would repeat the
    ///   very misestimation the calibration exists to remove.
    pub fn helix_config(&self, base: HelixConfig) -> HelixConfig {
        let mut config = base;
        config.signal_latency_unprefetched = self.cycles(self.signal_observe_ns);
        config.signal_latency_prefetched = self.cycles(self.signal_poll_ns);
        config.selection_signal_latency = config.signal_latency_unprefetched;
        config.selection_signal_latency_prefetched = config.signal_latency_prefetched;
        config.word_transfer_latency = self.cycles(self.signal_observe_ns);
        config.config_overhead = self.cycles(self.pool_wake_ns);
        config.enable_helper_threads = false;
        config.enable_prefetch_balancing = false;
        config
    }

    /// Like [`CalibrationProfile::helix_config`], but priced for the configuration the
    /// executor will *actually run* with `workers` effective workers. With one effective
    /// worker (the executor's oversubscription collapse) nothing ever crosses a thread:
    /// a signal is a local release store and a satisfied poll, the "word transfer" stays
    /// in-cache, and no pool helper is woken — pricing those at the cross-thread rate
    /// would mis-select exactly the way the paper's Figure 12 warns about, just in the
    /// other direction.
    pub fn helix_config_for_workers(&self, base: HelixConfig, workers: usize) -> HelixConfig {
        if workers > 1 {
            return self.helix_config(base);
        }
        let mut config = self.helix_config(base);
        let local = self
            .cycles(self.signal_publish_ns + self.signal_poll_ns)
            .max(1);
        config.signal_latency_unprefetched = local;
        config.signal_latency_prefetched = local;
        config.selection_signal_latency = local;
        config.selection_signal_latency_prefetched = local;
        config.word_transfer_latency = local;
        config.config_overhead = local;
        config
    }

    /// Serializes the profile as the `helix-calibration v3` text format (one `key value`
    /// pair per line), the format `helix parallelize --calibration-file` reads and
    /// writes. v2 extended v1 with the direct-threaded tier's per-class costs
    /// (`*_threaded_ns`); v3 adds the template-JIT tier's (`*_jit_ns`).
    /// [`CalibrationProfile::from_text`] still reads v1 and v2 files.
    pub fn to_text(&self) -> String {
        format!(
            "helix-calibration v3\n\
             alu_ns {}\nmul_ns {}\ndiv_ns {}\nload_ns {}\nstore_ns {}\n\
             alu_threaded_ns {}\nmul_threaded_ns {}\ndiv_threaded_ns {}\n\
             load_threaded_ns {}\nstore_threaded_ns {}\n\
             alu_jit_ns {}\nmul_jit_ns {}\ndiv_jit_ns {}\n\
             load_jit_ns {}\nstore_jit_ns {}\n\
             signal_observe_ns {}\nsignal_publish_ns {}\nsignal_poll_ns {}\n\
             pool_wake_ns {}\nhardware_threads {}\n",
            self.alu_ns,
            self.mul_ns,
            self.div_ns,
            self.load_ns,
            self.store_ns,
            self.alu_threaded_ns,
            self.mul_threaded_ns,
            self.div_threaded_ns,
            self.load_threaded_ns,
            self.store_threaded_ns,
            self.alu_jit_ns,
            self.mul_jit_ns,
            self.div_jit_ns,
            self.load_jit_ns,
            self.store_jit_ns,
            self.signal_observe_ns,
            self.signal_publish_ns,
            self.signal_poll_ns,
            self.pool_wake_ns,
            self.hardware_threads,
        )
    }

    /// Parses the `helix-calibration v3` text format, accepting v1 and v2 files too.
    /// Older files predate the newer tiers, so their most-refined measured costs stand in
    /// for the missing ones (v1 → threaded and JIT mirror the switch costs; v2 → JIT
    /// mirrors the threaded costs). A mirrored JIT column never *wins* selection — see
    /// [`CalibrationProfile::selected_tier`] — so old files keep their old behavior.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_text(text: &str) -> Result<CalibrationProfile, String> {
        let mut lines = text.lines();
        let version = match lines.next() {
            Some("helix-calibration v1") => 1,
            Some("helix-calibration v2") => 2,
            Some("helix-calibration v3") => 3,
            other => return Err(format!("bad calibration header: {other:?}")),
        };
        let mut profile = CalibrationProfile {
            alu_ns: f64::NAN,
            mul_ns: f64::NAN,
            div_ns: f64::NAN,
            load_ns: f64::NAN,
            store_ns: f64::NAN,
            alu_threaded_ns: f64::NAN,
            mul_threaded_ns: f64::NAN,
            div_threaded_ns: f64::NAN,
            load_threaded_ns: f64::NAN,
            store_threaded_ns: f64::NAN,
            alu_jit_ns: f64::NAN,
            mul_jit_ns: f64::NAN,
            div_jit_ns: f64::NAN,
            load_jit_ns: f64::NAN,
            store_jit_ns: f64::NAN,
            signal_observe_ns: f64::NAN,
            signal_publish_ns: f64::NAN,
            signal_poll_ns: f64::NAN,
            pool_wake_ns: f64::NAN,
            hardware_threads: 0,
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed calibration line: {line:?}"))?;
            let parse = |v: &str| {
                v.parse::<f64>()
                    .map_err(|_| format!("bad value for {key}: {v:?}"))
            };
            match key {
                "alu_ns" => profile.alu_ns = parse(value)?,
                "mul_ns" => profile.mul_ns = parse(value)?,
                "div_ns" => profile.div_ns = parse(value)?,
                "load_ns" => profile.load_ns = parse(value)?,
                "store_ns" => profile.store_ns = parse(value)?,
                "alu_threaded_ns" => profile.alu_threaded_ns = parse(value)?,
                "mul_threaded_ns" => profile.mul_threaded_ns = parse(value)?,
                "div_threaded_ns" => profile.div_threaded_ns = parse(value)?,
                "load_threaded_ns" => profile.load_threaded_ns = parse(value)?,
                "store_threaded_ns" => profile.store_threaded_ns = parse(value)?,
                "alu_jit_ns" => profile.alu_jit_ns = parse(value)?,
                "mul_jit_ns" => profile.mul_jit_ns = parse(value)?,
                "div_jit_ns" => profile.div_jit_ns = parse(value)?,
                "load_jit_ns" => profile.load_jit_ns = parse(value)?,
                "store_jit_ns" => profile.store_jit_ns = parse(value)?,
                "signal_observe_ns" => profile.signal_observe_ns = parse(value)?,
                "signal_publish_ns" => profile.signal_publish_ns = parse(value)?,
                "signal_poll_ns" => profile.signal_poll_ns = parse(value)?,
                "pool_wake_ns" => profile.pool_wake_ns = parse(value)?,
                "hardware_threads" => {
                    profile.hardware_threads = value
                        .parse()
                        .map_err(|_| format!("bad value for hardware_threads: {value:?}"))?;
                }
                other => return Err(format!("unknown calibration key: {other:?}")),
            }
        }
        if version < 2 {
            profile.alu_threaded_ns = profile.alu_ns;
            profile.mul_threaded_ns = profile.mul_ns;
            profile.div_threaded_ns = profile.div_ns;
            profile.load_threaded_ns = profile.load_ns;
            profile.store_threaded_ns = profile.store_ns;
        }
        if version < 3 {
            profile.alu_jit_ns = profile.alu_threaded_ns;
            profile.mul_jit_ns = profile.mul_threaded_ns;
            profile.div_jit_ns = profile.div_threaded_ns;
            profile.load_jit_ns = profile.load_threaded_ns;
            profile.store_jit_ns = profile.store_threaded_ns;
        }
        let fields = [
            profile.alu_ns,
            profile.mul_ns,
            profile.div_ns,
            profile.load_ns,
            profile.store_ns,
            profile.alu_threaded_ns,
            profile.mul_threaded_ns,
            profile.div_threaded_ns,
            profile.load_threaded_ns,
            profile.store_threaded_ns,
            profile.alu_jit_ns,
            profile.mul_jit_ns,
            profile.div_jit_ns,
            profile.load_jit_ns,
            profile.store_jit_ns,
            profile.signal_observe_ns,
            profile.signal_publish_ns,
            profile.signal_poll_ns,
            profile.pool_wake_ns,
        ];
        if fields.iter().any(|f| !f.is_finite() || *f <= 0.0) || profile.hardware_threads == 0 {
            return Err("calibration file is missing fields or has non-positive values".into());
        }
        Ok(profile)
    }
}

/// How many times a calibration kernel's loop body runs per invocation.
const KERNEL_ITERS: i64 = 128;

/// Builds a kernel that executes a counted loop whose body is `body_ops` ops of one
/// class, and lowers it.
///
/// Two shape decisions keep the measurement honest:
///
/// * **The body is a loop, not a straight line.** HELIX prices ops inside parallelized
///   loop segments — code that re-executes hot. A straight-line kernel of thousands of
///   ops executes each instruction exactly once per run, which for a code-expanding
///   tier (the JIT emits ~100–200 bytes of template per op) turns the measurement into
///   a cold instruction-fetch benchmark instead of a dispatch benchmark. A compact body
///   re-entered `KERNEL_ITERS` times is warm in every tier, like the real workloads.
/// * **The ops rotate over eight independent accumulators.** A single `v = v op 1`
///   chain serializes on the value's store-to-load latency, which out-of-order hardware
///   overlaps with dispatch — hiding most of the cost this kernel exists to measure.
///   Independent lanes keep the data side off the critical path, so the slope prices
///   per-op dispatch/throughput.
fn kernel_image(kind: Kernel, body_ops: usize) -> (ExecImage, FuncId) {
    const LANES: usize = 8;
    let mut mb = ModuleBuilder::new("calibration");
    let g = mb.add_global("g", 4);
    let mut fb = FunctionBuilder::new("k", 0);
    let vars: Vec<_> = (0..LANES)
        .map(|_| {
            let v = fb.new_var();
            fb.const_int(v, 1);
            v
        })
        .collect();
    let n = fb.new_var();
    fb.const_int(n, KERNEL_ITERS);
    let body = fb.new_block();
    let exit = fb.new_block();
    fb.br(body);
    fb.switch_to(body);
    for i in 0..body_ops {
        let v = vars[i % LANES];
        match kind {
            Kernel::Alu => fb.binary(v, BinOp::Add, Operand::Var(v), Operand::int(1)),
            Kernel::Mul => fb.binary(v, BinOp::Mul, Operand::Var(v), Operand::int(1)),
            Kernel::Div => fb.binary(v, BinOp::Div, Operand::Var(v), Operand::int(1)),
            Kernel::Load => fb.load(v, Operand::Global(g), 0),
            Kernel::Store => fb.store(Operand::Global(g), 0, Operand::Var(v)),
        }
    }
    fb.binary(n, BinOp::Sub, Operand::Var(n), Operand::int(1));
    let c = fb.cmp_to_new(Pred::Gt, Operand::Var(n), Operand::int(0));
    fb.cond_br(Operand::Var(c), body, exit);
    fb.switch_to(exit);
    fb.ret(Some(Operand::Var(vars[0])));
    let func = mb.add_function(fb.finish());
    let module = mb.finish();
    (ExecImage::lower(&module), func)
}

/// Best-of-`reps` wall time of one full kernel run through one dispatch engine. The
/// threaded/JIT tiers' handler tables (and compiled chunks) are built outside the timed
/// region, mirroring how the executor amortizes them across a run.
fn time_kernel(image: &ExecImage, func: FuncId, reps: usize, tier: DispatchTier) -> Duration {
    let fi = &image.funcs[func.index()];
    // `built` bundles the table with the JIT artifact whose machine code it points into —
    // it must stay alive for the whole timing loop.
    let built = crate::jit::build_flat_tables::<LocalTier>(tier, image);
    let tables: Option<&FlatTables<LocalTier>> = built.as_ref().map(|(t, _)| t);
    let mut tier = LocalTier {
        memory: image.initial_memory.fresh_copy(),
        arena: PrivateArena::new(),
    };
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let mut regs = vec![Value::default(); fi.num_regs];
        let start = Instant::now();
        let result = match tables {
            Some(t) => run_flat_threaded(
                image,
                t,
                func,
                fi.entry_block,
                None,
                &mut regs,
                &mut tier,
                u64::MAX,
            ),
            None => run_flat(
                image,
                func,
                fi.entry_block,
                None,
                &mut regs,
                &mut tier,
                u64::MAX,
            ),
        };
        let _ = std::hint::black_box(result);
        best = best.min(start.elapsed());
    }
    best
}

/// ns per op of `kind` under `tier`, from the slope between a long-body and a
/// short-body kernel: the per-iteration loop overhead (counter, compare, branch, chunk
/// entry) and the fixed call overhead are identical in both and cancel.
fn per_op_ns(kind: Kernel, tier: DispatchTier) -> f64 {
    const LONG: usize = 128;
    const SHORT: usize = 16;
    const REPS: usize = 9;
    let (long_img, long_fn) = kernel_image(kind, LONG);
    let (short_img, short_fn) = kernel_image(kind, SHORT);
    let long = time_kernel(&long_img, long_fn, REPS, tier).as_nanos() as f64;
    let short = time_kernel(&short_img, short_fn, REPS, tier).as_nanos() as f64;
    ((long - short) / (KERNEL_ITERS as f64 * (LONG - SHORT) as f64)).max(0.05)
}

/// Measures the signal-lane costs: `(cross-thread observe, local publish, satisfied poll)`
/// in ns. The observe latency is half a two-lane ping-pong round trip between two real
/// threads — on an oversubscribed machine this rightly includes the scheduler handoff.
fn signal_latencies() -> (f64, f64, f64) {
    let lanes = SignalLanes::new(2, 8);

    // Local publish: repeated release fetch_max on one row.
    const PUB: u64 = 20_000;
    let start = Instant::now();
    for i in 0..PUB {
        lanes.signal(0, i);
    }
    let publish_ns = (start.elapsed().as_nanos() as f64 / PUB as f64).max(0.05);

    // Satisfied poll: the published line is local.
    const POLL: u64 = 20_000;
    let start = Instant::now();
    let mut hits = 0u64;
    for _ in 0..POLL {
        hits += u64::from(std::hint::black_box(lanes.poll(0, 1)));
    }
    let poll_ns = (start.elapsed().as_nanos() as f64 / POLL as f64).max(0.05);
    assert_eq!(hits, POLL, "lane 0 was published above");

    // Cross-thread ping-pong. Budget-bounded: stop after enough rounds or enough time.
    const ROUNDS: u64 = 512;
    let lanes = SignalLanes::new(2, 8);
    let elapsed = std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..ROUNDS {
                while !lanes.poll(0, i + 1) {
                    std::thread::yield_now();
                }
                lanes.signal(1, i);
            }
        });
        let start = Instant::now();
        for i in 0..ROUNDS {
            lanes.signal(0, i);
            while !lanes.poll(1, i + 1) {
                std::thread::yield_now();
            }
        }
        start.elapsed()
    });
    let observe_ns = (elapsed.as_nanos() as f64 / (2 * ROUNDS) as f64).max(publish_ns);
    (observe_ns, publish_ns, poll_ns)
}

/// Measures the pool wake round trip: submit a no-op job to one (pre-spawned) helper and
/// join it.
fn pool_wake() -> f64 {
    let pool = WorkerPool::new();
    let noop = |_ix: usize| {};
    let joined = pool.submit(1, &noop).wait(); // spawn + warm the helper
    joined.expect("calibration no-op job cannot panic");
    let mut best = Duration::MAX;
    for _ in 0..7 {
        let start = Instant::now();
        pool.submit(1, &noop)
            .wait()
            .expect("calibration no-op job cannot panic");
        best = best.min(start.elapsed());
    }
    (best.as_nanos() as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_profile_is_sane_and_round_trips() {
        let p = CalibrationProfile::measure();
        for (name, v) in [
            ("alu", p.alu_ns),
            ("mul", p.mul_ns),
            ("div", p.div_ns),
            ("load", p.load_ns),
            ("store", p.store_ns),
            ("alu_threaded", p.alu_threaded_ns),
            ("mul_threaded", p.mul_threaded_ns),
            ("div_threaded", p.div_threaded_ns),
            ("load_threaded", p.load_threaded_ns),
            ("store_threaded", p.store_threaded_ns),
            ("alu_jit", p.alu_jit_ns),
            ("mul_jit", p.mul_jit_ns),
            ("div_jit", p.div_jit_ns),
            ("load_jit", p.load_jit_ns),
            ("store_jit", p.store_jit_ns),
            ("observe", p.signal_observe_ns),
            ("publish", p.signal_publish_ns),
            ("poll", p.signal_poll_ns),
            ("wake", p.pool_wake_ns),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
        }
        assert!(p.hardware_threads >= 1);
        // A cross-thread observe can never be cheaper than a local publish.
        assert!(p.signal_observe_ns >= p.signal_publish_ns);
        // Round trip through the text format.
        let text = p.to_text();
        assert!(text.starts_with("helix-calibration v3\n"));
        let q = CalibrationProfile::from_text(&text).expect("round trip");
        assert_eq!(p, q);
        // Malformed inputs are rejected.
        assert!(CalibrationProfile::from_text("nope").is_err());
        assert!(CalibrationProfile::from_text("helix-calibration v3\nalu_ns x\n").is_err());
        assert!(CalibrationProfile::from_text("helix-calibration v3\n").is_err());
    }

    #[test]
    fn v1_files_still_parse_with_threaded_costs_mirrored() {
        let v1 = "helix-calibration v1\n\
                  alu_ns 10\nmul_ns 11\ndiv_ns 12\nload_ns 13\nstore_ns 14\n\
                  signal_observe_ns 100\nsignal_publish_ns 5\nsignal_poll_ns 1\n\
                  pool_wake_ns 1000\nhardware_threads 6\n";
        let p = CalibrationProfile::from_text(v1).expect("v1 compat");
        assert_eq!(p.alu_threaded_ns, p.alu_ns);
        assert_eq!(p.store_threaded_ns, p.store_ns);
        assert_eq!(p.alu_jit_ns, p.alu_ns);
        // Equal per-tier costs mean the tie, which goes to the threaded tier (never the
        // JIT: a mirrored column is not a strict win).
        assert_eq!(p.selected_tier(), DispatchTier::Threaded);
    }

    #[test]
    fn v2_files_still_parse_with_jit_costs_mirrored_from_threaded() {
        let v2 = "helix-calibration v2\n\
                  alu_ns 10\nmul_ns 11\ndiv_ns 12\nload_ns 13\nstore_ns 14\n\
                  alu_threaded_ns 4\nmul_threaded_ns 5\ndiv_threaded_ns 6\n\
                  load_threaded_ns 7\nstore_threaded_ns 8\n\
                  signal_observe_ns 100\nsignal_publish_ns 5\nsignal_poll_ns 1\n\
                  pool_wake_ns 1000\nhardware_threads 6\n";
        let p = CalibrationProfile::from_text(v2).expect("v2 compat");
        assert_eq!(p.alu_jit_ns, 4.0);
        assert_eq!(p.store_jit_ns, 8.0);
        // The mirrored JIT column ties the threaded one, so selection is unchanged.
        assert_eq!(p.selected_tier(), DispatchTier::Threaded);
        assert_eq!(p.ns_per_cycle(), 4.0);
    }

    #[test]
    fn selected_tier_considers_the_jit_only_on_a_strict_supported_win() {
        // Read-side of the env lock: the branch below must see a stable
        // `jit_supported()` verdict across its assertions.
        let _env = crate::jit::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut p = CalibrationProfile::from_text(
            "helix-calibration v1\n\
             alu_ns 10\nmul_ns 10\ndiv_ns 10\nload_ns 10\nstore_ns 10\n\
             signal_observe_ns 100\nsignal_publish_ns 5\nsignal_poll_ns 1\n\
             pool_wake_ns 1000\nhardware_threads 6\n",
        )
        .unwrap();
        p.alu_threaded_ns = 4.0;
        p.mul_threaded_ns = 4.0;
        p.div_threaded_ns = 4.0;
        p.load_threaded_ns = 4.0;
        p.store_threaded_ns = 4.0;
        p.alu_jit_ns = 1.0;
        p.mul_jit_ns = 1.0;
        p.div_jit_ns = 1.0;
        p.load_jit_ns = 1.0;
        p.store_jit_ns = 1.0;
        if crate::jit::jit_supported() {
            assert_eq!(p.selected_tier(), DispatchTier::Jit);
            assert_eq!(p.ns_per_cycle(), 1.0);
        } else {
            // Unsupported host: the JIT column is ignored however fast it claims to be.
            assert_eq!(p.selected_tier(), DispatchTier::Threaded);
            assert_eq!(p.ns_per_cycle(), 4.0);
        }
        // A tie with the threaded tier is not a win.
        p.alu_jit_ns = 4.0;
        p.mul_jit_ns = 4.0;
        p.div_jit_ns = 4.0;
        p.load_jit_ns = 4.0;
        p.store_jit_ns = 4.0;
        assert_eq!(p.selected_tier(), DispatchTier::Threaded);
    }

    #[test]
    fn selected_tier_prefers_the_measured_faster_engine() {
        let mut p = CalibrationProfile::from_text(
            "helix-calibration v1\n\
             alu_ns 10\nmul_ns 10\ndiv_ns 10\nload_ns 10\nstore_ns 10\n\
             signal_observe_ns 100\nsignal_publish_ns 5\nsignal_poll_ns 1\n\
             pool_wake_ns 1000\nhardware_threads 6\n",
        )
        .unwrap();
        p.alu_threaded_ns = 4.0;
        p.mul_threaded_ns = 4.0;
        p.div_threaded_ns = 4.0;
        p.load_threaded_ns = 4.0;
        p.store_threaded_ns = 4.0;
        assert_eq!(p.selected_tier(), DispatchTier::Threaded);
        // The cost currency follows the selected tier.
        assert_eq!(p.ns_per_cycle(), 4.0);
        p.alu_threaded_ns = 40.0;
        p.mul_threaded_ns = 40.0;
        p.div_threaded_ns = 40.0;
        p.load_threaded_ns = 40.0;
        p.store_threaded_ns = 40.0;
        assert_eq!(p.selected_tier(), DispatchTier::Switch);
        assert_eq!(p.ns_per_cycle(), 10.0);
    }

    #[test]
    fn calibrated_config_prices_signals_from_measurement() {
        let p = CalibrationProfile::cached();
        let config = p.helix_config(HelixConfig::i7_980x());
        assert_eq!(
            config.selection_signal_latency,
            config.signal_latency_unprefetched
        );
        assert_eq!(
            config.selection_signal_latency_prefetched,
            config.signal_latency_prefetched
        );
        assert!(config.signal_latency_unprefetched >= config.signal_latency_prefetched);
        assert!(config.signal_latency_unprefetched >= 1);
        // The cost model stays anchored at ALU = 1 with every class at least that.
        let cost = p.cost_model();
        assert_eq!(cost.alu, 1);
        assert!(cost.load >= 1 && cost.store >= 1 && cost.mul >= 1);
        // Ablation switches are preserved.
        assert!(config.enable_signal_minimization);
    }
}
