//! The persistent worker pool of the parallel runtime.
//!
//! The first-generation executor called `std::thread::scope` on every `execute`, paying an
//! OS thread spawn + join per worker per run — hundreds of microseconds that dwarfed the
//! loops being parallelized (and the paper's whole point is that per-invocation overhead
//! decides whether cyclic multithreading wins). [`WorkerPool`] spawns each helper thread
//! once, process-wide, and reuses it across every `execute` call:
//!
//! * helpers park on a condition variable between jobs (no busy idle),
//! * a job is published with [`WorkerPool::submit`], which hands back a [`JobTicket`] whose
//!   [`JobTicket::wait`]/`Drop` joins the job — the borrow-safety point that lets jobs
//!   capture non-`'static` state (the submitting call cannot return before every helper has
//!   left the closure),
//! * there is deliberately **no work stealing**: HELIX workers self-schedule iterations from
//!   one shared counter, so the pool only needs to run N copies of the same closure.
//!
//! [`AdaptiveWait`] is the wait strategy used by workers at synchronization points: a
//! bounded spin (cheap when the producer is one segment away), then `yield_now` (lets the
//! producer run on an oversubscribed machine), then a timed `parking_lot` park on a shared
//! [`Sleepers`] pad that producers poke only when someone is actually parked — one relaxed
//! load on the signal fast path.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A job body: executed once per participating worker with the worker's index
/// (`1..=helpers`; index 0 is the submitting thread, which runs outside the pool).
type JobFn = Arc<dyn Fn(usize) + Send + Sync>;

/// A panic that escaped a worker's job closure, with its payload preserved.
///
/// The pool catches helper panics (the helper thread itself survives), records the first
/// one here, and hands it to the submitter through [`JobTicket::wait`] instead of
/// re-panicking with a fixed string. The executor converts it into
/// `RuntimeError::WorkerPanicked`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Pool worker index the panic escaped from (`1..=helpers`; `0` is the submitter).
    pub worker: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.message)
    }
}

/// Renders a caught panic payload as text without re-raising it.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Job {
    f: JobFn,
    /// Helpers wanted; helpers with a claimed slot run the closure, the rest keep parking.
    helpers: usize,
    /// Helpers that have claimed a slot so far.
    started: usize,
    /// Helpers still inside the closure (or yet to start).
    active: usize,
    /// First panic that escaped a helper's closure (surfaced through the ticket).
    panic: Option<WorkerPanic>,
}

#[derive(Default)]
struct PoolState {
    job: Option<Job>,
    /// Monotonic job counter; helpers wait for `epoch` to move past the one they last saw.
    epoch: u64,
    spawned: usize,
    /// Helper cohort id. Helpers capture it at spawn and exit when it moves on: after a
    /// panic the pool is poisoned and the next submit retires the whole cohort (bumping
    /// this) and spawns a fresh one, so a panicking job can't leak corrupted thread state
    /// into later runs.
    generation: u64,
    /// Set when a job panicked; cleared by the respawn on the next submit.
    poisoned: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Helpers park here between jobs.
    work: Condvar,
    /// Submitters park here while a job drains.
    done: Condvar,
}

/// A persistent, work-stealing-free worker pool (see the module docs).
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// Creates an empty pool; helper threads are spawned lazily on first use.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState::default()),
                work: Condvar::new(),
                done: Condvar::new(),
            }),
        }
    }

    /// The process-wide pool shared by every [`crate::ParallelExecutor`]. Threads are
    /// spawned on demand up to the largest helper count any run has requested, and live for
    /// the rest of the process.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// Number of helper threads currently spawned (for tests and diagnostics).
    pub fn spawned_helpers(&self) -> usize {
        self.inner.state.lock().spawned
    }

    /// Helper-cohort generation: bumped each time a panic forces a respawn (for tests and
    /// diagnostics — `generation() > 0` means the pool has recovered from at least one
    /// worker panic).
    pub fn generation(&self) -> u64 {
        self.inner.state.lock().generation
    }

    /// Publishes `f` to `helpers` pool threads and returns a ticket that joins them.
    ///
    /// The closure runs once per helper with indices `1..=helpers`. The caller usually
    /// participates as worker `0` by invoking the same logic on its own thread after
    /// submitting. The job may borrow stack state of the caller: the returned ticket's
    /// lifetime ties the job to that state, and [`JobTicket::wait`] (called explicitly or by
    /// `Drop`) blocks until every helper has left the closure.
    ///
    /// Concurrent submissions queue: a submitter blocks until the in-flight job has fully
    /// drained (helpers are a shared resource; two simultaneous `execute` calls serialize
    /// their Phase B helper usage, each still correct on its own state).
    ///
    /// Crate-private on purpose: the returned ticket joins on `Drop`, but a leaked ticket
    /// (`mem::forget`) would let pool threads keep running a closure whose borrowed stack
    /// state has been freed. Inside the crate the executor's structured use (ticket waited
    /// or dropped on every path, never forgotten) keeps this sound; a public version would
    /// need a closure-scoped API.
    pub(crate) fn submit<'scope>(
        &'scope self,
        helpers: usize,
        f: &'scope (dyn Fn(usize) + Send + Sync),
    ) -> JobTicket<'scope> {
        // SAFETY: the ticket returned borrows `self` and `f` for `'scope`, and its
        // `wait`/`Drop` blocks until every helper has exited the closure, so the pool never
        // uses `f` after `'scope` ends. The transmute only erases the reference lifetime.
        let f_static: &'static (dyn Fn(usize) + Send + Sync) = unsafe {
            std::mem::transmute::<
                &'scope (dyn Fn(usize) + Send + Sync),
                &'static (dyn Fn(usize) + Send + Sync),
            >(f)
        };
        let f: JobFn = Arc::new(move |ix: usize| f_static(ix));
        let mut state = self.inner.state.lock();
        while state.job.is_some() {
            self.inner.done.wait(&mut state);
        }
        if state.poisoned {
            // A previous job panicked: retire the whole helper cohort (each parked helper
            // wakes on the notify below, sees the generation moved on, and exits) and
            // spawn a fresh one for this job. Submitters never observe the poisoning —
            // recovery is this transparent respawn.
            state.generation += 1;
            state.spawned = 0;
            state.poisoned = false;
        }
        // Grow the pool to the requested helper count.
        while state.spawned < helpers {
            state.spawned += 1;
            let inner = Arc::clone(&self.inner);
            let generation = state.generation;
            std::thread::Builder::new()
                .name(format!("helix-worker-{}", state.spawned))
                .spawn(move || helper_loop(&inner, generation))
                .expect("spawn helix worker thread");
        }
        state.job = Some(Job {
            f,
            helpers,
            started: 0,
            active: helpers,
            panic: None,
        });
        state.epoch += 1;
        drop(state);
        self.inner.work.notify_all();
        JobTicket {
            pool: self,
            joined: false,
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

/// Joins a submitted job: proof that every helper has left the job closure.
pub(crate) struct JobTicket<'scope> {
    pool: &'scope WorkerPool,
    joined: bool,
}

impl JobTicket<'_> {
    /// Blocks until every helper has finished the job.
    ///
    /// A panic that escaped a helper's closure is returned as [`WorkerPanic`] (payload
    /// preserved), never re-raised: the submitter decides what a worker panic means. The
    /// pool is left poisoned; the next [`WorkerPool::submit`] respawns the helper cohort.
    pub(crate) fn wait(mut self) -> Result<(), WorkerPanic> {
        match self.join() {
            None => Ok(()),
            Some(panic) => Err(panic),
        }
    }

    fn join(&mut self) -> Option<WorkerPanic> {
        if self.joined {
            return None;
        }
        self.joined = true;
        let inner = &self.pool.inner;
        let mut state = inner.state.lock();
        while let Some(job) = &state.job {
            if job.active == 0 {
                let job = state.job.take().expect("job present");
                if job.panic.is_some() {
                    state.poisoned = true;
                }
                drop(state);
                // Notify *after* the slot is cleared (and the poison flag set): a queued
                // submitter woken here must observe a free slot, or it re-parks and the
                // next wake-up comes only from another take — clearing before notifying
                // is what guarantees a panicking job can never wedge the queue.
                inner.done.notify_all();
                return job.panic;
            }
            inner.done.wait(&mut state);
        }
        None
    }
}

impl Drop for JobTicket<'_> {
    fn drop(&mut self) {
        // A panic surfacing during unwind (or an explicitly ignored ticket) is dropped
        // here; the poison flag still forces the respawn on the next submit.
        let _ = self.join();
    }
}

fn helper_loop(inner: &PoolInner, generation: u64) {
    let mut seen_epoch = 0u64;
    loop {
        // Claim a slot in a fresh job, or park until one appears. Exit once the pool has
        // moved on to a newer helper cohort (post-panic respawn retired this one).
        let (f, index) = {
            let mut state = inner.state.lock();
            loop {
                if state.generation != generation {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = &mut state.job {
                        if job.started < job.helpers {
                            job.started += 1;
                            break (Arc::clone(&job.f), job.started);
                        }
                    }
                }
                inner.work.wait(&mut state);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(index)));
        drop(f);
        let mut state = inner.state.lock();
        if let Some(job) = &mut state.job {
            job.active -= 1;
            if let Err(payload) = result {
                let panic = WorkerPanic {
                    worker: index,
                    message: panic_message(payload.as_ref()),
                };
                job.panic.get_or_insert(panic);
            }
            if job.active == 0 {
                inner.done.notify_all();
            }
        }
    }
}

/// The machine's hardware thread count, queried in one place.
///
/// Every consumer (executor worker clamp, wait-profile choice, calibration) snapshots this
/// once per executor/profile and threads the value through, so a mid-run cgroup resize can
/// never make two decisions disagree about the same machine.
pub fn detect_hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shared sleep pad workers park on when a synchronization wait outlasts its spin
/// budget. Producers call [`Sleepers::wake_all`] after publishing progress; the call is one
/// relaxed load unless someone is actually parked.
#[derive(Default)]
pub struct Sleepers {
    count: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Sleepers {
    /// Creates an empty pad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the current thread for at most `timeout` or until [`Sleepers::wake_all`].
    /// The timeout bounds the cost of a lost wakeup; callers always re-check their
    /// condition after waking.
    pub fn sleep(&self, timeout: Duration) {
        self.count.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock();
        self.cv.wait_for(&mut guard, timeout);
        drop(guard);
        self.count.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes every parked worker if any are parked (one relaxed load otherwise).
    #[inline]
    pub fn wake_all(&self) {
        if self.count.load(Ordering::SeqCst) != 0 {
            let _guard = self.lock.lock();
            self.cv.notify_all();
        }
    }
}

/// Backoff shape of one run's wait sites, chosen once from the machine's topology.
///
/// With at least as many hardware threads as workers (*dedicated*), waiters spin and yield
/// generously before parking: the producer runs concurrently and the expected wait is short,
/// so burning a core buys latency. With fewer hardware threads than workers
/// (*oversubscribed* — every thread of CPU an idle waiter burns is stolen from the producer
/// it waits for), waiters go to sleep almost immediately and park with exponentially
/// growing timeouts.
#[derive(Clone, Copy, Debug)]
pub struct WaitProfile {
    spin_limit: u32,
    yield_limit: u32,
    park_initial: Duration,
    park_max: Duration,
}

impl WaitProfile {
    /// Generous spinning: enough hardware threads for every worker.
    pub const DEDICATED: WaitProfile = WaitProfile {
        spin_limit: 512,
        yield_limit: 4096,
        park_initial: Duration::from_micros(200),
        park_max: Duration::from_micros(800),
    };

    /// Near-immediate parking: more workers than hardware threads.
    pub const OVERSUBSCRIBED: WaitProfile = WaitProfile {
        spin_limit: 16,
        yield_limit: 24,
        park_initial: Duration::from_micros(500),
        park_max: Duration::from_millis(8),
    };

    /// Picks the profile for `threads` workers on this machine (fresh hardware snapshot).
    pub fn for_threads(threads: usize) -> WaitProfile {
        Self::for_threads_on(threads, detect_hardware_threads())
    }

    /// Picks the profile for `threads` workers given an already-taken `hardware` thread
    /// snapshot — callers that made other decisions from a snapshot pass the same one so
    /// profile and clamp can't disagree mid-run.
    pub fn for_threads_on(threads: usize, hardware: usize) -> WaitProfile {
        if hardware >= threads {
            WaitProfile::DEDICATED
        } else {
            WaitProfile::OVERSUBSCRIBED
        }
    }

    /// `true` when waiters spin long enough that progress wake-ups are worth sending.
    pub fn wakes_on_progress(&self) -> bool {
        self.park_max <= WaitProfile::DEDICATED.park_max
    }
}

/// Budget units charged per microsecond parked: calibrated so deadlock budgets expressed in
/// yield-spins on the previous executor (~100ns each) detect lost signals in comparable
/// wall-clock time whether the waiter spins or parks.
const PARK_COST_PER_US: u64 = 10;

/// What one wait site actually did, by backoff stage. Telemetry folds these into the
/// per-segment run/wait/spin/park breakdown; the counters cost one plain increment per
/// backoff round and are kept even when telemetry is disabled (the rounds themselves
/// dwarf an add).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Spin-loop rounds taken.
    pub spins: u64,
    /// `yield_now` rounds taken.
    pub yields: u64,
    /// Timed parks taken.
    pub parks: u64,
    /// Total microseconds requested across parks (an upper bound on time parked; a
    /// wake-up can end a park early).
    pub park_us: u64,
}

/// Bounded spin → yield → timed park, shared by every wait site of the runtime.
pub struct AdaptiveWait<'a> {
    sleepers: &'a Sleepers,
    profile: WaitProfile,
    park: Duration,
    rounds: u32,
    charged: u64,
    stats: WaitStats,
}

impl<'a> AdaptiveWait<'a> {
    /// Creates a fresh strategy with the [`WaitProfile::DEDICATED`] shape.
    pub fn new(sleepers: &'a Sleepers) -> Self {
        Self::with_profile(sleepers, WaitProfile::DEDICATED)
    }

    /// Creates a fresh strategy (used once per logical wait).
    pub fn with_profile(sleepers: &'a Sleepers, profile: WaitProfile) -> Self {
        Self {
            sleepers,
            profile,
            park: profile.park_initial,
            rounds: 0,
            charged: 0,
            stats: WaitStats::default(),
        }
    }

    /// Backs off one step. Returns the cumulative cost waited so far in yield-equivalent
    /// units (the caller charges it against its deadlock budget).
    #[inline]
    pub fn wait(&mut self) -> u64 {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds < self.profile.spin_limit {
            std::hint::spin_loop();
            self.charged += 1;
            self.stats.spins += 1;
        } else if self.rounds < self.profile.yield_limit {
            std::thread::yield_now();
            self.charged += 1;
            self.stats.yields += 1;
        } else {
            self.sleepers.sleep(self.park);
            self.charged += PARK_COST_PER_US * self.park.as_micros().max(1) as u64;
            self.stats.parks += 1;
            self.stats.park_us += self.park.as_micros() as u64;
            self.park = (self.park * 2).min(self.profile.park_max);
        }
        self.charged
    }

    /// The per-stage breakdown of everything this strategy did since its last
    /// [`AdaptiveWait::reset`].
    #[inline]
    pub fn stats(&self) -> WaitStats {
        self.stats
    }

    /// Restarts the backoff after progress was observed.
    #[inline]
    pub fn reset(&mut self) {
        self.rounds = 0;
        self.charged = 0;
        self.park = self.profile.park_initial;
        self.stats = WaitStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_helpers_and_is_reused() {
        let pool = WorkerPool::new();
        let hits = AtomicU64::new(0);
        for round in 1..=3u64 {
            let f = |ix: usize| {
                assert!((1..=2).contains(&ix));
                hits.fetch_add(ix as u64, Ordering::SeqCst);
            };
            let ticket = pool.submit(2, &f);
            ticket.wait().unwrap();
            assert_eq!(hits.load(Ordering::SeqCst), 3 * round);
            assert_eq!(pool.spawned_helpers(), 2, "helpers persist across jobs");
        }
    }

    #[test]
    fn pool_grows_to_the_largest_request() {
        let pool = WorkerPool::new();
        let f = |_ix: usize| {};
        pool.submit(1, &f).wait().unwrap();
        assert_eq!(pool.spawned_helpers(), 1);
        pool.submit(3, &f).wait().unwrap();
        assert_eq!(pool.spawned_helpers(), 3);
        // A smaller job reuses the existing threads without spawning more.
        pool.submit(2, &f).wait().unwrap();
        assert_eq!(pool.spawned_helpers(), 3);
    }

    #[test]
    fn panicking_job_returns_payload_and_pool_respawns() {
        let pool = WorkerPool::new();
        let boom = |ix: usize| {
            if ix == 1 {
                panic!("intentional test panic");
            }
        };
        let err = pool.submit(2, &boom).wait().expect_err("panic surfaced");
        assert_eq!(err.worker, 1);
        assert_eq!(err.message, "intentional test panic");
        assert_eq!(
            pool.generation(),
            0,
            "respawn is deferred to the next submit"
        );

        // The next job on the same pool succeeds on a fresh helper cohort.
        let hits = AtomicU64::new(0);
        let ok = |_ix: usize| {
            hits.fetch_add(1, Ordering::SeqCst);
        };
        pool.submit(2, &ok).wait().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(pool.generation(), 1, "cohort retired after the panic");
        assert_eq!(pool.spawned_helpers(), 2);
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let pool = WorkerPool::new();
        let boom = |_ix: usize| std::panic::panic_any(42u32);
        let err = pool.submit(1, &boom).wait().expect_err("panic surfaced");
        assert_eq!(err.message, "non-string panic payload");
    }

    #[test]
    fn panicking_job_does_not_wedge_queued_submitters() {
        // A submitter queued behind a panicking job must still get the slot: the ticket
        // clears the job before notifying `done`, so the panic can't wedge the queue.
        let pool = Arc::new(WorkerPool::new());
        let release = Arc::new(AtomicU64::new(0));
        let queued_done = Arc::new(AtomicU64::new(0));

        let p = Arc::clone(&pool);
        let r = Arc::clone(&release);
        let qd = Arc::clone(&queued_done);
        let queued = std::thread::spawn(move || {
            // Wait until the panicking job is in flight, then queue behind it.
            while r.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            let f = |_ix: usize| {};
            p.submit(1, &f).wait().unwrap();
            qd.store(1, Ordering::SeqCst);
        });

        let r = Arc::clone(&release);
        let boom = move |_ix: usize| {
            r.store(1, Ordering::SeqCst);
            // Give the queued submitter time to actually park on `done`.
            std::thread::sleep(Duration::from_millis(20));
            panic!("queued-submitter test panic");
        };
        let err = pool.submit(1, &boom).wait().expect_err("panic surfaced");
        assert_eq!(err.message, "queued-submitter test panic");
        queued.join().unwrap();
        assert_eq!(queued_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ticket_drop_joins_borrowed_state() {
        let pool = WorkerPool::new();
        let mut local = [0u64; 4];
        {
            let slots: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            let f = |ix: usize| slots[ix].store(ix as u64 * 10, Ordering::SeqCst);
            let _ticket = pool.submit(3, &f);
            // `_ticket` drops here, joining the helpers before `slots` is freed.
        }
        local[0] = 1;
        assert_eq!(local[0], 1);
    }

    #[test]
    fn sleepers_wake_parked_threads() {
        let sleepers = Arc::new(Sleepers::new());
        let woke = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let s = Arc::clone(&sleepers);
            let w = Arc::clone(&woke);
            handles.push(std::thread::spawn(move || {
                s.sleep(Duration::from_secs(5));
                w.fetch_add(1, Ordering::SeqCst);
            }));
        }
        while sleepers.count.load(Ordering::SeqCst) != 2 {
            std::thread::yield_now();
        }
        sleepers.wake_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn adaptive_wait_counts_rounds() {
        let sleepers = Sleepers::new();
        let mut wait = AdaptiveWait::new(&sleepers);
        assert_eq!(wait.wait(), 1);
        assert_eq!(wait.wait(), 2);
        assert_eq!(wait.stats().spins, 2);
        wait.reset();
        assert_eq!(wait.wait(), 1);
        assert_eq!(wait.stats().spins, 1);
    }

    #[test]
    fn adaptive_wait_stats_split_by_stage() {
        let sleepers = Sleepers::new();
        let mut wait = AdaptiveWait::with_profile(&sleepers, WaitProfile::OVERSUBSCRIBED);
        // OVERSUBSCRIBED: 15 spins (rounds 1..16), 8 yields (16..24), then parks.
        for _ in 0..24 {
            wait.wait();
        }
        let stats = wait.stats();
        assert_eq!(stats.spins, 15);
        assert_eq!(stats.yields, 8);
        assert_eq!(stats.parks, 1);
        assert!(stats.park_us >= 500, "first park is the 500us initial");
        wait.reset();
        assert_eq!(wait.stats(), WaitStats::default());
    }
}
