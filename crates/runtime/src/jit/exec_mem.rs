//! Executable memory for the template JIT, pure-std Linux: raw `extern "C"` declarations
//! for `mmap`/`mprotect`/`munmap` (std already links libc, so no new dependency), wrapped
//! in a strict W^X lifecycle:
//!
//! 1. [`ExecMem::new`] maps fresh anonymous pages `PROT_READ | PROT_WRITE`;
//! 2. the emitter fills them through [`ExecMem::fill`] while they are still data;
//! 3. [`ExecMem::seal`] flips the whole mapping to `PROT_READ | PROT_EXEC` — from that
//!    point the buffer is immutable code and [`ExecMem::fill`] refuses to touch it;
//! 4. `Drop` unmaps.
//!
//! The pages are never writable and executable at the same time (asserted by the
//! `/proc/self/maps` test in `jit::tests`). Everything here is gated behind
//! `target_os = "linux", target_arch = "x86_64"`; other targets get a stub whose
//! constructor returns `None`, which the tier selection turns into a clean fallback to
//! the threaded engine.

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn mprotect(addr: *mut c_void, length: usize, prot: i32) -> i32;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// An owned, page-granular machine-code buffer with a one-way RW → RX transition.
#[derive(Debug)]
pub struct ExecMem {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    ptr: *mut u8,
    len: usize,
    sealed: bool,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl ExecMem {
    /// Maps `len` bytes (rounded up to whole pages) of fresh anonymous RW memory.
    /// Returns `None` when the kernel refuses (or `len` is zero) — callers fall back to
    /// the threaded tier rather than failing the run.
    pub fn new(len: usize) -> Option<ExecMem> {
        if len == 0 {
            return None;
        }
        let len = len.checked_add(4095)? & !4095;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return None;
        }
        Some(ExecMem {
            ptr: ptr.cast(),
            len,
            sealed: false,
        })
    }

    /// Copies `code` into the buffer while it is still writable (and not executable).
    /// Returns `false` after [`ExecMem::seal`] or if `code` does not fit.
    pub fn fill(&mut self, code: &[u8]) -> bool {
        if self.sealed || code.len() > self.len {
            return false;
        }
        unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), self.ptr, code.len()) };
        true
    }

    /// Flips the mapping from RW to RX. Returns `false` (leaving the memory unexecuted
    /// and soon unmapped) if the kernel refuses — e.g. under a W^X-enforcing policy that
    /// forbids `PROT_EXEC` on anonymous pages.
    pub fn seal(&mut self) -> bool {
        if self.sealed {
            return true;
        }
        let ok =
            unsafe { sys::mprotect(self.ptr.cast(), self.len, sys::PROT_READ | sys::PROT_EXEC) }
                == 0;
        self.sealed = ok;
        ok
    }

    /// Absolute address of byte `off` of the buffer. Only meaningful to *execute* after
    /// [`ExecMem::seal`] succeeded.
    pub fn addr(&self, off: usize) -> usize {
        debug_assert!(off < self.len);
        self.ptr as usize + off
    }

    /// Base address and mapped length (for the `/proc/self/maps` W^X assertions).
    pub fn region(&self) -> (usize, usize) {
        (self.ptr as usize, self.len)
    }

    /// Whether the RW → RX transition has happened.
    pub fn sealed(&self) -> bool {
        self.sealed
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
impl Drop for ExecMem {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr.cast(), self.len);
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
impl ExecMem {
    /// Stub on unsupported targets: never allocates, so the JIT tier degrades to
    /// threaded dispatch.
    pub fn new(_len: usize) -> Option<ExecMem> {
        None
    }

    pub fn fill(&mut self, _code: &[u8]) -> bool {
        false
    }

    pub fn seal(&mut self) -> bool {
        false
    }

    pub fn addr(&self, _off: usize) -> usize {
        unreachable!("ExecMem cannot be constructed on this target")
    }

    pub fn region(&self) -> (usize, usize) {
        (0, self.len)
    }

    pub fn sealed(&self) -> bool {
        self.sealed
    }
}
