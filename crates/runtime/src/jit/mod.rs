//! The template-JIT dispatch tier (`DispatchTier::Jit`): threaded dispatch whose
//! straight-line data runs are compiled to native x86-64 and executed as one handler call.
//!
//! ## Architecture: patched threaded tables
//!
//! The JIT does not bring its own driver. It builds the exact [`IterTable`] /
//! [`FlatTables`] the threaded tier uses, finds every maximal run of consecutive
//! JIT-coverable ops (a **chunk**, ≥ 2 constituent ops), compiles each chunk to
//! straight-line machine code with [`emit`], and rewrites only the chunk's *head* slot to
//! a [`h_jit`] trampoline that calls the native code. Everything else — the dispatch
//! loop, Wait/Signal blocking, claim protocol, telemetry, deadlock reporting, panic
//! propagation through the worker pool — is the threaded tier's code running unmodified.
//!
//! ## The trampoline / resume-pc contract
//!
//! A chunk is `extern "C" fn(regs: *mut Value) -> u64`: it receives the guest register
//! slab and returns the pc where threaded dispatch must resume. On the normal path that
//! is the slot after the chunk; when an op's operands fall outside its compiled fast path
//! (e.g. a float reaching an integer-only template) the chunk returns that op's own pc
//! **before writing anything for it** — a *side exit*. Interior slots of a chunk keep
//! their original threaded handlers, so the resumed interpreter executes the op the
//! native code refused, and jumps *into* the middle of a chunk (loop back-edges, branch
//! targets) also just work. A side exit at the head pc would re-enter the trampoline, so
//! [`h_jit`] keeps the head's original decoded [`TOp`] (in [`JitArtifact`]) and runs it
//! directly when the chunk reports zero progress — guaranteeing forward progress with the
//! interpreter's exact semantics.
//!
//! ## Partial coverage, total correctness
//!
//! Only register-to-register data ops are compiled (moves, un/bin/cmp ops and the fused
//! superinstruction chains). Memory, allocation, call, select, sync and control ops keep
//! their threaded handlers; they bound chunks rather than being emulated. Correctness
//! never depends on *what* is covered — only dispatch cost does — and the differential
//! fuzz oracle holds all three tiers to bitwise-identical results.
//!
//! ## Degrading cleanly
//!
//! [`jit_supported`] gates everything: the target must be Linux x86-64, the runtime probe
//! of [`Value`]'s (unspecified, `repr(Rust)`) layout must succeed, a compiled self-test
//! chunk must produce the interpreter's exact results, and `HELIX_DISABLE_JIT=1` must not
//! be set. When any of that fails, the builders hand back plain threaded tables — the
//! `Jit` tier silently *is* the threaded tier there (see `docs/jit.md`).

mod emit;
pub(crate) mod exec_mem;

use crate::parallel_image::{specialize_op, LoopImage, Tier};
use crate::threaded::{DispatchTier, FlatTables, Handler, IterTable, TCtx, TOp};
use emit::{compile_stream, Slot};
pub use exec_mem::ExecMem;
use helix_ir::{ExecImage, Op, Value};
use std::sync::OnceLock;

/// The probed memory layout of [`Value`] (`repr(Rust)`, so discovered at run time and
/// verified, never assumed): a 16-byte slot with a one-byte discriminant and an 8-byte
/// payload. Emitted code writes exactly the tag byte and the payload word.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ValueLayout {
    pub tag_off: i32,
    pub pay_off: i32,
    pub tag_int: u8,
    pub tag_float: u8,
}

/// Reads the raw bytes of a `Value` written over a zeroed 16-byte slot.
fn value_bytes(v: Value) -> [u8; 16] {
    let mut slot = std::mem::MaybeUninit::<Value>::zeroed();
    let mut buf = [0u8; 16];
    unsafe {
        slot.as_mut_ptr().write(v);
        std::ptr::copy_nonoverlapping(slot.as_ptr() as *const u8, buf.as_mut_ptr(), 16);
    }
    buf
}

/// Discovers where the discriminant and payload live by diffing written values, with
/// consistency checks at every step; any surprise (niche packing, moved padding,
/// non-deterministic bytes) returns `None` and disables the JIT rather than guessing.
fn probe_layout() -> Option<ValueLayout> {
    if std::mem::size_of::<Value>() != 16 || std::mem::align_of::<Value>() > 16 {
        return None;
    }
    // Byte images must be deterministic for the diffs below to mean anything.
    if value_bytes(Value::Int(0x5A)) != value_bytes(Value::Int(0x5A)) {
        return None;
    }
    // Payload: the bytes that differ between two Ints must be one aligned 8-byte word.
    let a = value_bytes(Value::Int(0));
    let b = value_bytes(Value::Int(-1));
    let diff: Vec<usize> = (0..16).filter(|&k| a[k] != b[k]).collect();
    if diff.len() != 8
        || !diff[0].is_multiple_of(8)
        || diff != (diff[0]..diff[0] + 8).collect::<Vec<_>>()
    {
        return None;
    }
    let pay = diff[0];
    let pattern = 0x0123_4567_89AB_CDEFi64;
    let int_img = value_bytes(Value::Int(pattern));
    if int_img[pay..pay + 8] != pattern.to_le_bytes() {
        return None;
    }
    // Tag: with identical payload bits, Int and Float must differ in exactly one byte.
    let flt_img = value_bytes(Value::Float(f64::from_bits(pattern as u64)));
    let tdiff: Vec<usize> = (0..16)
        .filter(|&k| k < pay || k >= pay + 8)
        .filter(|&k| int_img[k] != flt_img[k])
        .collect();
    if tdiff.len() != 1 {
        return None;
    }
    let tag = tdiff[0];
    let (tag_int, tag_float) = (int_img[tag], flt_img[tag]);
    if tag_int == tag_float
        || value_bytes(Value::Int(7))[tag] != tag_int
        || value_bytes(Value::Float(2.5))[tag] != tag_float
    {
        return None;
    }
    Some(ValueLayout {
        tag_off: tag as i32,
        pay_off: pay as i32,
        tag_int,
        tag_float,
    })
}

/// The cached layout probe.
fn layout() -> Option<ValueLayout> {
    static LAYOUT: OnceLock<Option<ValueLayout>> = OnceLock::new();
    *LAYOUT.get_or_init(probe_layout)
}

/// The chunk calling convention (see the module docs).
type ChunkFn = extern "C" fn(*mut Value) -> u64;

/// End-to-end machinery check: compile one chunk exercising integer, float-promoting and
/// edge-case arithmetic, execute it, and demand the interpreter's exact results. Runs
/// once; a failure (however unlikely once [`probe_layout`] passed) disables the JIT.
fn self_test(lay: ValueLayout) -> bool {
    use crate::parallel_image::POp;
    use helix_ir::BinOp;
    let slots = [
        Slot::Op(POp::MovI {
            dst: 0,
            v: Value::Int(7),
        }),
        Slot::Op(POp::MovI {
            dst: 1,
            v: Value::Float(2.5),
        }),
        Slot::Op(POp::BinRR {
            dst: 2,
            op: BinOp::Add,
            lhs: 0,
            rhs: 0,
        }),
        Slot::Op(POp::BinRR {
            dst: 3,
            op: BinOp::Add,
            lhs: 0,
            rhs: 1,
        }),
        Slot::Op(POp::BinRI {
            dst: 4,
            op: BinOp::Div,
            lhs: 0,
            rhs: Value::Int(0),
        }),
        Slot::Op(POp::BinRI {
            dst: 5,
            op: BinOp::Rem,
            lhs: 0,
            rhs: Value::Int(3),
        }),
        Slot::Bar,
    ];
    let (code, chunks) = compile_stream(&slots, lay);
    if chunks.len() != 1 || chunks[0].head_pc != 0 {
        return false;
    }
    let mut mem = match ExecMem::new(code.len()) {
        Some(m) => m,
        None => return false,
    };
    if !mem.fill(&code) || !mem.seal() {
        return false;
    }
    let mut regs = vec![Value::Int(0); 6];
    let f: ChunkFn = unsafe { std::mem::transmute(mem.addr(chunks[0].off)) };
    let resume = f(regs.as_mut_ptr());
    resume == 6
        && regs
            == [
                Value::Int(7),
                Value::Float(2.5),
                Value::Int(14),
                Value::Float(9.5),
                Value::Int(0),
                Value::Int(1),
            ]
}

/// Whether the JIT tier can actually emit and run native code here. `HELIX_DISABLE_JIT=1`
/// is consulted on every call (so a process can flip it); the target gate and the
/// probe/self-test verdict are cached. When this is `false`, `DispatchTier::Jit` (and an
/// `Auto` resolution to it) degrades to the threaded tier — never a panic.
pub fn jit_supported() -> bool {
    if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        return false;
    }
    if std::env::var_os("HELIX_DISABLE_JIT").is_some_and(|v| v == "1") {
        return false;
    }
    static SUPPORT: OnceLock<bool> = OnceLock::new();
    *SUPPORT.get_or_init(|| layout().is_some_and(self_test))
}

/// Serializes tests that toggle `HELIX_DISABLE_JIT` against tests that assert on
/// [`jit_supported`]'s verdict — the flag is process-global and the test harness runs
/// tests concurrently. Lock with `.lock().unwrap_or_else(|e| e.into_inner())` so a
/// panicking holder does not cascade.
#[cfg(test)]
pub(crate) static TEST_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Keeps a patched table's native code and saved head slots alive. **Must outlive the
/// table it was built with**: the table's rewritten head slots hold raw addresses into
/// `parts` — the builders return the two together so scope does the enforcement.
pub(crate) struct JitArtifact<T: Tier> {
    #[allow(dead_code)] // held for ownership: tables point into these allocations
    parts: Vec<(ExecMem, Box<[TOp<T>]>)>,
}

/// The trampoline installed on each chunk head: `i` = native entry address, `j` = address
/// of the saved original [`TOp`] (inside the [`JitArtifact`]). Returns the chunk's resume
/// pc; on a zero-progress side exit (resume == head pc) it executes the original op via
/// its threaded handler instead, so dispatch always advances.
fn h_jit<T: Tier>(ctx: &mut TCtx<'_, T>, op: &TOp<T>, pc: usize) -> usize {
    let f: ChunkFn = unsafe { std::mem::transmute(op.i as usize) };
    let resume = f(ctx.regs.as_mut_ptr()) as usize;
    if resume != pc {
        return resume;
    }
    let orig = unsafe { &*(op.j as usize as *const TOp<T>) };
    (orig.h)(ctx, orig, pc)
}

/// Compiles the chunks of one op stream and patches their head slots in `ops`. Returns
/// the ownership bundle, or `None` when there is nothing worth compiling (or the kernel
/// refused executable memory) — in which case `ops` is left fully unpatched.
fn compile_into<T: Tier>(
    ops: &mut [TOp<T>],
    slots: &[Slot],
    lay: ValueLayout,
) -> Option<(ExecMem, Box<[TOp<T>]>)> {
    let (code, chunks) = compile_stream(slots, lay);
    if chunks.is_empty() {
        return None;
    }
    let mut mem = ExecMem::new(code.len())?;
    if !mem.fill(&code) || !mem.seal() {
        return None;
    }
    // Box the originals first: the patched slots point at these heap addresses, which
    // stay put when the artifact moves.
    let orig: Box<[TOp<T>]> = chunks.iter().map(|c| ops[c.head_pc]).collect();
    for (k, c) in chunks.iter().enumerate() {
        let slot = &mut ops[c.head_pc];
        slot.h = h_jit::<T> as Handler<T>;
        slot.i = mem.addr(c.off) as i64;
        slot.j = &orig[k] as *const TOp<T> as i64;
    }
    Some((mem, orig))
}

/// Builds the per-iteration dispatch table for a resolved tier: `None` for the switch
/// tier (no table at all), a plain threaded table for `Threaded` (and for `Jit` when
/// unsupported or nothing compiled), or a chunk-patched table plus its [`JitArtifact`].
pub(crate) fn build_iter_table<T: Tier>(
    tier: DispatchTier,
    loop_image: &LoopImage,
) -> Option<(IterTable<T>, Option<JitArtifact<T>>)> {
    if tier == DispatchTier::Switch {
        return None;
    }
    let mut table = IterTable::build(loop_image);
    let mut artifact = None;
    if tier == DispatchTier::Jit && jit_supported() {
        if let Some(lay) = layout() {
            // Iteration streams pass through as-is: sync and control ops bound chunks,
            // and in-chunk side exits resume on the (unpatched) interior slots.
            let slots: Vec<Slot> = loop_image
                .pcode
                .iter()
                .map(|p| Slot::Op(p.clone()))
                .collect();
            if let Some(part) = compile_into(&mut table.ops, &slots, lay) {
                artifact = Some(JitArtifact { parts: vec![part] });
            }
        }
    }
    Some((table, artifact))
}

/// One flat-stream slot: `Wait`/`Signal` are no-ops in flat mode (chunks may span them),
/// control ops bound chunks, data ops specialize exactly like `decode_flat_op` does.
fn flat_slot(op: &Op) -> Slot {
    match op {
        Op::Wait { .. } | Op::Signal { .. } => Slot::Nop,
        Op::Select { .. }
        | Op::Call { .. }
        | Op::Jump { .. }
        | Op::Branch { .. }
        | Op::Ret { .. }
        | Op::Trap { .. } => Slot::Bar,
        data => Slot::Op(specialize_op(data, false)),
    }
}

/// [`build_iter_table`]'s analogue for the flat engine (phase A/C, callees, calibration
/// kernels): per-function chunk compilation over the whole image.
pub(crate) fn build_flat_tables<T: Tier>(
    tier: DispatchTier,
    image: &ExecImage,
) -> Option<(FlatTables<T>, Option<JitArtifact<T>>)> {
    if tier == DispatchTier::Switch {
        return None;
    }
    let mut tables = FlatTables::build(image);
    let mut parts = Vec::new();
    if tier == DispatchTier::Jit && jit_supported() {
        if let Some(lay) = layout() {
            for (k, f) in image.funcs.iter().enumerate() {
                let slots: Vec<Slot> = f.code.iter().map(flat_slot).collect();
                if let Some(part) = compile_into(&mut tables.funcs[k], &slots, lay) {
                    parts.push(part);
                }
            }
        }
    }
    let artifact = (!parts.is_empty()).then_some(JitArtifact { parts });
    Some((tables, artifact))
}

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::parallel_image::POp;
    use helix_ir::interp::{eval_binop, eval_pred, eval_unop};
    use helix_ir::{BinOp, Pred, UnOp};

    fn perms_of(region: (usize, usize)) -> Option<String> {
        let maps = std::fs::read_to_string("/proc/self/maps").ok()?;
        for line in maps.lines() {
            let Some((range, rest)) = line.split_once(' ') else {
                continue;
            };
            let Some((s, e)) = range.split_once('-') else {
                continue;
            };
            let s = usize::from_str_radix(s, 16).ok()?;
            let e = usize::from_str_radix(e, 16).ok()?;
            if s <= region.0 && region.0 + region.1 <= e {
                return Some(rest.split(' ').next()?.to_string());
            }
        }
        None
    }

    #[test]
    fn exec_mem_is_never_writable_and_executable_at_once() {
        let mut mem = ExecMem::new(5 * 4096).expect("mmap");
        let region = mem.region();
        assert!(!mem.sealed());
        let before = perms_of(region).expect("region mapped");
        assert!(before.starts_with("rw-"), "pre-seal perms: {before}");
        assert!(mem.fill(&[0xC3])); // ret
        assert!(mem.seal());
        assert!(mem.sealed());
        let after = perms_of(region).expect("region mapped");
        assert!(after.starts_with("r-x"), "post-seal perms: {after}");
        // Sealed memory refuses writes: the W in W^X is gone for good.
        assert!(!mem.fill(&[0x90]));
        drop(mem);
        // Unmapped on drop: the exact range is no longer an executable mapping.
        assert_ne!(perms_of(region).as_deref(), Some("r-xp"));
    }

    #[test]
    fn layout_probe_succeeds_on_this_target() {
        let _env = TEST_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let lay = layout().expect("Value layout probe");
        assert_eq!(lay.pay_off % 8, 0);
        assert_ne!(lay.tag_int, lay.tag_float);
        assert!(jit_supported());
    }

    #[test]
    fn disable_env_var_forces_fallback() {
        let _env = TEST_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("HELIX_DISABLE_JIT", "1");
        assert!(!jit_supported());
        std::env::remove_var("HELIX_DISABLE_JIT");
        assert!(jit_supported());
    }

    /// Compiles `slots` (auto-terminated) as one chunk and runs it over `regs`. Appends
    /// three barrier slots so a trailing fused window (up to 3 wide) keeps the interior
    /// stream slots it would have in a real pcode stream.
    fn run_chunk(slots: Vec<Slot>, regs: &mut [Value]) -> usize {
        let mut slots = slots;
        slots.extend([Slot::Bar, Slot::Bar, Slot::Bar]);
        let (code, chunks) = compile_stream(&slots, layout().unwrap());
        assert_eq!(chunks.len(), 1, "expected exactly one chunk");
        assert_eq!(chunks[0].head_pc, 0);
        let mut mem = ExecMem::new(code.len()).unwrap();
        assert!(mem.fill(&code) && mem.seal());
        let f: ChunkFn = unsafe { std::mem::transmute(mem.addr(chunks[0].off)) };
        f(regs.as_mut_ptr()) as usize
    }

    fn bin_rr(dst: u32, op: BinOp, lhs: u32, rhs: u32) -> Slot {
        Slot::Op(POp::BinRR { dst, op, lhs, rhs })
    }

    /// Every integer binop against the interpreter, over an edge-heavy operand grid.
    #[test]
    fn integer_binops_match_the_interpreter() {
        let grid = [
            0i64,
            1,
            -1,
            2,
            -7,
            63,
            64,
            65,
            -64,
            i64::MAX,
            i64::MIN,
            i64::MIN + 1,
            0x5555_5555_5555_5555,
        ];
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Min,
            BinOp::Max,
        ];
        for op in ops {
            for &x in &grid {
                for &y in &grid {
                    let mut regs = [Value::Int(x), Value::Int(y), Value::Int(0), Value::Int(0)];
                    let resume =
                        run_chunk(vec![bin_rr(2, op, 0, 1), bin_rr(3, op, 1, 0)], &mut regs);
                    assert_eq!(resume, 2);
                    let want_xy = eval_binop(op, Value::Int(x), Value::Int(y));
                    let want_yx = eval_binop(op, Value::Int(y), Value::Int(x));
                    assert_eq!(regs[2], want_xy, "{op:?} {x} {y}");
                    assert_eq!(regs[3], want_yx, "{op:?} {y} {x}");
                }
            }
        }
    }

    /// Dual-path ops with float and mixed operands, including ±0.0 and NaN divisors.
    #[test]
    fn float_and_mixed_binops_match_the_interpreter() {
        let grid = [
            Value::Int(3),
            Value::Int(-5),
            Value::Int(0),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(2.5),
            Value::Float(-1.5e100),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
        ];
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
            for &x in &grid {
                for &y in &grid {
                    let mut regs = [x, y, Value::Int(0)];
                    let resume =
                        run_chunk(vec![bin_rr(2, op, 0, 1), bin_rr(2, op, 0, 1)], &mut regs);
                    assert_eq!(resume, 2);
                    let want = eval_binop(op, x, y);
                    // NaN != NaN, so compare the bit patterns like the memory tier does.
                    assert_eq!(regs[2].to_bits(), want.to_bits(), "{op:?} {x:?} {y:?}");
                    assert_eq!(regs[2].is_float(), want.is_float(), "{op:?} {x:?} {y:?}");
                }
            }
        }
    }

    /// Immediate forms (BinRI / BinIR), including float immediates on dual-path ops.
    #[test]
    fn immediate_binops_match_the_interpreter() {
        let cases = [
            (BinOp::Add, Value::Int(5), Value::Float(2.5)),
            (BinOp::Div, Value::Float(4.0), Value::Int(-3)),
            (BinOp::Mul, Value::Int(-7), Value::Float(0.5)),
            (BinOp::Sub, Value::Float(1.25), Value::Float(-0.0)),
            (BinOp::Shl, Value::Int(999), Value::Int(3)),
            (BinOp::Rem, Value::Int(0), Value::Int(17)),
        ];
        for (op, imm, reg) in cases {
            let mut regs = [reg, Value::Int(0), Value::Int(0)];
            let resume = run_chunk(
                vec![
                    Slot::Op(POp::BinRI {
                        dst: 1,
                        op,
                        lhs: 0,
                        rhs: imm,
                    }),
                    Slot::Op(POp::BinIR {
                        dst: 2,
                        op,
                        lhs: imm,
                        rhs: 0,
                    }),
                ],
                &mut regs,
            );
            assert_eq!(resume, 2);
            assert_eq!(regs[1], eval_binop(op, reg, imm), "{op:?} RI");
            assert_eq!(regs[2], eval_binop(op, imm, reg), "{op:?} IR");
        }
    }

    #[test]
    fn unops_and_moves_match_the_interpreter() {
        let inputs = [
            Value::Int(5),
            Value::Int(i64::MIN),
            Value::Float(-2.5),
            Value::Float(f64::NAN),
        ];
        for v in inputs {
            for op in [UnOp::Neg, UnOp::ToFloat] {
                let mut regs = [v, Value::Int(0), Value::Int(0)];
                let resume = run_chunk(
                    vec![
                        Slot::Op(POp::UnR { dst: 1, op, src: 0 }),
                        Slot::Op(POp::MovR { dst: 2, src: 1 }),
                    ],
                    &mut regs,
                );
                assert_eq!(resume, 2);
                let want = eval_unop(op, v);
                assert_eq!(regs[1].to_bits(), want.to_bits(), "{op:?} {v:?}");
                assert_eq!(regs[2].to_bits(), want.to_bits(), "MovR after {op:?}");
            }
        }
        // Not and ToInt are integer-only templates.
        let mut regs = [Value::Int(-9), Value::Int(0), Value::Int(0)];
        let resume = run_chunk(
            vec![
                Slot::Op(POp::UnR {
                    dst: 1,
                    op: UnOp::Not,
                    src: 0,
                }),
                Slot::Op(POp::UnR {
                    dst: 2,
                    op: UnOp::ToInt,
                    src: 0,
                }),
            ],
            &mut regs,
        );
        assert_eq!(resume, 2);
        assert_eq!(regs[1], eval_unop(UnOp::Not, Value::Int(-9)));
        assert_eq!(regs[2], Value::Int(-9));
    }

    #[test]
    fn comparisons_match_the_interpreter() {
        let grid = [0i64, 1, -1, i64::MAX, i64::MIN, 42];
        let preds = [Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge];
        for pred in preds {
            for &x in &grid {
                for &y in &grid {
                    let mut regs = [Value::Int(x), Value::Int(y), Value::Int(9), Value::Int(9)];
                    let resume = run_chunk(
                        vec![
                            Slot::Op(POp::CmpRR {
                                dst: 2,
                                pred,
                                lhs: 0,
                                rhs: 1,
                            }),
                            Slot::Op(POp::CmpRI {
                                dst: 3,
                                pred,
                                lhs: 0,
                                rhs: Value::Int(y),
                            }),
                        ],
                        &mut regs,
                    );
                    assert_eq!(resume, 2);
                    let want = Value::from_bool(eval_pred(pred, Value::Int(x), Value::Int(y)));
                    assert_eq!(regs[2], want, "{pred:?} {x} {y}");
                    assert_eq!(regs[3], want, "{pred:?} {x} imm {y}");
                }
            }
        }
    }

    /// An integer-only op meeting a float operand must exit *before* writing anything,
    /// returning the pc of the refusing op.
    #[test]
    fn side_exit_resumes_at_the_refusing_op_with_no_partial_writes() {
        let mut regs = [
            Value::Int(1),
            Value::Float(2.5),
            Value::Int(77),
            Value::Int(88),
        ];
        let resume = run_chunk(
            vec![
                Slot::Op(POp::MovI {
                    dst: 2,
                    v: Value::Int(5),
                }),
                bin_rr(3, BinOp::And, 0, 1), // float rhs → side exit here
            ],
            &mut regs,
        );
        assert_eq!(resume, 1, "resume at the refusing op");
        assert_eq!(regs[2], Value::Int(5), "ops before the exit committed");
        assert_eq!(regs[3], Value::Int(88), "refusing op wrote nothing");
        // Zero-progress variant: the refusal is the head op, resume == head pc.
        let mut regs = [Value::Float(1.5), Value::Int(3), Value::Int(0)];
        let resume = run_chunk(
            vec![bin_rr(2, BinOp::Xor, 0, 1), bin_rr(2, BinOp::Xor, 0, 1)],
            &mut regs,
        );
        assert_eq!(resume, 0);
        assert_eq!(regs[2], Value::Int(0));
    }

    /// Fused chains decompose into constituent templates whose side exits land on the
    /// interior pcs (which keep their original unfused ops in the real tables).
    #[test]
    fn fused_chains_match_and_side_exit_mid_window() {
        let mut regs = [Value::Int(10), Value::Int(0), Value::Int(0), Value::Int(0)];
        let resume = run_chunk(
            vec![Slot::Op(POp::BinChain3II {
                lhs: 0,
                op1: BinOp::Add,
                i1: 5,
                d1: 1,
                op2: BinOp::Mul,
                i2: 3,
                d2: 2,
                op3: BinOp::Sub,
                i3: 40,
                d3: 3,
            })],
            &mut regs,
        );
        assert_eq!(resume, 3, "3-wide fused window covers pcs 0..3");
        assert_eq!(regs[1], Value::Int(15));
        assert_eq!(regs[2], Value::Int(45));
        assert_eq!(regs[3], Value::Int(5));
        // Chain whose op1 (dual-path) produces a float that op2 (int-only) refuses:
        // the exit pc is the *second* constituent slot.
        let mut regs = [Value::Float(1.5), Value::Int(0), Value::Int(66)];
        let resume = run_chunk(
            vec![Slot::Op(POp::BinChainII {
                lhs: 0,
                op1: BinOp::Add,
                i1: Value::Int(1),
                d1: 1,
                op2: BinOp::And,
                i2: Value::Int(7),
                d2: 2,
            })],
            &mut regs,
        );
        assert_eq!(resume, 1, "exit at the interior constituent");
        assert_eq!(regs[1].to_bits(), Value::Float(2.5).to_bits());
        assert_eq!(regs[2], Value::Int(66), "second constituent wrote nothing");
        // Float-immediate chain (BinChain3FF) takes the float path throughout.
        let mut regs = [Value::Int(2), Value::Int(0), Value::Int(0), Value::Int(0)];
        let resume = run_chunk(
            vec![Slot::Op(POp::BinChain3FF {
                lhs: 0,
                op1: BinOp::Add,
                f1: 0.5,
                d1: 1,
                op2: BinOp::Mul,
                f2: 2.0,
                d2: 2,
                op3: BinOp::Div,
                f3: 0.0,
                d3: 3,
            })],
            &mut regs,
        );
        assert_eq!(resume, 3);
        assert_eq!(regs[1], Value::Float(2.5));
        assert_eq!(regs[2], Value::Float(5.0));
        assert_eq!(
            regs[3],
            Value::Float(0.0),
            "float division by zero yields 0.0"
        );
    }

    /// Streams that never leave room to resume (no terminator) compile to no chunks;
    /// single coverable ops are not worth a chunk either.
    #[test]
    fn unprofitable_and_unterminated_runs_are_left_to_the_threaded_handlers() {
        let lay = layout().unwrap();
        let no_bar = vec![
            Slot::Op(POp::MovI {
                dst: 0,
                v: Value::Int(1),
            }),
            Slot::Op(POp::MovI {
                dst: 1,
                v: Value::Int(2),
            }),
        ];
        let (_, chunks) = compile_stream(&no_bar, lay);
        assert!(chunks.is_empty(), "no resume slot → no chunk");
        let single = vec![
            Slot::Op(POp::MovI {
                dst: 0,
                v: Value::Int(1),
            }),
            Slot::Bar,
        ];
        let (_, chunks) = compile_stream(&single, lay);
        assert!(chunks.is_empty(), "one op → not worth a chunk");
    }
}
