//! The one-pass x86-64 template emitter: lowers runs of "simple" specialized [`POp`]
//! shapes to straight-line machine code, concatenated into one buffer per op stream.
//!
//! ## Template contract
//!
//! Every compiled chunk is one `extern "C" fn(regs: *mut Value) -> u64` function:
//!
//! * `rdi` stays pinned on the guest register slab for the whole chunk (guest register
//!   `r` lives at `rdi + 16*r`, tag byte and payload word at the probed
//!   [`ValueLayout`] offsets);
//! * the return value is the **resume pc**: the slot after the last executed op on the
//!   normal path, or the slot of the op whose operands fell outside the compiled fast
//!   path (a *side exit* — e.g. a float where the integer template was emitted). The
//!   threaded dispatch loop resumes interpretation there, so a chunk is always
//!   semantically a prefix of the interpreted stream;
//! * templates perform **all operand checks before the first register write**, so a
//!   side-exiting op has no partial effects and the interpreter can re-run it whole;
//! * chunks are leaf functions: no stack frame, no calls, no writes outside the slab —
//!   a panic can only originate in Rust handler code, never under a JIT frame, which is
//!   what lets worker panics unwind cleanly through the trampoline.
//!
//! ## Bitwise fidelity
//!
//! Each template is a transliteration of `eval_binop`/`eval_pred`/`eval_unop` (see
//! `helix_ir::interp`), including the edge cases: wrapping integer arithmetic, division
//! and remainder by zero yielding zero, `i64::MIN / -1` wrapping, shift counts masked
//! modulo 64, mixed int/float operands promoting to float, and float division by ±0.0
//! yielding 0.0. Shapes the templates do not cover (`Rem` on floats, `Min`/`Max` on
//! floats, float comparisons, every memory/control/sync op) either side-exit at run time
//! or are never included in a chunk — the fuzz oracle holds the tiers to bitwise
//! agreement either way.

use super::ValueLayout;
use crate::parallel_image::POp;
use helix_ir::{BinOp, Pred, UnOp, Value};

/// One compiled chunk: the stream slot it replaces and its entry offset in the blob.
pub(crate) struct Chunk {
    pub head_pc: usize,
    pub off: usize,
}

/// One stream slot as the chunk scanner sees it.
pub(crate) enum Slot {
    /// A specialized op (iteration streams pass `pcode` through unchanged; flat streams
    /// pre-specialize their data ops).
    Op(POp),
    /// An op with no effect in this stream (flat-mode `Wait`/`Signal`): coverable by a
    /// chunk at zero cost.
    Nop,
    /// Anything the templates do not cover: terminates any chunk.
    Bar,
}

// ---------------------------------------------------------------------------
// Coverage predicate (must stay in exact sync with the templates below).
// ---------------------------------------------------------------------------

/// Largest guest register index addressable with a 32-bit displacement.
const MAX_REG: u32 = (i32::MAX as u32 - 32) / 16;

/// Binary ops with both an integer and a float template (mixed operands promote).
fn dual_path(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
}

/// Can `op` with this immediate be emitted? Integer-only ops (bitwise, shifts, `Rem`,
/// `Min`/`Max`) take a float operand to the interpreter via a side exit, so a *statically*
/// float immediate would compile to an always-exit template — not worth a chunk slot.
fn bin_ok(op: BinOp, imm: Option<Value>) -> bool {
    dual_path(op) || imm.is_none_or(|v| !v.is_float())
}

fn regs_ok(rs: &[u32]) -> bool {
    rs.iter().all(|&r| r <= MAX_REG)
}

/// How many constituent ops the template for `p` covers, or `None` when `p` is not
/// JIT-coverable. Fused superinstructions decompose into their constituent templates
/// (the JIT removes dispatch entirely, which is the very cost fusion existed to
/// amortize), so chains count their full width.
pub(crate) fn coverage(p: &POp) -> Option<usize> {
    match p {
        POp::MovR { dst, src } => regs_ok(&[*dst, *src]).then_some(1),
        POp::MovI { dst, .. } => regs_ok(&[*dst]).then_some(1),
        POp::UnR { dst, src, .. } => regs_ok(&[*dst, *src]).then_some(1),
        POp::BinRR { dst, op, lhs, rhs } => {
            (regs_ok(&[*dst, *lhs, *rhs]) && bin_ok(*op, None)).then_some(1)
        }
        POp::BinRI { dst, op, lhs, rhs } => {
            (regs_ok(&[*dst, *lhs]) && bin_ok(*op, Some(*rhs))).then_some(1)
        }
        POp::BinIR { dst, op, lhs, rhs } => {
            (regs_ok(&[*dst, *rhs]) && bin_ok(*op, Some(*lhs))).then_some(1)
        }
        POp::CmpRR { dst, lhs, rhs, .. } => regs_ok(&[*dst, *lhs, *rhs]).then_some(1),
        POp::CmpRI { dst, lhs, rhs, .. } => {
            (regs_ok(&[*dst, *lhs]) && !rhs.is_float()).then_some(1)
        }
        POp::CmpIR { dst, lhs, rhs, .. } => {
            (regs_ok(&[*dst, *rhs]) && !lhs.is_float()).then_some(1)
        }
        POp::BinChainII {
            lhs,
            op1,
            i1,
            d1,
            op2,
            i2,
            d2,
        } => (regs_ok(&[*lhs, *d1, *d2]) && bin_ok(*op1, Some(*i1)) && bin_ok(*op2, Some(*i2)))
            .then_some(2),
        POp::BinChain3II {
            lhs, d1, d2, d3, ..
        } => regs_ok(&[*lhs, *d1, *d2, *d3]).then_some(3),
        POp::BinChain3FF {
            lhs,
            op1,
            d1,
            op2,
            d2,
            op3,
            d3,
            ..
        } => (regs_ok(&[*lhs, *d1, *d2, *d3])
            && dual_path(*op1)
            && dual_path(*op2)
            && dual_path(*op3))
        .then_some(3),
        POp::BinChainRI {
            lhs,
            rhs,
            op1,
            d1,
            op2,
            i2,
            d2,
        } => (regs_ok(&[*lhs, *rhs, *d1, *d2]) && bin_ok(*op1, None) && bin_ok(*op2, Some(*i2)))
            .then_some(2),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// A minimal x86-64 assembler: exactly the encodings the templates need.
// ---------------------------------------------------------------------------

/// Host scratch registers (REX-free encodings only; `rdi` is the pinned slab base).
const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;
const RDI: u8 = 7;

/// Condition codes (`jcc` = `0F 80+cc`, `setcc` = `0F 90+cc`, `cmovcc` = `0F 40+cc`).
const CC_E: u8 = 0x4;
const CC_NE: u8 = 0x5;
const CC_P: u8 = 0xA;
const CC_L: u8 = 0xC;
const CC_GE: u8 = 0xD;
const CC_LE: u8 = 0xE;
const CC_G: u8 = 0xF;

fn pred_cc(p: Pred) -> u8 {
    match p {
        Pred::Eq => CC_E,
        Pred::Ne => CC_NE,
        Pred::Lt => CC_L,
        Pred::Le => CC_LE,
        Pred::Gt => CC_G,
        Pred::Ge => CC_GE,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Label(usize);

pub(crate) struct Asm {
    code: Vec<u8>,
    /// `(position of a rel32 to patch, target label)`.
    fixups: Vec<(usize, Label)>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    pub(crate) fn new() -> Asm {
        Asm {
            code: Vec::new(),
            fixups: Vec::new(),
            labels: Vec::new(),
        }
    }

    pub(crate) fn here(&self) -> usize {
        self.code.len()
    }

    fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none());
        self.labels[l.0] = Some(self.code.len());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.code.extend_from_slice(b);
    }

    fn imm32(&mut self, v: i32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// `[rdi + disp32]` ModRM for operand register `reg`.
    fn mem(&mut self, reg: u8, disp: i32) {
        self.code.push(0x80 | (reg << 3) | RDI);
        self.imm32(disp);
    }

    // --- integer moves and ALU ---

    /// `mov reg, qword [rdi+disp]`
    fn load64(&mut self, reg: u8, disp: i32) {
        self.bytes(&[0x48, 0x8B]);
        self.mem(reg, disp);
    }

    /// `mov qword [rdi+disp], reg`
    fn store64(&mut self, disp: i32, reg: u8) {
        self.bytes(&[0x48, 0x89]);
        self.mem(reg, disp);
    }

    /// `mov byte [rdi+disp], imm8`
    fn store_tag(&mut self, disp: i32, tag: u8) {
        self.bytes(&[0xC6]);
        self.mem(0, disp);
        self.code.push(tag);
    }

    /// `cmp byte [rdi+disp], imm8`
    fn cmp_tag(&mut self, disp: i32, tag: u8) {
        self.bytes(&[0x80]);
        self.mem(7, disp);
        self.code.push(tag);
    }

    /// `mov reg, imm64`
    fn movabs(&mut self, reg: u8, v: u64) {
        self.bytes(&[0x48, 0xB8 + reg]);
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// Register-register ALU with opcode `op` (`01` add, `29` sub, `21` and, `09` or,
    /// `31` xor, `39` cmp, `85` test): `op rm=dst, reg=src`.
    fn alu(&mut self, opcode: u8, dst: u8, src: u8) {
        self.bytes(&[0x48, opcode, 0xC0 | (src << 3) | dst]);
    }

    /// `imul dst, src`
    fn imul(&mut self, dst: u8, src: u8) {
        self.bytes(&[0x48, 0x0F, 0xAF, 0xC0 | (dst << 3) | src]);
    }

    /// `F7 /ext` group on a register (`2` not, `3` neg, `7` idiv).
    fn grp_f7(&mut self, ext: u8, reg: u8) {
        self.bytes(&[0x48, 0xF7, 0xC0 | (ext << 3) | reg]);
    }

    /// `cqo`
    fn cqo(&mut self) {
        self.bytes(&[0x48, 0x99]);
    }

    /// `shl rax, cl` (`ext` 4) / `sar rax, cl` (`ext` 7).
    fn shift_rax_cl(&mut self, ext: u8) {
        self.bytes(&[0x48, 0xD3, 0xC0 | (ext << 3) | RAX]);
    }

    /// `cmovcc dst, src`
    fn cmov(&mut self, cc: u8, dst: u8, src: u8) {
        self.bytes(&[0x48, 0x0F, 0x40 + cc, 0xC0 | (dst << 3) | src]);
    }

    /// `setcc al` + `movzx eax, al`
    fn setcc_rax(&mut self, cc: u8) {
        self.bytes(&[0x0F, 0x90 + cc, 0xC0, 0x0F, 0xB6, 0xC0]);
    }

    /// `mov eax, imm32; ret` — the chunk epilogue returning a resume pc.
    fn ret_pc(&mut self, pc: usize) {
        self.code.push(0xB8);
        self.imm32(pc as i32);
        self.code.push(0xC3);
    }

    // --- SSE ---

    /// `movsd xmm, qword [rdi+disp]`
    fn movsd_load(&mut self, xmm: u8, disp: i32) {
        self.bytes(&[0xF2, 0x0F, 0x10]);
        self.mem(xmm, disp);
    }

    /// `movsd qword [rdi+disp], xmm`
    fn movsd_store(&mut self, disp: i32, xmm: u8) {
        self.bytes(&[0xF2, 0x0F, 0x11]);
        self.mem(xmm, disp);
    }

    /// `movups xmm, [rdi+disp]` / `movups [rdi+disp], xmm`
    fn movups(&mut self, store: bool, xmm: u8, disp: i32) {
        self.bytes(&[0x0F, if store { 0x11 } else { 0x10 }]);
        self.mem(xmm, disp);
    }

    /// `cvtsi2sd xmm, qword [rdi+disp]`
    fn cvtsi2sd_mem(&mut self, xmm: u8, disp: i32) {
        self.bytes(&[0xF2, 0x48, 0x0F, 0x2A]);
        self.mem(xmm, disp);
    }

    /// `cvtsi2sd xmm, r64`
    fn cvtsi2sd_reg(&mut self, xmm: u8, reg: u8) {
        self.bytes(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0 | (xmm << 3) | reg]);
    }

    /// `movq xmm, r64`
    fn movq(&mut self, xmm: u8, reg: u8) {
        self.bytes(&[0x66, 0x48, 0x0F, 0x6E, 0xC0 | (xmm << 3) | reg]);
    }

    /// Packed-double ALU `xmm0 op= xmm1`: `58` addsd, `5C` subsd, `59` mulsd, `5E` divsd.
    fn sse_arith(&mut self, opcode: u8) {
        self.bytes(&[0xF2, 0x0F, opcode, 0xC1]);
    }

    /// `pxor xmmA, xmmB` (bitwise zero / sign games).
    fn pxor(&mut self, a: u8, b: u8) {
        self.bytes(&[0x66, 0x0F, 0xEF, 0xC0 | (a << 3) | b]);
    }

    /// `ucomisd xmmA, xmmB`
    fn ucomisd(&mut self, a: u8, b: u8) {
        self.bytes(&[0x66, 0x0F, 0x2E, 0xC0 | (a << 3) | b]);
    }

    // --- control ---

    fn jcc(&mut self, cc: u8, l: Label) {
        self.bytes(&[0x0F, 0x80 + cc]);
        self.fixups.push((self.code.len(), l));
        self.imm32(0);
    }

    fn jmp(&mut self, l: Label) {
        self.code.push(0xE9);
        self.fixups.push((self.code.len(), l));
        self.imm32(0);
    }

    pub(crate) fn finish(mut self) -> Vec<u8> {
        for (pos, l) in self.fixups {
            let target = self.labels[l.0].expect("unbound jit label");
            let rel = target as i64 - (pos as i64 + 4);
            self.code[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
        }
        self.code
    }
}

// ---------------------------------------------------------------------------
// Templates.
// ---------------------------------------------------------------------------

/// A binary operand after decomposition: a guest register or a known immediate.
#[derive(Clone, Copy)]
enum Src {
    Reg(u32),
    Imm(Value),
}

/// Per-chunk emission state: the layout constants plus the lazily created side-exit
/// labels (one per source pc, shared by every check in that op's template).
struct Emit {
    lay: ValueLayout,
    exits: Vec<(usize, Label)>,
}

impl Emit {
    fn tag_of(&self, r: u32) -> i32 {
        r as i32 * 16 + self.lay.tag_off
    }

    fn pay_of(&self, r: u32) -> i32 {
        r as i32 * 16 + self.lay.pay_off
    }

    fn exit(&mut self, a: &mut Asm, pc: usize) -> Label {
        if let Some((_, l)) = self.exits.iter().find(|(p, _)| *p == pc) {
            return *l;
        }
        let l = a.label();
        self.exits.push((pc, l));
        l
    }

    /// `jne exit(pc)` unless the tag byte of guest `r` is the integer tag.
    fn require_int(&mut self, a: &mut Asm, r: u32, pc: usize) {
        let tag = self.tag_of(r);
        let tag_int = self.lay.tag_int;
        let l = self.exit(a, pc);
        a.cmp_tag(tag, tag_int);
        a.jcc(CC_NE, l);
    }

    /// Writes `rax` (+ the int tag) into guest `dst`.
    fn store_int(&mut self, a: &mut Asm, dst: u32) {
        a.store64(self.pay_of(dst), RAX);
        a.store_tag(self.tag_of(dst), self.lay.tag_int);
    }

    /// Writes `xmm0` (+ the float tag) into guest `dst`.
    fn store_float(&mut self, a: &mut Asm, dst: u32) {
        a.movsd_store(self.pay_of(dst), 0);
        a.store_tag(self.tag_of(dst), self.lay.tag_float);
    }

    /// Loads `src` into integer scratch `reg` (tags already verified / imm known int).
    fn load_int(&mut self, a: &mut Asm, reg: u8, src: Src) {
        match src {
            Src::Reg(r) => a.load64(reg, self.pay_of(r)),
            Src::Imm(v) => a.movabs(reg, v.to_bits()),
        }
    }

    /// Loads `src` into `xmm`, promoting integers exactly like `Value::as_float`.
    /// Clobbers `rax` for immediates.
    fn load_float(&mut self, a: &mut Asm, xmm: u8, src: Src) {
        match src {
            Src::Reg(r) => {
                // Runtime tag dispatch: cvtsi2sd for Int, movsd for Float.
                let f = a.label();
                let done = a.label();
                a.cmp_tag(self.tag_of(r), self.lay.tag_int);
                a.jcc(CC_NE, f);
                a.cvtsi2sd_mem(xmm, self.pay_of(r));
                a.jmp(done);
                a.bind(f);
                a.movsd_load(xmm, self.pay_of(r));
                a.bind(done);
            }
            Src::Imm(Value::Float(v)) => {
                a.movabs(RAX, v.to_bits());
                a.movq(xmm, RAX);
            }
            Src::Imm(Value::Int(i)) => {
                a.movabs(RAX, i as u64);
                a.cvtsi2sd_reg(xmm, RAX);
            }
        }
    }

    /// The integer path of a binary op, operands in `rax`/`rcx`, result left in `rax`.
    /// Caller guarantees both operands are integers.
    fn int_arith(&mut self, a: &mut Asm, op: BinOp) {
        match op {
            BinOp::Add => a.alu(0x01, RAX, RCX),
            BinOp::Sub => a.alu(0x29, RAX, RCX),
            BinOp::Mul => a.imul(RAX, RCX),
            BinOp::And => a.alu(0x21, RAX, RCX),
            BinOp::Or => a.alu(0x09, RAX, RCX),
            BinOp::Xor => a.alu(0x31, RAX, RCX),
            BinOp::Shl => a.shift_rax_cl(4),
            BinOp::Shr => a.shift_rax_cl(7),
            BinOp::Min => {
                a.alu(0x39, RAX, RCX); // cmp rax, rcx
                a.cmov(CC_G, RAX, RCX);
            }
            BinOp::Max => {
                a.alu(0x39, RAX, RCX);
                a.cmov(CC_L, RAX, RCX);
            }
            BinOp::Div | BinOp::Rem => {
                // x.wrapping_div/_rem(y) with the interpreter's edges: y == 0 → 0,
                // i64::MIN / -1 → i64::MIN (rem → 0).
                let zero = a.label();
                let do_div = a.label();
                let done = a.label();
                a.alu(0x85, RCX, RCX); // test rcx, rcx
                a.jcc(CC_E, zero);
                a.bytes(&[0x48, 0x83, 0xF9, 0xFF]); // cmp rcx, -1
                a.jcc(CC_NE, do_div);
                a.movabs(RDX, i64::MIN as u64);
                a.alu(0x39, RAX, RDX); // cmp rax, rdx
                if op == BinOp::Div {
                    a.jcc(CC_E, done); // quotient is i64::MIN: already in rax
                } else {
                    a.jcc(CC_E, zero); // remainder is 0
                }
                a.bind(do_div);
                // 32-bit bypass, the same one LLVM emits for the interpreter's
                // `wrapping_div`: when both operands have zero upper halves the signed
                // quotient equals the unsigned 32-bit one, and `div r32` is several
                // times faster than `idiv r64`. `rcx == -1` never qualifies, so the
                // MIN/-1 edge stays on the 64-bit path handled above.
                let slow = a.label();
                a.bytes(&[0x48, 0x89, 0xC2]); // mov rdx, rax
                a.alu(0x09, RDX, RCX); // or rdx, rcx
                a.bytes(&[0x48, 0xC1, 0xEA, 0x20]); // shr rdx, 32
                a.jcc(CC_NE, slow);
                a.bytes(&[0x31, 0xD2]); // xor edx, edx
                a.bytes(&[0xF7, 0xF1]); // div ecx
                if op == BinOp::Rem {
                    a.bytes(&[0x89, 0xD0]); // mov eax, edx
                }
                a.jmp(done);
                a.bind(slow);
                a.cqo();
                a.grp_f7(7, RCX); // idiv rcx
                if op == BinOp::Rem {
                    a.bytes(&[0x48, 0x89, 0xD0]); // mov rax, rdx
                }
                a.jmp(done);
                a.bind(zero);
                a.bytes(&[0x31, 0xC0]); // xor eax, eax
                a.bind(done);
            }
        }
    }

    /// The float path of a dual-path binary op: `xmm0 = xmm0 op xmm1`.
    fn float_arith(&mut self, a: &mut Asm, op: BinOp) {
        match op {
            BinOp::Add => a.sse_arith(0x58),
            BinOp::Sub => a.sse_arith(0x5C),
            BinOp::Mul => a.sse_arith(0x59),
            BinOp::Div => {
                // y == 0.0 (either zero; NaN is not equal) → 0.0, else x / y.
                let do_div = a.label();
                let done = a.label();
                a.pxor(2, 2);
                a.ucomisd(1, 2);
                a.jcc(CC_P, do_div); // unordered: y is NaN, divide
                a.jcc(CC_NE, do_div);
                a.pxor(0, 0);
                a.jmp(done);
                a.bind(do_div);
                a.sse_arith(0x5E);
                a.bind(done);
            }
            _ => unreachable!("float path only exists for dual-path ops"),
        }
    }

    /// Full template for `dst = lhs op rhs` at stream slot `pc`.
    fn bin(&mut self, a: &mut Asm, dst: u32, op: BinOp, lhs: Src, rhs: Src, pc: usize) {
        let static_float =
            matches!(lhs, Src::Imm(Value::Float(_))) || matches!(rhs, Src::Imm(Value::Float(_)));
        if !dual_path(op) {
            // Integer-only template; floats side-exit (coverage() rejected float imms).
            debug_assert!(!static_float);
            if let Src::Reg(r) = lhs {
                self.require_int(a, r, pc);
            }
            if let Src::Reg(r) = rhs {
                self.require_int(a, r, pc);
            }
            self.load_int(a, RAX, lhs);
            self.load_int(a, RCX, rhs);
            self.int_arith(a, op);
            self.store_int(a, dst);
            return;
        }
        if static_float {
            // A float immediate forces the float path unconditionally.
            self.load_float(a, 0, lhs);
            self.load_float(a, 1, rhs);
            self.float_arith(a, op);
            self.store_float(a, dst);
            return;
        }
        // Both-int fast path with an inline float fallback (mixed operands promote).
        let flt = a.label();
        let done = a.label();
        if let Src::Reg(r) = lhs {
            a.cmp_tag(self.tag_of(r), self.lay.tag_int);
            a.jcc(CC_NE, flt);
        }
        if let Src::Reg(r) = rhs {
            a.cmp_tag(self.tag_of(r), self.lay.tag_int);
            a.jcc(CC_NE, flt);
        }
        self.load_int(a, RAX, lhs);
        self.load_int(a, RCX, rhs);
        self.int_arith(a, op);
        self.store_int(a, dst);
        a.jmp(done);
        a.bind(flt);
        self.load_float(a, 0, lhs);
        self.load_float(a, 1, rhs);
        self.float_arith(a, op);
        self.store_float(a, dst);
        a.bind(done);
    }

    /// Template for `dst = lhs pred rhs` (integer comparison; floats side-exit).
    fn cmp(&mut self, a: &mut Asm, dst: u32, pred: Pred, lhs: Src, rhs: Src, pc: usize) {
        if let Src::Reg(r) = lhs {
            self.require_int(a, r, pc);
        }
        if let Src::Reg(r) = rhs {
            self.require_int(a, r, pc);
        }
        self.load_int(a, RAX, lhs);
        self.load_int(a, RCX, rhs);
        a.alu(0x39, RAX, RCX); // cmp rax, rcx
        a.setcc_rax(pred_cc(pred));
        self.store_int(a, dst);
    }

    /// Emits the template for one coverable op (`coverage(p).is_some()` must hold).
    fn op(&mut self, a: &mut Asm, p: &POp, pc: usize) {
        match p {
            POp::MovR { dst, src } => {
                a.movups(false, 0, *src as i32 * 16);
                a.movups(true, 0, *dst as i32 * 16);
            }
            POp::MovI { dst, v } => {
                a.movabs(RAX, v.to_bits());
                a.store64(self.pay_of(*dst), RAX);
                let tag = if v.is_float() {
                    self.lay.tag_float
                } else {
                    self.lay.tag_int
                };
                a.store_tag(self.tag_of(*dst), tag);
            }
            POp::UnR { dst, op, src } => match op {
                UnOp::Neg => {
                    // Int: wrapping negate. Float: flip the sign bit (exactly `-f`).
                    let flt = a.label();
                    let done = a.label();
                    a.cmp_tag(self.tag_of(*src), self.lay.tag_int);
                    a.jcc(CC_NE, flt);
                    a.load64(RAX, self.pay_of(*src));
                    a.grp_f7(3, RAX); // neg rax
                    self.store_int(a, *dst);
                    a.jmp(done);
                    a.bind(flt);
                    a.load64(RAX, self.pay_of(*src));
                    a.movabs(RCX, 1u64 << 63);
                    a.alu(0x31, RAX, RCX); // xor rax, rcx
                    a.store64(self.pay_of(*dst), RAX);
                    a.store_tag(self.tag_of(*dst), self.lay.tag_float);
                    a.bind(done);
                }
                UnOp::Not => {
                    // `!v.as_int()` — the float route needs a saturating cast, so it
                    // side-exits to the interpreter.
                    self.require_int(a, *src, pc);
                    a.load64(RAX, self.pay_of(*src));
                    a.grp_f7(2, RAX); // not rax
                    self.store_int(a, *dst);
                }
                UnOp::ToInt => {
                    // Identity on ints; float truncation saturates, so it side-exits.
                    self.require_int(a, *src, pc);
                    a.load64(RAX, self.pay_of(*src));
                    self.store_int(a, *dst);
                }
                UnOp::ToFloat => {
                    self.load_float(a, 0, Src::Reg(*src));
                    self.store_float(a, *dst);
                }
            },
            POp::BinRR { dst, op, lhs, rhs } => {
                self.bin(a, *dst, *op, Src::Reg(*lhs), Src::Reg(*rhs), pc)
            }
            POp::BinRI { dst, op, lhs, rhs } => {
                self.bin(a, *dst, *op, Src::Reg(*lhs), Src::Imm(*rhs), pc)
            }
            POp::BinIR { dst, op, lhs, rhs } => {
                self.bin(a, *dst, *op, Src::Imm(*lhs), Src::Reg(*rhs), pc)
            }
            POp::CmpRR {
                dst,
                pred,
                lhs,
                rhs,
            } => self.cmp(a, *dst, *pred, Src::Reg(*lhs), Src::Reg(*rhs), pc),
            POp::CmpRI {
                dst,
                pred,
                lhs,
                rhs,
            } => self.cmp(a, *dst, *pred, Src::Reg(*lhs), Src::Imm(*rhs), pc),
            POp::CmpIR {
                dst,
                pred,
                lhs,
                rhs,
            } => self.cmp(a, *dst, *pred, Src::Imm(*lhs), Src::Reg(*rhs), pc),
            // Fused chains decompose into their constituent templates; the side-exit pc
            // of constituent `k` is `pc + k`, whose stream slot still holds the original
            // unfused op (fusion only rewrites the head), so the interpreter resumes
            // mid-window exactly where the native code stopped.
            POp::BinChainII {
                lhs,
                op1,
                i1,
                d1,
                op2,
                i2,
                d2,
            } => {
                self.bin(a, *d1, *op1, Src::Reg(*lhs), Src::Imm(*i1), pc);
                self.bin(a, *d2, *op2, Src::Reg(*d1), Src::Imm(*i2), pc + 1);
            }
            POp::BinChain3II {
                lhs,
                op1,
                i1,
                d1,
                op2,
                i2,
                d2,
                op3,
                i3,
                d3,
            } => {
                self.bin(a, *d1, *op1, Src::Reg(*lhs), Src::Imm(Value::Int(*i1)), pc);
                self.bin(
                    a,
                    *d2,
                    *op2,
                    Src::Reg(*d1),
                    Src::Imm(Value::Int(*i2)),
                    pc + 1,
                );
                self.bin(
                    a,
                    *d3,
                    *op3,
                    Src::Reg(*d2),
                    Src::Imm(Value::Int(*i3)),
                    pc + 2,
                );
            }
            POp::BinChain3FF {
                lhs,
                op1,
                f1,
                d1,
                op2,
                f2,
                d2,
                op3,
                f3,
                d3,
            } => {
                self.bin(
                    a,
                    *d1,
                    *op1,
                    Src::Reg(*lhs),
                    Src::Imm(Value::Float(*f1)),
                    pc,
                );
                self.bin(
                    a,
                    *d2,
                    *op2,
                    Src::Reg(*d1),
                    Src::Imm(Value::Float(*f2)),
                    pc + 1,
                );
                self.bin(
                    a,
                    *d3,
                    *op3,
                    Src::Reg(*d2),
                    Src::Imm(Value::Float(*f3)),
                    pc + 2,
                );
            }
            POp::BinChainRI {
                lhs,
                rhs,
                op1,
                d1,
                op2,
                i2,
                d2,
            } => {
                self.bin(a, *d1, *op1, Src::Reg(*lhs), Src::Reg(*rhs), pc);
                self.bin(a, *d2, *op2, Src::Reg(*d1), Src::Imm(*i2), pc + 1);
            }
            other => unreachable!("op without a template reached the emitter: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The chunk compiler.
// ---------------------------------------------------------------------------

fn slot_width(s: &Slot) -> usize {
    match s {
        Slot::Op(p) => p.fused_width(),
        Slot::Nop | Slot::Bar => 1,
    }
}

/// Compiles every profitable straight-line run of `slots` into one code blob. Returns
/// the machine code and the chunk index (head slot → entry offset). A chunk must cover
/// at least two constituent ops — a single op gains nothing over its threaded handler.
pub(crate) fn compile_stream(slots: &[Slot], lay: ValueLayout) -> (Vec<u8>, Vec<Chunk>) {
    let mut a = Asm::new();
    let mut chunks = Vec::new();
    let mut pc = 0;
    while pc < slots.len() {
        let covered = match &slots[pc] {
            Slot::Op(p) => coverage(p),
            Slot::Nop => Some(0),
            Slot::Bar => None,
        };
        if covered.is_none() {
            pc += slot_width(&slots[pc]);
            continue;
        }
        // Scan the maximal coverable run starting here.
        let head = pc;
        let mut units = 0usize;
        let mut end = pc;
        while end < slots.len() {
            match &slots[end] {
                Slot::Bar => break,
                Slot::Nop => end += 1,
                Slot::Op(p) => match coverage(p) {
                    Some(u) => {
                        units += u;
                        end += p.fused_width();
                    }
                    None => break,
                },
            }
        }
        // A chunk must cover ≥ 2 constituent ops to beat per-op threaded dispatch, and
        // must leave a real slot to resume at (streams always end in a terminator, so
        // the second clause only trips on degenerate all-data streams).
        if units < 2 || end >= slots.len() {
            pc = end.max(head + slot_width(&slots[head]));
            continue;
        }
        // Emit the chunk: body, normal epilogue, then the side-exit stubs.
        let off = a.here();
        let mut e = Emit {
            lay,
            exits: Vec::new(),
        };
        let mut cur = head;
        while cur < end {
            match &slots[cur] {
                Slot::Op(p) => {
                    e.op(&mut a, p, cur);
                    cur += p.fused_width();
                }
                Slot::Nop => cur += 1,
                Slot::Bar => unreachable!("scan stopped before any barrier"),
            }
        }
        a.ret_pc(end);
        for (exit_pc, l) in std::mem::take(&mut e.exits) {
            a.bind(l);
            a.ret_pc(exit_pc);
        }
        chunks.push(Chunk { head_pc: head, off });
        pc = end;
    }
    (a.finish(), chunks)
}
