//! Runtime telemetry: per-worker event rings and stall accounting for parallel runs.
//!
//! The paper's whole argument is that loop selection can *predict* where synchronization
//! time goes; this module is the other half of that claim — it *measures* where the cycles
//! actually went, per segment, per lane, per worker, on the run that just happened. The
//! design constraints, in order:
//!
//! 1. **Zero cost when compiled out.** The `telemetry` cargo feature (default-on) gates
//!    every recording site behind a statically-`None` handle, so a `--no-default-features`
//!    build folds the instrumentation away entirely.
//! 2. **Near-zero cost when disabled at run time.** With [`TelemetryMode::Disabled`]
//!    (the default) no [`TelemetryRun`] is allocated and every hook is one `Option`
//!    discriminant test on the cold side of a wait/signal/claim — never in the straight-line
//!    op dispatch.
//! 3. **No shared-state writes when enabled.** Each worker records into its own
//!    cache-line-aligned [`WorkerSlot`]; there are *no atomics* in the recording path.
//!    Soundness comes from ownership in time: worker `w` is the only thread that ever
//!    writes slot `w`, and the aggregation pass reads the slots only after the pool's
//!    job-ticket join — the same happens-before barrier the run's results already rely on.
//! 4. **Bounded memory.** Events go into a fixed-capacity ring per worker
//!    ([`EVENT_RING_CAP`]); when a run overflows it the oldest events are overwritten and
//!    the report says how many were dropped. Counters are never dropped.
//!
//! Two recording granularities share the machinery: *counters* (claims, iterations,
//! run/wait nanoseconds, spin/yield/park rounds, signals, arena words) and *events*
//! (timestamped [`Event`] records). Under [`TelemetryMode::Full`] everything is exact;
//! under [`TelemetryMode::Sampled`] both events and the fast-path per-lane attribution
//! (signals published, waits satisfied by their first poll) follow the sampling period,
//! while claims, iterations and everything a *blocking* wait records stay exact. Blocking
//! waits record unconditionally in every mode, because stalls are precisely what the
//! telemetry exists to see (and a blocked worker has nothing better to do than write two
//! events). The [`EventKind::WaitBegin`]/[`EventKind::WaitEnd`] balance invariant holds in
//! every mode.
//!
//! The aggregation pass ([`TelemetryRun::report`]) folds the rings and counters into a
//! [`TelemetryReport`]: per-worker summaries (the occupancy timeline), per-lane contention
//! counters keyed by the owning segment, observed per-segment costs (the mean
//! `WaitEnd → Signal` span, pairing events within one worker's ring), and the deadlock tail
//! ([`TelemetryReport::deadlock_tail`]) that [`crate::RuntimeError::Deadlock`] attaches so
//! repros are self-diagnosing.

use crate::parallel_image::{LoopImage, CONTROL_DEP};
use crate::pool::WaitStats;
use helix_ir::{DepId, Op};
use std::cell::UnsafeCell;
use std::time::Instant;

/// Capacity of each worker's event ring. Overflow overwrites the oldest events and is
/// reported as `events_dropped`; counters keep accumulating regardless.
pub const EVENT_RING_CAP: usize = 4096;

/// Lane field value of events that do not target a signal lane.
pub const NO_LANE: u32 = u32::MAX;

/// How much the runtime records during a parallel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Record nothing; every hook is a single branch (or nothing at all when the
    /// `telemetry` feature is compiled out).
    #[default]
    Disabled,
    /// Counters for every iteration; events only for iterations whose number is a multiple
    /// of the period (plus every *blocking* wait). The low-overhead production mode. The
    /// period is rounded up to a power of two so the per-iteration sampling check is a
    /// single mask-and-compare instead of a division.
    Sampled(u32),
    /// Counters and events for every iteration.
    Full,
}

impl TelemetryMode {
    /// Maps a configuration sample period to a mode: `0` disabled, `1` full, `n` sampled.
    pub fn from_sample_period(period: u32) -> TelemetryMode {
        match period {
            0 => TelemetryMode::Disabled,
            1 => TelemetryMode::Full,
            n => TelemetryMode::Sampled(n),
        }
    }

    /// `true` unless the mode is [`TelemetryMode::Disabled`].
    pub fn enabled(&self) -> bool {
        !matches!(self, TelemetryMode::Disabled)
    }
}

/// What happened at one instant of one worker's run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The worker claimed the iteration.
    Claim,
    /// The iteration's bytecode started executing.
    IterStart,
    /// The iteration's bytecode finished (completed, exited, returned, or was cancelled).
    IterFinish,
    /// A `Wait` on a signal lane did not pass its first poll (or a sampled fast-path
    /// `Wait` began); `lane`/`pc` identify the wait site.
    WaitBegin,
    /// The matching end of a [`EventKind::WaitBegin`]; `arg` holds the last lane counter
    /// value observed.
    WaitEnd,
    /// The worker published a signal on `lane`.
    Signal,
    /// The worker's first timed park inside the current blocking wait.
    Park,
}

impl EventKind {
    /// Stable lowercase name (JSON exports, trace names).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Claim => "claim",
            EventKind::IterStart => "iter-start",
            EventKind::IterFinish => "iter-finish",
            EventKind::WaitBegin => "wait-begin",
            EventKind::WaitEnd => "wait-end",
            EventKind::Signal => "signal",
            EventKind::Park => "park",
        }
    }
}

/// One timestamped record in a worker's ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the run's telemetry epoch (just before Phase A).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// The iteration the worker was executing.
    pub iteration: u64,
    /// Logical signal lane for wait/signal events, [`NO_LANE`] otherwise.
    pub lane: u32,
    /// pc of the op in [`LoopImage::code`] for wait/signal events, `0` otherwise.
    pub pc: u32,
    /// Kind-specific payload (the observed lane counter for [`EventKind::WaitEnd`]).
    pub arg: u64,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} it{}", self.kind.name(), self.iteration)?;
        if self.lane != NO_LANE {
            write!(f, " lane{}", self.lane)?;
        }
        if matches!(self.kind, EventKind::WaitEnd) {
            write!(f, " saw{}", self.arg)?;
        }
        Ok(())
    }
}

/// Counters one worker accumulates over a whole run (never dropped; exact except where a
/// field's doc says it follows the sampling period).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Iterations claimed (or started, on the solo/single paths).
    pub claims: u64,
    /// Iteration bodies executed to any end (including cancelled/failed partial ones).
    pub iterations: u64,
    /// Iterations whose events were recorded (equals `iterations` under full mode).
    pub sampled_iterations: u64,
    /// Nanoseconds spent inside *sampled* iteration bodies (includes time blocked in
    /// waits). Under full mode this is total iteration time; under sampling, scale by
    /// `iterations / sampled_iterations` for an estimate (what
    /// [`TelemetryReport::occupancy`](crate::telemetry::TelemetryReport::occupancy) does).
    pub run_ns: u64,
    /// Nanoseconds spent inside blocking lane waits.
    pub wait_ns: u64,
    /// Spin rounds across all blocking waits.
    pub spins: u64,
    /// `yield_now` rounds across all blocking waits.
    pub yields: u64,
    /// Timed parks across all blocking waits.
    pub parks: u64,
    /// Microseconds requested across those parks.
    pub park_us: u64,
    /// Lane signals published (sampled iterations only under [`TelemetryMode::Sampled`];
    /// multiply by the period for an estimate).
    pub signals: u64,
    /// Words served from this worker's private arena.
    pub arena_words: u64,
}

/// Per-logical-lane counters one worker accumulates (summed per lane in the report).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneCounters {
    /// Waits that blocked (failed their first poll). Always exact.
    pub waits: u64,
    /// Waits satisfied by their first poll (sampled iterations only under
    /// [`TelemetryMode::Sampled`]).
    pub fast_hits: u64,
    /// Nanoseconds spent blocked on this lane.
    pub wait_ns: u64,
    /// Spin rounds while blocked on this lane.
    pub spins: u64,
    /// `yield_now` rounds while blocked on this lane.
    pub yields: u64,
    /// Timed parks while blocked on this lane.
    pub parks: u64,
    /// Microseconds requested across those parks.
    pub park_us: u64,
    /// Signals published on this lane.
    pub signals: u64,
}

impl LaneCounters {
    fn add_wait(&mut self, ns: u64, stats: WaitStats) {
        self.waits += 1;
        self.wait_ns += ns;
        self.spins += stats.spins;
        self.yields += stats.yields;
        self.parks += stats.parks;
        self.park_us += stats.park_us;
    }
}

/// Everything one worker records: counters, per-lane counters, and the event ring.
#[derive(Debug)]
struct WorkerData {
    counters: WorkerCounters,
    lanes: Vec<LaneCounters>,
    ring: Vec<Event>,
    /// Total events written (ring length once it saturates; `written - CAP` were dropped).
    written: u64,
}

/// One worker's recording slot, padded to its own cache line so two workers' counters
/// never false-share.
#[repr(align(128))]
struct WorkerSlot(UnsafeCell<WorkerData>);

// SAFETY: slot `w` is written only by the worker holding index `w` (the executor hands
// each worker a `WorkerCtx` with a distinct index), and read only after the worker-pool
// job join — the same barrier that publishes the run's results. There is never a
// concurrent reader or a second writer.
unsafe impl Sync for WorkerSlot {}

/// Telemetry state of one parallel run: the mode, the epoch, one [`WorkerSlot`] per
/// worker, and the image side tables needed to attribute pcs to lanes and segments.
pub struct TelemetryRun {
    mode: TelemetryMode,
    start: Instant,
    /// `iteration & mask == 0` decides event sampling: `0` under full mode (every
    /// iteration passes), `period.next_power_of_two() - 1` under sampling.
    sample_mask: u64,
    workers: Vec<WorkerSlot>,
    /// Logical lane of each pc in [`LoopImage::code`] ([`NO_LANE`] for non-sync ops).
    lane_of_pc: Vec<u32>,
    /// `(dep, segment, pc_range)` of each logical lane, cloned from the image.
    lane_meta: Vec<(DepId, usize, (u32, u32))>,
}

impl TelemetryRun {
    /// Creates the recording state for a run with `workers` workers, or `None` when the
    /// mode is disabled (or the `telemetry` feature is compiled out — the statically-`None`
    /// result is what lets the instrumentation fold away).
    pub fn for_run(mode: TelemetryMode, image: &LoopImage, workers: usize) -> Option<TelemetryRun> {
        if !cfg!(feature = "telemetry") || !mode.enabled() {
            return None;
        }
        let num_lanes = image.num_lanes();
        let lane_of_pc = image
            .code
            .iter()
            .map(|op| match op {
                Op::Wait { dep } | Op::Signal { dep }
                    if *dep != CONTROL_DEP && (*dep as usize) < num_lanes =>
                {
                    *dep
                }
                _ => NO_LANE,
            })
            .collect();
        let lane_meta = image
            .lanes
            .iter()
            .map(|l| (l.dep, l.segment, l.pc_range()))
            .collect();
        let sample_mask = match mode {
            TelemetryMode::Sampled(p) => u64::from(p.max(1)).next_power_of_two() - 1,
            TelemetryMode::Full | TelemetryMode::Disabled => 0,
        };
        Some(TelemetryRun {
            mode,
            start: Instant::now(),
            sample_mask,
            workers: (0..workers.max(1))
                .map(|_| {
                    WorkerSlot(UnsafeCell::new(WorkerData {
                        counters: WorkerCounters::default(),
                        lanes: vec![LaneCounters::default(); num_lanes],
                        ring: Vec::with_capacity(EVENT_RING_CAP.min(1024)),
                        written: 0,
                    }))
                })
                .collect(),
            lane_of_pc,
            lane_meta,
        })
    }

    /// The recording mode.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// The recording handle of worker `worker` (must be a distinct index per thread, and
    /// used only on that worker's thread).
    pub fn ctx(&self, worker: usize) -> WorkerCtx<'_> {
        debug_assert!(worker < self.workers.len());
        WorkerCtx {
            run: self,
            data: self.workers[worker].0.get(),
        }
    }

    /// Folds the per-worker rings and counters into the aggregated report. Consumes the
    /// run state; call only after every worker has left the run (the pool join).
    pub fn report(self) -> TelemetryReport {
        let wall_ns = self.start.elapsed().as_nanos() as u64;
        let mut lanes: Vec<LaneReport> = self
            .lane_meta
            .iter()
            .enumerate()
            .map(|(ix, (dep, segment, pc_range))| LaneReport {
                lane: ix,
                dep: *dep,
                segment: *segment,
                pc_range: *pc_range,
                counters: LaneCounters::default(),
            })
            .collect();
        let workers: Vec<WorkerReport> = self
            .workers
            .into_iter()
            .enumerate()
            .map(|(ix, slot)| {
                let data = slot.0.into_inner();
                for (lane, c) in data.lanes.iter().enumerate() {
                    let l = &mut lanes[lane].counters;
                    l.waits += c.waits;
                    l.fast_hits += c.fast_hits;
                    l.wait_ns += c.wait_ns;
                    l.spins += c.spins;
                    l.yields += c.yields;
                    l.parks += c.parks;
                    l.park_us += c.park_us;
                    l.signals += c.signals;
                }
                let dropped = data.written.saturating_sub(data.ring.len() as u64);
                let mut events = data.ring;
                if dropped > 0 && !events.is_empty() {
                    // The ring wrapped: the oldest surviving event sits at the write cursor.
                    events.rotate_left((data.written % EVENT_RING_CAP as u64) as usize);
                }
                WorkerReport {
                    worker: ix,
                    counters: data.counters,
                    events_dropped: dropped,
                    events,
                }
            })
            .collect();
        TelemetryReport {
            mode: self.mode,
            wall_ns,
            workers,
            lanes,
        }
    }
}

/// A worker's recording handle: the run state plus a raw pointer to this worker's slot.
/// `Copy` so the executor can thread it through closures freely. The cached pointer (not
/// a slot index — the hooks run five times per iteration, and a bounds-checked `Vec`
/// index per hook is measurable on short iteration bodies) makes this `!Send`: a ctx is
/// created on the worker's own thread, which is also the only thread allowed to write the
/// slot.
#[derive(Clone, Copy)]
pub struct WorkerCtx<'a> {
    run: &'a TelemetryRun,
    data: *mut WorkerData,
}

impl WorkerCtx<'_> {
    #[inline(always)]
    fn slot(&self) -> *mut WorkerData {
        self.data
    }

    /// Nanoseconds since the run's telemetry epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.run.start.elapsed().as_nanos() as u64
    }

    /// Does `iteration` record events (not just counters)? One AND + compare — this runs
    /// up to four times per iteration, so it must not contain a division.
    #[inline(always)]
    pub fn sampled(&self, iteration: u64) -> bool {
        iteration & self.run.sample_mask == 0
    }

    /// Logical lane of the sync op at `pc` ([`NO_LANE`] for non-sync pcs).
    #[inline]
    pub fn lane_of(&self, pc: u32) -> u32 {
        self.run
            .lane_of_pc
            .get(pc as usize)
            .copied()
            .unwrap_or(NO_LANE)
    }

    #[inline]
    fn push(&self, kind: EventKind, iteration: u64, lane: u32, pc: u32, arg: u64) {
        let t_ns = self.now_ns();
        // SAFETY: see `WorkerSlot` — this worker is the slot's only writer.
        let d = unsafe { &mut *self.slot() };
        let ev = Event {
            t_ns,
            kind,
            iteration,
            lane,
            pc,
            arg,
        };
        if d.ring.len() < EVENT_RING_CAP {
            d.ring.push(ev);
        } else {
            d.ring[(d.written % EVENT_RING_CAP as u64) as usize] = ev;
        }
        d.written += 1;
    }

    /// The worker claimed `iteration`. Records the sampled event only: the claim/iteration
    /// *counts* are accumulated in the worker's registers and flushed in bulk through
    /// [`WorkerCtx::add_iter_counts`] on loop exit, keeping the hot claim loop free of
    /// per-iteration memory traffic.
    #[inline(always)]
    pub fn on_claim(&self, iteration: u64) {
        if self.sampled(iteration) {
            self.push(EventKind::Claim, iteration, NO_LANE, 0, 0);
        }
    }

    /// The iteration's bytecode is about to run; returns the start timestamp the caller
    /// hands back to [`WorkerCtx::on_iter_finish`]. Unsampled iterations skip the clock
    /// read entirely (two `Instant::now` calls per iteration would dominate short
    /// iteration bodies — the whole point of the sampled mode) and return `u64::MAX`.
    #[inline(always)]
    pub fn on_iter_start(&self, iteration: u64) -> u64 {
        if !self.sampled(iteration) {
            return u64::MAX;
        }
        self.push(EventKind::IterStart, iteration, NO_LANE, 0, 0);
        self.now_ns()
    }

    /// The iteration's bytecode finished (however it ended). `run_ns` accumulates over
    /// *sampled* iterations only; [`TelemetryReport::occupancy`] scales it back up by the
    /// sampling ratio (exact under full mode, where every iteration is sampled). Like
    /// [`WorkerCtx::on_claim`], the iteration *count* is flushed in bulk, not here.
    #[inline(always)]
    pub fn on_iter_finish(&self, iteration: u64, start_ns: u64) {
        if start_ns == u64::MAX {
            return;
        }
        let elapsed = self.now_ns().saturating_sub(start_ns);
        // SAFETY: see `WorkerSlot`.
        let d = unsafe { &mut *self.slot() };
        d.counters.run_ns += elapsed;
        d.counters.sampled_iterations += 1;
        self.push(EventKind::IterFinish, iteration, NO_LANE, 0, elapsed);
    }

    /// Flushes a worker loop's locally accumulated claim/iteration/arena counts into the
    /// slot. Called once per worker exit path (the executor wraps the counts in a guard
    /// whose `Drop` calls this), so the counts stay exact in every mode without an RMW per
    /// iteration on the hot claim loop.
    pub fn add_iter_counts(&self, claims: u64, iterations: u64, arena_words: u64) {
        // SAFETY: see `WorkerSlot`.
        let d = unsafe { &mut *self.slot() };
        d.counters.claims += claims;
        d.counters.iterations += iterations;
        d.counters.arena_words += arena_words;
    }

    /// The worker published a lane signal from the op at `pc`. Recorded (counter and
    /// event) on sampled iterations only: the signal fast path is two instructions of real
    /// work, so even one always-on counter increment per signal is measurable on short
    /// iteration bodies. Under full mode the counts are exact; under sampling, multiply by
    /// the period for an estimate.
    #[inline(always)]
    pub fn on_signal(&self, iteration: u64, pc: u32) {
        if !self.sampled(iteration) {
            return;
        }
        let lane = self.lane_of(pc);
        // SAFETY: see `WorkerSlot`.
        let d = unsafe { &mut *self.slot() };
        d.counters.signals += 1;
        if (lane as usize) < d.lanes.len() {
            d.lanes[lane as usize].signals += 1;
        }
        self.push(EventKind::Signal, iteration, lane, pc, 0);
    }

    /// A `Wait` passed its first poll. Like [`WorkerCtx::on_signal`], recorded on sampled
    /// iterations only — blocking waits (the stalls telemetry exists for) are the path
    /// that records unconditionally, via [`WorkerCtx::on_wait_begin`]/
    /// [`WorkerCtx::on_wait_end`].
    #[inline(always)]
    pub fn on_wait_fast(&self, iteration: u64, pc: u32) {
        if !self.sampled(iteration) {
            return;
        }
        let lane = self.lane_of(pc);
        // SAFETY: see `WorkerSlot`.
        let d = unsafe { &mut *self.slot() };
        if (lane as usize) < d.lanes.len() {
            d.lanes[lane as usize].fast_hits += 1;
        }
        self.push(EventKind::WaitBegin, iteration, lane, pc, 0);
        self.push(EventKind::WaitEnd, iteration, lane, pc, iteration);
    }

    /// A `Wait` failed its first poll and is about to block. Always records the event
    /// (stalls are the signal telemetry exists for); returns the begin timestamp.
    #[inline]
    pub fn on_wait_begin(&self, iteration: u64, pc: u32) -> u64 {
        self.push(EventKind::WaitBegin, iteration, self.lane_of(pc), pc, 0);
        self.now_ns()
    }

    /// The first timed park inside the current blocking wait.
    #[inline]
    pub fn on_park(&self, iteration: u64, pc: u32) {
        self.push(EventKind::Park, iteration, self.lane_of(pc), pc, 0);
    }

    /// The matching end of [`WorkerCtx::on_wait_begin`] — also on the cancelled and
    /// deadlocked exits, so begin/end stay balanced on every path. `observed` is the last
    /// lane counter value seen; `stats` is the backoff breakdown of this wait.
    #[inline]
    pub fn on_wait_end(
        &self,
        iteration: u64,
        pc: u32,
        begin_ns: u64,
        observed: u64,
        stats: WaitStats,
    ) {
        let lane = self.lane_of(pc);
        let elapsed = self.now_ns().saturating_sub(begin_ns);
        // SAFETY: see `WorkerSlot`.
        let d = unsafe { &mut *self.slot() };
        d.counters.wait_ns += elapsed;
        d.counters.spins += stats.spins;
        d.counters.yields += stats.yields;
        d.counters.parks += stats.parks;
        d.counters.park_us += stats.park_us;
        if (lane as usize) < d.lanes.len() {
            d.lanes[lane as usize].add_wait(elapsed, stats);
        }
        self.push(EventKind::WaitEnd, iteration, lane, pc, observed);
    }
}

/// One worker's aggregated view in the report.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index (0 is the submitting/primary thread).
    pub worker: usize,
    /// The run-long counters.
    pub counters: WorkerCounters,
    /// Events overwritten because the ring filled.
    pub events_dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<Event>,
}

/// One logical lane's aggregated view (counters summed over workers).
#[derive(Clone, Debug)]
pub struct LaneReport {
    /// Logical lane index.
    pub lane: usize,
    /// The dependence the lane synchronizes.
    pub dep: DepId,
    /// Index of the owning segment in the plan's segment list.
    pub segment: usize,
    /// The segment's `[first, last]` pc span in [`LoopImage::code`].
    pub pc_range: (u32, u32),
    /// Summed contention counters.
    pub counters: LaneCounters,
}

/// Mean observed cost of one segment, from pairing `WaitEnd → Signal` spans inside each
/// worker's ring (both ends of a pair come from the same worker and iteration, so no
/// cross-ring clock reasoning is needed).
#[derive(Clone, Copy, Debug)]
pub struct ObservedSegmentCost {
    /// Logical lane index.
    pub lane: usize,
    /// The dependence the lane synchronizes.
    pub dep: DepId,
    /// Index of the owning segment in the plan's segment list.
    pub segment: usize,
    /// `WaitEnd → Signal` pairs found.
    pub samples: u64,
    /// Mean nanoseconds from passing the segment's `Wait` to publishing its `Signal`
    /// (the observed analogue of [`LoopImage::segment_span_cycles`]).
    pub mean_body_ns: f64,
    /// Mean nanoseconds blocked per *blocking* wait on this lane (0 when none blocked).
    pub mean_wait_ns: f64,
}

/// The aggregated result of one traced run.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// The mode the run recorded under.
    pub mode: TelemetryMode,
    /// Wall nanoseconds from just before Phase A to the aggregation (the whole run, not
    /// just Phase B).
    pub wall_ns: u64,
    /// One entry per worker.
    pub workers: Vec<WorkerReport>,
    /// One entry per logical signal lane.
    pub lanes: Vec<LaneReport>,
}

/// The last events of one worker when a run deadlocked, attached to
/// [`crate::RuntimeError::Deadlock`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerTail {
    /// Worker index.
    pub worker: usize,
    /// The worker's newest events, oldest first.
    pub events: Vec<Event>,
}

impl std::fmt::Display for WorkerTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}[", self.worker)?;
        for (ix, ev) in self.events.iter().enumerate() {
            if ix > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ev}")?;
        }
        write!(f, "]")
    }
}

impl TelemetryReport {
    /// Iterations executed across all workers.
    pub fn total_iterations(&self) -> u64 {
        self.workers.iter().map(|w| w.counters.iterations).sum()
    }

    /// Per-worker occupancy: the fraction of the run's wall time the worker spent inside
    /// iteration bytecode (run time includes blocked waits; subtract the wait share for
    /// useful-work occupancy). Under sampled mode, the sampled run time is scaled by the
    /// sampling ratio — exact under full mode, an estimate otherwise.
    pub fn occupancy(&self) -> Vec<f64> {
        let wall = self.wall_ns.max(1) as f64;
        self.workers
            .iter()
            .map(|w| {
                let c = &w.counters;
                let scale = if c.sampled_iterations > 0 {
                    c.iterations as f64 / c.sampled_iterations as f64
                } else {
                    1.0
                };
                (c.run_ns as f64 * scale / wall).min(1.0)
            })
            .collect()
    }

    /// Observed per-segment costs (see [`ObservedSegmentCost`]). Lanes with no paired
    /// samples are omitted.
    pub fn observed_segment_costs(&self) -> Vec<ObservedSegmentCost> {
        let n = self.lanes.len();
        let mut body = vec![(0u64, 0u64); n]; // (sum_ns, samples)
        for w in &self.workers {
            // Last WaitEnd per lane, pending a Signal on the same lane and iteration.
            let mut pending: Vec<Option<(u64, u64)>> = vec![None; n]; // (t_ns, iteration)
            for ev in &w.events {
                let lane = ev.lane as usize;
                if lane >= n {
                    continue;
                }
                match ev.kind {
                    EventKind::WaitEnd => pending[lane] = Some((ev.t_ns, ev.iteration)),
                    EventKind::Signal => {
                        if let Some((t0, iter)) = pending[lane].take() {
                            if iter == ev.iteration && ev.t_ns >= t0 {
                                body[lane].0 += ev.t_ns - t0;
                                body[lane].1 += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        self.lanes
            .iter()
            .filter(|l| body[l.lane].1 > 0)
            .map(|l| {
                let (sum, samples) = body[l.lane];
                ObservedSegmentCost {
                    lane: l.lane,
                    dep: l.dep,
                    segment: l.segment,
                    samples,
                    mean_body_ns: sum as f64 / samples as f64,
                    mean_wait_ns: if l.counters.waits > 0 {
                        l.counters.wait_ns as f64 / l.counters.waits as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// The last `n` events of every worker, for self-diagnosing deadlock reports.
    pub fn deadlock_tail(&self, n: usize) -> Vec<WorkerTail> {
        self.workers
            .iter()
            .map(|w| WorkerTail {
                worker: w.worker,
                events: w.events[w.events.len().saturating_sub(n)..].to_vec(),
            })
            .collect()
    }

    /// The human text report: worker occupancy table, then per-lane stall accounting.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let mode = match self.mode {
            TelemetryMode::Disabled => "disabled".to_string(),
            TelemetryMode::Sampled(p) => format!("sampled 1/{p}"),
            TelemetryMode::Full => "full".to_string(),
        };
        let _ = writeln!(
            s,
            "telemetry ({mode}): {} workers, wall {:.3} ms",
            self.workers.len(),
            self.wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  {:<7} {:>7} {:>7} {:>10} {:>10} {:>6} {:>22} {:>8} {:>7}",
            "worker",
            "claims",
            "iters",
            "run ms",
            "wait ms",
            "occ%",
            "spin/yield/park",
            "signals",
            "events"
        );
        for (w, occ) in self.workers.iter().zip(self.occupancy()) {
            let c = &w.counters;
            let events = if w.events_dropped > 0 {
                format!("{}(-{})", w.events.len(), w.events_dropped)
            } else {
                format!("{}", w.events.len())
            };
            let _ = writeln!(
                s,
                "  {:<7} {:>7} {:>7} {:>10.3} {:>10.3} {:>6.1} {:>22} {:>8} {:>7}",
                w.worker,
                c.claims,
                c.iterations,
                c.run_ns as f64 / 1e6,
                c.wait_ns as f64 / 1e6,
                occ * 100.0,
                format!("{}/{}/{}", c.spins, c.yields, c.parks),
                c.signals,
                events
            );
        }
        if !self.lanes.is_empty() {
            let _ = writeln!(
                s,
                "  {:<5} {:<8} {:>8} {:>7} {:>7} {:>10} {:>6} {:>8}",
                "lane", "dep", "segment", "waits", "fast", "wait ms", "parks", "signals"
            );
            for l in &self.lanes {
                let c = &l.counters;
                let _ = writeln!(
                    s,
                    "  {:<5} {:<8} {:>8} {:>7} {:>7} {:>10.3} {:>6} {:>8}",
                    l.lane,
                    l.dep.to_string(),
                    l.segment,
                    c.waits,
                    c.fast_hits,
                    c.wait_ns as f64 / 1e6,
                    c.parks,
                    c.signals
                );
            }
        }
        s
    }
}
