//! Cache-line-padded signal lanes: the inter-core communication fabric of the parallel
//! runtime.
//!
//! The first-generation executor kept one `AtomicU64` per dependence in a dense `Vec`:
//! adjacent dependences shared a cache line, so a core signalling dependence `d` invalidated
//! the line of every core spinning on dependence `d±1..d±7` — guaranteed false sharing on
//! exactly the hot path the HELIX paper identifies as the bottleneck of cyclic
//! multithreading. [`SignalLanes`] fixes both problems the paper's ring-cache attacks:
//!
//! * **padding** — every counter lives alone on its cache line (`#[repr(align(128))]`, two
//!   lines to defeat adjacent-line prefetchers), so signalling one dependence never steals
//!   the line another dependence is spinning on;
//! * **windowing** — each dependence owns a *ring* of `window` lanes, one per in-flight
//!   iteration slot (iteration `i` signals lane `i % window`); the producer of iteration
//!   `i+1` therefore writes a different line than the one iteration `i` wrote, mirroring the
//!   paper's per-core communication buffers.
//!
//! A lane cell stores `iteration + 1` of the youngest iteration (among those mapping to the
//! slot) that has signalled, updated with a release `fetch_max`. The waiter of iteration `i`
//! reads slot `(i-1) % window` with acquire ordering and proceeds once the cell reaches `i`.
//!
//! **Ring-reuse safety.** Slot `(i-1) % window` is shared with iterations
//! `i-1 ± k·window`. The executor bounds the in-flight window: iteration `i` is not
//! *claimed* until iteration `i - window` has fully completed (see the completion ring in
//! `executor.rs`), and an iteration completes only after it has passed all its signal
//! points. Together with the prologue ordering chain this means that by the time iteration
//! `i-1+window` (the only writer that could prematurely satisfy the waiter) starts,
//! iteration `i-1` has already signalled — so a satisfied wait always means the true
//! predecessor signalled.

use std::sync::atomic::{AtomicU64, Ordering};

/// One signal counter alone on (two) cache line(s).
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct PaddedCounter(pub AtomicU64);

impl PaddedCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The padded, windowed signal-lane array: `deps × window` counters, each on its own cache
/// line.
#[derive(Debug)]
pub struct SignalLanes {
    lanes: Box<[PaddedCounter]>,
    /// Number of synchronized dependences (lane rows).
    deps: usize,
    /// Ring width per dependence; a power of two.
    window: usize,
}

impl SignalLanes {
    /// Creates lanes for `deps` dependences with an in-flight window of `window` iterations
    /// (rounded up to a power of two, minimum 1). All counters start at zero.
    pub fn new(deps: usize, window: usize) -> Self {
        let deps = deps.max(1);
        let window = window.max(1).next_power_of_two();
        Self {
            lanes: (0..deps * window).map(|_| PaddedCounter::new()).collect(),
            deps,
            window,
        }
    }

    /// Number of dependence rows.
    pub fn num_deps(&self) -> usize {
        self.deps
    }

    /// Ring width per dependence.
    pub fn window(&self) -> usize {
        self.window
    }

    #[inline]
    fn cell(&self, dep: usize, iteration: u64) -> &AtomicU64 {
        debug_assert!(dep < self.deps);
        let slot = (iteration as usize) & (self.window - 1);
        &self.lanes[dep * self.window + slot].0
    }

    /// Publishes iteration `iteration`'s signal on `dep` (release ordering): records that
    /// every earlier iteration's value for this dependence is now visible.
    #[inline]
    pub fn signal(&self, dep: usize, iteration: u64) {
        self.cell(dep, iteration)
            .fetch_max(iteration + 1, Ordering::Release);
    }

    /// Polls whether iteration `iteration` may pass its `Wait` on `dep` (acquire ordering):
    /// true once the predecessor iteration has signalled. Iteration 0 never waits.
    #[inline]
    pub fn poll(&self, dep: usize, iteration: u64) -> bool {
        if iteration == 0 {
            return true;
        }
        self.cell(dep, iteration - 1).load(Ordering::Acquire) >= iteration
    }

    /// The raw counter value the waiter of `iteration` observes (for deadlock diagnostics).
    pub fn observed(&self, dep: usize, iteration: u64) -> u64 {
        if iteration == 0 {
            return 0;
        }
        self.cell(dep, iteration - 1).load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_padded_to_their_own_cache_lines() {
        assert!(std::mem::size_of::<PaddedCounter>() >= 128);
        assert_eq!(std::mem::align_of::<PaddedCounter>(), 128);
        let lanes = SignalLanes::new(3, 5);
        assert_eq!(lanes.num_deps(), 3);
        assert_eq!(lanes.window(), 8, "window rounds up to a power of two");
        // Distinct (dep, slot) cells live at distinct cache lines.
        let a = lanes.cell(0, 0) as *const _ as usize;
        let b = lanes.cell(0, 1) as *const _ as usize;
        let c = lanes.cell(1, 0) as *const _ as usize;
        assert!(b.abs_diff(a) >= 128);
        assert!(c.abs_diff(a) >= 128);
    }

    #[test]
    fn wait_follows_signal_in_iteration_order() {
        let lanes = SignalLanes::new(1, 4);
        assert!(lanes.poll(0, 0), "iteration 0 never waits");
        assert!(!lanes.poll(0, 1));
        lanes.signal(0, 0);
        assert!(lanes.poll(0, 1));
        assert!(!lanes.poll(0, 2));
        lanes.signal(0, 1);
        assert!(lanes.poll(0, 2));
        assert_eq!(lanes.observed(0, 3), 0, "slot 2 untouched");
    }

    #[test]
    fn ring_slots_recycle_monotonically() {
        let lanes = SignalLanes::new(2, 2);
        for i in 0..10u64 {
            lanes.signal(1, i);
            assert!(lanes.poll(1, i + 1), "iteration {i} enables its successor");
        }
        // A stale signal (lower iteration) cannot regress a recycled slot.
        lanes.signal(1, 2);
        assert!(lanes.poll(1, 9));
    }
}
