//! The parallel loop executor.
//!
//! Execution follows the paper's three phases. Phase A runs the transformed function
//! sequentially from its entry to the parallelized loop's header; Phase B dispatches loop
//! iterations across workers; Phase C resumes sequentially from the earliest iteration's
//! exit. All three phases execute *lean* lowered bytecode (see [`crate::parallel_image`]):
//! no fuel, no statistics, no per-op cost charging — this is the production dispatch loop,
//! not the instrumented engine.
//!
//! Phase B's machinery, end to end:
//!
//! * the [`ParallelImage`] is lowered once per program (not per run) and shared immutably by
//!   every worker; iteration code carries pre-resolved signal-lane indices and sentinel
//!   back-edge/exit targets, so workers dispatch straight-line code;
//! * workers come from the process-wide persistent [`WorkerPool`] — no OS threads are
//!   spawned per run — and are only *activated* once iteration 0's prologue decides the
//!   loop actually continues: a zero-trip (Phase A/C-only) loop never wakes a single helper
//!   and runs purely sequentially on the calling thread;
//! * iterations are *claimed when ready* from one shared counter: a worker takes iteration
//!   `i` only once iteration `i-1`'s prologue has released the control lane and iteration
//!   `i - window` has fully completed (the completion ring that makes the windowed
//!   [`SignalLanes`] reuse safe). The claiming worker is usually the one that just released
//!   control, so on a loaded machine consecutive iterations run back-to-back on one core
//!   with no handoff, while idle workers sit in the adaptive spin→yield→park backoff;
//! * cross-iteration dependences synchronize through cache-line-padded, windowed
//!   [`SignalLanes`] instead of a dense false-sharing counter array;
//! * allocations proved iteration-private are served from each worker's
//!   [`PrivateArena`]; the words skipped in shared memory are re-reserved after the loop so
//!   every shared address stays bitwise-identical to a sequential run.

use crate::calibrate::CalibrationProfile;
use crate::jit;
use crate::lanes::{PaddedCounter, SignalLanes};
use crate::parallel_image::{
    run_flat, run_iteration, FlatEnd, FlatError, IterEnd, IterError, IterSync, LocalTier,
    LoopImage, ParallelImage, SharedTier, Tier,
};
use crate::pool::{
    detect_hardware_threads, panic_message, AdaptiveWait, Sleepers, WaitProfile, WorkerPool,
};
use crate::sharded::{PrivateArena, ShardedMemory};
use crate::telemetry::{TelemetryMode, TelemetryReport, TelemetryRun, WorkerCtx, WorkerTail};
use crate::threaded::{
    run_flat_threaded, run_iteration_threaded, DispatchTier, FlatTables, IterTable,
};
use helix_core::TransformedProgram;
use helix_ir::interp::ExecError;
use helix_ir::{DepId, ExecImage, Memory, Value};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default safety cap on the number of loop iterations dispatched.
pub const DEFAULT_MAX_ITERATIONS: u64 = 10_000_000;

/// Default deadlock budget of a blocked `Wait`, in yield-equivalent backoff units.
pub const DEFAULT_SPIN_BUDGET: u64 = 200_000_000;

/// Errors raised by the parallel executor.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// The underlying engine faulted.
    Exec(ExecError),
    /// The executor gave up waiting for a signal (likely a missing `Signal` on some path).
    /// The report pinpoints the blocked `Wait` in the lowered iteration bytecode: its owning
    /// sequential segment and the segment's flat pc range, so shrunk fuzz repros localize
    /// without re-deriving any analysis.
    Deadlock {
        /// The dependence being waited for.
        dep: DepId,
        /// The iteration that was waiting.
        iteration: u64,
        /// Index of the signal lane the dependence maps to.
        lane: usize,
        /// The last lane counter value observed before giving up (the waiter needed it to
        /// reach `iteration`).
        last_observed: u64,
        /// Index (in the plan's segment list) of the sequential segment that owns the
        /// blocked `Wait`.
        segment: usize,
        /// pc of the blocked `Wait` in the iteration bytecode ([`LoopImage::code`]).
        wait_pc: u32,
        /// The owning segment's `[first, last]` pc range in the iteration bytecode.
        segment_pc_range: (u32, u32),
        /// The telemetry tail: each worker's last events (which lane it was waiting on,
        /// the last counter it observed, the last signals it published). Empty when the
        /// run was not traced — enable telemetry on the repro to fill it in.
        tail: Vec<WorkerTail>,
    },
    /// The loop never terminated within the iteration budget.
    IterationBudgetExceeded,
    /// A worker thread panicked during the run. The panic payload is preserved (not
    /// re-raised): the run is cancelled, the pool poisons itself and respawns its helper
    /// cohort on the next submit, and the caller — a CLI invocation or a served daemon
    /// job — decides what the panic means. Long-lived servers keep serving.
    WorkerPanicked {
        /// Which worker the panic escaped from (0 is the submitting thread).
        worker: usize,
        /// The panic payload rendered as text.
        message: String,
        /// The telemetry tail: each worker's last events before the panic. Empty when
        /// the run was not traced.
        tail: Vec<WorkerTail>,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Exec(e) => write!(f, "execution error: {e}"),
            RuntimeError::Deadlock {
                dep,
                iteration,
                lane,
                last_observed,
                segment,
                wait_pc,
                segment_pc_range,
                tail,
            } => {
                write!(
                    f,
                    "deadlock waiting for {dep} in iteration {iteration}: signal lane {lane} \
                     last observed at {last_observed}, needed {iteration} (segment {segment}, \
                     wait at pc {wait_pc}, segment pc range {}..={})",
                    segment_pc_range.0, segment_pc_range.1
                )?;
                if !tail.is_empty() {
                    write!(f, "; last events per worker:")?;
                    for t in tail {
                        write!(f, " {t}")?;
                    }
                }
                Ok(())
            }
            RuntimeError::IterationBudgetExceeded => write!(f, "iteration budget exceeded"),
            RuntimeError::WorkerPanicked {
                worker,
                message,
                tail,
            } => {
                write!(
                    f,
                    "worker {worker} panicked during a parallel run: {message}"
                )?;
                if !tail.is_empty() {
                    write!(f, "; last events per worker:")?;
                    for t in tail {
                        write!(f, " {t}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ExecError> for RuntimeError {
    fn from(e: ExecError) -> Self {
        RuntimeError::Exec(e)
    }
}

impl From<FlatError> for RuntimeError {
    fn from(e: FlatError) -> Self {
        match e {
            FlatError::Exec(e) => RuntimeError::Exec(e),
            FlatError::BudgetExceeded => RuntimeError::IterationBudgetExceeded,
        }
    }
}

/// Everything one parallel run produced (see [`ParallelExecutor::run_parallel_out`]).
#[derive(Debug)]
pub struct RunOutput {
    /// The function's return value, or how the run failed.
    pub result: Result<Option<Value>, RuntimeError>,
    /// The run's telemetry report (`None` when telemetry is disabled or compiled out).
    pub report: Option<TelemetryReport>,
    /// The run's final memory, captured only when
    /// [`ParallelExecutor::capture_memory`] is set and the run succeeded. The service's
    /// differential check compares this bitwise between cold and warm runs.
    pub memory: Option<Memory>,
}

/// How the parallelized loop ended.
enum LoopExit {
    /// Control left the loop through an exit edge: resume Phase C at `block` with `regs`.
    Edge { block: u32, regs: Vec<Value> },
    /// A `Ret` inside the loop body ended the whole function with this value.
    Returned(Option<Value>),
}

/// The shared state of one Phase B: lanes, ordering counters, exit bookkeeping.
struct RunShared<'a> {
    image: &'a ExecImage,
    loop_image: &'a LoopImage,
    /// Padded signal lanes, one ring row per synchronized dependence.
    lanes: SignalLanes,
    /// The park pad of lane (`Wait`) waiters: signal publication wakes it.
    sleepers: Sleepers,
    /// The park pad of idle claimers and stall-watching helpers: woken on exit/error, on
    /// per-iteration progress only under a dedicated-hardware profile.
    claim_sleepers: Sleepers,
    /// Highest iteration whose prologue predecessor chain is complete (iteration `i` may
    /// start once `control >= i`).
    control: PaddedCounter,
    /// Next unclaimed iteration.
    next_claim: PaddedCounter,
    /// Lowest iteration that took a loop exit (`u64::MAX` while the loop runs).
    exited_at: PaddedCounter,
    /// Completion ring: slot `i % window` holds `i + 1` once iteration `i` fully completed.
    /// Gates claiming of iteration `i + window`, bounding lane-ring reuse.
    done_ring: Box<[PaddedCounter]>,
    /// In-flight window size (power of two, matches the lanes' ring width).
    window: u64,
    /// The exit taken by the *earliest* exiting iteration (sequential semantics pick the
    /// first iteration that leaves the loop, not the first worker to reach an exit).
    exit_state: Mutex<Option<(u64, LoopExit)>>,
    /// The earliest-iteration worker error, if any.
    error: Mutex<Option<(u64, RuntimeError)>>,
    /// Register file at loop entry; every iteration starts from this snapshot.
    snapshot: Vec<Value>,
    /// Words served from private arenas, re-reserved in shared memory after the loop.
    private_words: AtomicU64,
    max_iterations: u64,
    spin_budget: u64,
    /// Solo-mode heartbeat: the primary worker stores its iteration counter here once per
    /// iteration while the claim protocol is unpublished, so stall-watching helpers can tell
    /// progress from a stall without the primary paying any claim atomics.
    progress: PaddedCounter,
    /// Helpers wanting to join while the protocol is unpublished bump this; the primary
    /// checks it once per iteration boundary.
    join_requests: PaddedCounter,
    /// 0 while the primary runs the solo fast path; `u64::MAX` once the claim protocol
    /// (control / next_claim / completion ring) is published and every worker may race.
    published: PaddedCounter,
    /// Fault injection: the worker that claims this iteration panics before running it
    /// (see [`ParallelExecutor::with_injected_panic`]).
    panic_at: Option<u64>,
    /// Backoff shape of this run's wait sites (topology-dependent).
    profile: WaitProfile,
    /// Send wake-ups on per-iteration progress (claim availability)? Worth it only when
    /// waiters spin on dedicated hardware threads; on an oversubscribed machine parked
    /// helpers are left to their timed parks so they stop stealing the active worker's CPU.
    wake_on_progress: bool,
}

impl<'a> RunShared<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        image: &'a ExecImage,
        loop_image: &'a LoopImage,
        snapshot: Vec<Value>,
        threads: usize,
        max_iterations: u64,
        spin_budget: u64,
        panic_at: Option<u64>,
        profile: WaitProfile,
    ) -> Self {
        let window = (threads * 2).next_power_of_two().max(8);
        Self {
            image,
            loop_image,
            lanes: SignalLanes::new(loop_image.num_phys_lanes(), window),
            sleepers: Sleepers::new(),
            claim_sleepers: Sleepers::new(),
            control: PaddedCounter::new(),
            next_claim: PaddedCounter::new(),
            exited_at: PaddedCounter(AtomicU64::new(u64::MAX)),
            done_ring: (0..window).map(|_| PaddedCounter::new()).collect(),
            window: window as u64,
            exit_state: Mutex::new(None),
            error: Mutex::new(None),
            snapshot,
            private_words: AtomicU64::new(0),
            max_iterations,
            spin_budget,
            progress: PaddedCounter::new(),
            join_requests: PaddedCounter::new(),
            // With dedicated hardware the claim protocol is public from the start; on an
            // oversubscribed machine the primary begins in the solo fast path.
            published: PaddedCounter(AtomicU64::new(if profile.wakes_on_progress() {
                u64::MAX
            } else {
                0
            })),
            panic_at,
            profile,
            wake_on_progress: profile.wakes_on_progress(),
        }
    }

    /// Publishes the claim protocol after a solo prefix of `done` iterations: completion
    /// ring for the last window, control and claim frontiers, then the `published` flag
    /// (release order — joiners acquire the flag before touching the rest).
    fn publish_protocol(&self, done: u64) {
        let mask = self.window - 1;
        for k in done.saturating_sub(self.window)..done {
            self.done_ring[(k & mask) as usize]
                .0
                .store(k + 1, Ordering::Release);
        }
        self.control.0.store(done, Ordering::Release);
        self.next_claim.0.store(done, Ordering::Release);
        self.published.0.store(u64::MAX, Ordering::Release);
        self.claim_sleepers.wake_all();
    }

    /// Records `exit` for `iteration`, keeping the lowest-iteration exit seen so far.
    fn record_exit(&self, iteration: u64, exit: LoopExit) {
        self.exited_at.0.fetch_min(iteration, Ordering::AcqRel);
        let mut slot = self.exit_state.lock();
        match &*slot {
            Some((recorded, _)) if *recorded <= iteration => {}
            _ => *slot = Some((iteration, exit)),
        }
        drop(slot);
        self.sleepers.wake_all();
        self.claim_sleepers.wake_all();
    }

    /// Records a worker error, keeping the earliest-iteration one.
    fn record_error(&self, iteration: u64, error: RuntimeError) {
        self.exited_at.0.fetch_min(iteration, Ordering::AcqRel);
        let mut slot = self.error.lock();
        match &*slot {
            Some((recorded, _)) if *recorded <= iteration => {}
            _ => *slot = Some((iteration, error)),
        }
        drop(slot);
        self.sleepers.wake_all();
        self.claim_sleepers.wake_all();
    }

    /// Converts an iteration-runner error into the precise runtime error.
    fn convert_error(&self, iteration: u64, e: IterError) -> RuntimeError {
        convert_iter_error(self.loop_image, iteration, e)
    }
}

/// Converts an iteration-runner error into the precise runtime error, resolving the
/// blocked `Wait`'s *logical* lane through the image's side tables (the runner reports the
/// physical — possibly coalesced — lane row it was polling; `code[pc]` still carries the
/// logical lane of the owning segment).
fn convert_iter_error(loop_image: &LoopImage, iteration: u64, e: IterError) -> RuntimeError {
    match e {
        IterError::Exec(e) => RuntimeError::Exec(e),
        IterError::Deadlock { lane, pc, observed } => {
            // No fallback through the logical table: indexing it with a physical
            // (coalesced) row id would attribute the deadlock to an unrelated segment.
            match loop_image.lane_at(pc) {
                Some(info) => RuntimeError::Deadlock {
                    dep: info.dep,
                    iteration,
                    lane: lane as usize,
                    last_observed: observed,
                    segment: info.segment,
                    wait_pc: pc,
                    segment_pc_range: info.pc_range(),
                    tail: Vec::new(),
                },
                None => RuntimeError::Deadlock {
                    dep: DepId::new(lane),
                    iteration,
                    lane: lane as usize,
                    last_observed: observed,
                    segment: 0,
                    wait_pc: pc,
                    segment_pc_range: (pc, pc),
                    tail: Vec::new(),
                },
            }
        }
    }
}

/// Resets a worker's register file for `iteration` — restore-set registers back to the
/// loop-entry snapshot, privatized induction variables recomputed — and starts a fresh
/// arena. Shared by every Phase B flavour (claimed, solo, single-thread).
fn prepare_iteration<T: Tier>(
    loop_image: &LoopImage,
    snapshot: &[Value],
    regs: &mut [Value],
    iteration: u64,
    tier: &mut T,
) {
    for &r in &loop_image.restore_regs {
        regs[r as usize] = snapshot[r as usize];
    }
    for (reg, step) in &loop_image.induction_vars {
        let r = *reg as usize;
        if r < regs.len() {
            let base = snapshot[r].as_int();
            regs[r] = Value::Int(base + *step * iteration as i64);
        }
    }
    tier.reset_arena();
}

/// One worker's Phase B: claim ready iterations and run them until the loop ends.
/// `on_first_control` fires the first time any iteration of *this worker* releases control
/// (the executor's pool-activation hook; helpers pass a no-op).
///
/// On an oversubscribed machine a `helper` starts in *stall-watch* mode: it parks and only
/// joins the claim race once the claim frontier stops advancing between two parks. A lone
/// hardware thread is best used by letting the active worker run consecutive iterations
/// back-to-back; a helper that eagerly stole the next iteration would turn every iteration
/// boundary into a context switch.
/// Per-iteration telemetry counts (claims, iterations, private-arena words) accumulated
/// in the worker's own registers and flushed to its telemetry slot exactly once, on
/// whichever path the worker leaves its loop — `Drop` covers them all, including the
/// error and deadlock returns. A memory RMW per iteration on the hot claim loop is
/// measurable on short iteration bodies; a bulk add on exit is free.
struct CountFlush<'a> {
    telem: Option<WorkerCtx<'a>>,
    claims: u64,
    iterations: u64,
    arena_words: u64,
}

impl<'a> CountFlush<'a> {
    fn new(telem: Option<WorkerCtx<'a>>) -> CountFlush<'a> {
        CountFlush {
            telem,
            claims: 0,
            iterations: 0,
            arena_words: 0,
        }
    }
}

impl Drop for CountFlush<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.telem {
            t.add_iter_counts(self.claims, self.iterations, self.arena_words);
        }
    }
}

fn phase_b_worker<T: Tier>(
    shared: &RunShared<'_>,
    tier: &mut T,
    helper: bool,
    on_first_control: &mut dyn FnMut(),
    telem: Option<WorkerCtx<'_>>,
    table: Option<&IterTable<T>>,
) {
    let sync = IterSync {
        lanes: &shared.lanes,
        sleepers: &shared.sleepers,
        exited_at: &shared.exited_at.0,
        spin_budget: shared.spin_budget,
        profile: shared.profile,
        #[cfg(feature = "telemetry")]
        telem,
    };
    #[cfg(not(feature = "telemetry"))]
    let _ = telem;
    let mask = shared.window - 1;
    let mut counts = CountFlush::new(telem);
    let mut regs: Vec<Value> = shared.snapshot.clone();
    let mut idle = AdaptiveWait::with_profile(&shared.claim_sleepers, shared.profile);
    let mut watching = helper && !shared.profile.wakes_on_progress();
    let mut watched_frontier = u64::MAX;
    loop {
        let i = shared.next_claim.0.load(Ordering::Acquire);
        let exited = shared.exited_at.0.load(Ordering::Acquire);
        if exited <= i || (exited != u64::MAX && shared.published.0.load(Ordering::Acquire) == 0) {
            // Past the exit — or the loop ended while the primary still ran solo, in which
            // case there is nothing a helper could ever claim.
            return;
        }
        if watching {
            // The progress indicator sums the solo heartbeat and the public claim
            // frontier: monotone, and advancing whenever any worker advances.
            let indicator = i.wrapping_add(shared.progress.0.load(Ordering::Relaxed));
            if indicator == watched_frontier {
                // No progress across a whole park: the active workers are stuck or
                // saturated — join in.
                watching = false;
                if shared.published.0.load(Ordering::Acquire) == 0 {
                    // The primary is still in the solo fast path: request the protocol
                    // and wait for it to be published (or for the loop to end).
                    shared.join_requests.0.fetch_add(1, Ordering::SeqCst);
                    while shared.published.0.load(Ordering::Acquire) == 0 {
                        if shared.exited_at.0.load(Ordering::Acquire) != u64::MAX {
                            return;
                        }
                        shared
                            .claim_sleepers
                            .sleep(std::time::Duration::from_millis(1));
                    }
                }
                continue;
            }
            watched_frontier = indicator;
            shared
                .claim_sleepers
                .sleep(std::time::Duration::from_millis(2));
            continue;
        }
        if i > shared.max_iterations {
            shared.record_error(i, RuntimeError::IterationBudgetExceeded);
            return;
        }
        let ready = shared.control.0.load(Ordering::Acquire) >= i
            && shared.done_ring[(i & mask) as usize]
                .0
                .load(Ordering::Acquire)
                >= (i + 1).saturating_sub(shared.window);
        if !ready {
            idle.wait();
            continue;
        }
        if shared
            .next_claim
            .0
            .compare_exchange(i, i + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        idle.reset();
        counts.claims += 1;
        if let Some(t) = telem {
            t.on_claim(i);
        }
        if shared.panic_at == Some(i) {
            panic!("injected fault: worker panic at iteration {i}");
        }

        prepare_iteration(shared.loop_image, &shared.snapshot, &mut regs, i, tier);

        let mut released = false;
        let mut on_control = |iteration: u64| {
            // A plain release store suffices: each iteration releases control exactly once,
            // and iteration i+1's releaser claimed only after observing iteration i's
            // release, so writes to the counter are totally ordered and monotone.
            shared.control.0.store(iteration + 1, Ordering::Release);
            if shared.wake_on_progress {
                shared.claim_sleepers.wake_all();
            }
            on_first_control();
        };
        let mut control_hook = || {
            if !released {
                released = true;
                on_control(i);
            }
        };
        let iter_start = telem.map(|t| t.on_iter_start(i));
        let outcome = match table {
            Some(t) => run_iteration_threaded(
                shared.image,
                shared.loop_image,
                t,
                i,
                &mut regs,
                tier,
                &sync,
                &mut control_hook,
            ),
            None => run_iteration(
                shared.image,
                shared.loop_image,
                i,
                &mut regs,
                tier,
                &sync,
                &mut control_hook,
            ),
        };
        counts.iterations += 1;
        if let (Some(t), Some(t0)) = (telem, iter_start) {
            t.on_iter_finish(i, t0);
        }
        match outcome {
            Ok(IterEnd::Completed) => {
                if !released {
                    // The iteration never entered the body (prologue-only path): the back
                    // edge itself proves the next prologue may start.
                    on_control(i);
                }
                // Counting this iteration's private words is exact: exit edges originate
                // only in prologues (Step 1), and control for iteration i+1 is released
                // only after iteration i's prologue decided to continue — so a completed
                // iteration is never speculative work past the loop's end (and `Returned`
                // exits skip the reserve entirely).
                let words = tier.drain_private_words();
                counts.arena_words += words;
                shared.private_words.fetch_add(words, Ordering::Relaxed);
                shared.done_ring[(i & mask) as usize]
                    .0
                    .store(i + 1, Ordering::Release);
                if shared.wake_on_progress {
                    shared.claim_sleepers.wake_all();
                }
            }
            Ok(IterEnd::Exit { block }) => {
                let words = tier.drain_private_words();
                counts.arena_words += words;
                shared.private_words.fetch_add(words, Ordering::Relaxed);
                shared.record_exit(
                    i,
                    LoopExit::Edge {
                        block,
                        regs: regs.clone(),
                    },
                );
                return;
            }
            Ok(IterEnd::Returned(v)) => {
                let words = tier.drain_private_words();
                counts.arena_words += words;
                shared.private_words.fetch_add(words, Ordering::Relaxed);
                shared.record_exit(i, LoopExit::Returned(v));
                return;
            }
            Ok(IterEnd::Cancelled) => {
                // An earlier iteration exited while this one was blocked; its work is moot.
                return;
            }
            Err(e) => {
                let err = shared.convert_error(i, e);
                shared.record_error(i, err);
                return;
            }
        }
    }
}

/// The primary worker's solo fast path: while no helper has joined, iterations run
/// in order with *no* claim/control/completion atomics — just the lane counters (kept so a
/// missing `Signal` still deadlocks detectably and so late joiners inherit a consistent
/// ring) and one relaxed heartbeat store per iteration. Returns `Some(done)` with the
/// number of completed iterations when a helper requested the protocol (the caller
/// publishes happened already and continues in the shared claim loop), `None` when the
/// loop ended solo.
fn phase_b_solo<T: Tier>(
    shared: &RunShared<'_>,
    tier: &mut T,
    on_first_control: &mut dyn FnMut(),
    telem: Option<WorkerCtx<'_>>,
    table: Option<&IterTable<T>>,
) -> Option<u64> {
    let sync = IterSync {
        lanes: &shared.lanes,
        sleepers: &shared.sleepers,
        exited_at: &shared.exited_at.0,
        spin_budget: shared.spin_budget,
        profile: shared.profile,
        #[cfg(feature = "telemetry")]
        telem,
    };
    #[cfg(not(feature = "telemetry"))]
    let _ = telem;
    let mut counts = CountFlush::new(telem);
    let mut regs: Vec<Value> = shared.snapshot.clone();
    let mut iteration = 0u64;
    loop {
        if iteration > shared.max_iterations {
            shared.record_error(iteration, RuntimeError::IterationBudgetExceeded);
            return None;
        }
        if shared.join_requests.0.load(Ordering::Relaxed) != 0 {
            let words = tier.drain_private_words();
            counts.arena_words += words;
            shared.private_words.fetch_add(words, Ordering::Relaxed);
            // Other workers are about to touch memory: re-establish locking before the
            // protocol (and with it this thread's writes) is published to them.
            tier.set_exclusive(false);
            shared.publish_protocol(iteration);
            return Some(iteration);
        }
        if shared.panic_at == Some(iteration) {
            panic!("injected fault: worker panic at iteration {iteration}");
        }
        prepare_iteration(
            shared.loop_image,
            &shared.snapshot,
            &mut regs,
            iteration,
            tier,
        );
        let mut control_hook = || on_first_control();
        counts.claims += 1;
        if let Some(t) = telem {
            t.on_claim(iteration);
        }
        let iter_start = telem.map(|t| t.on_iter_start(iteration));
        let outcome = match table {
            Some(t) => run_iteration_threaded(
                shared.image,
                shared.loop_image,
                t,
                iteration,
                &mut regs,
                tier,
                &sync,
                &mut control_hook,
            ),
            None => run_iteration(
                shared.image,
                shared.loop_image,
                iteration,
                &mut regs,
                tier,
                &sync,
                &mut control_hook,
            ),
        };
        counts.iterations += 1;
        if let (Some(t), Some(t0)) = (telem, iter_start) {
            t.on_iter_finish(iteration, t0);
        }
        match outcome {
            Ok(IterEnd::Completed) => {
                shared.progress.0.store(iteration + 1, Ordering::Relaxed);
                iteration += 1;
            }
            Ok(IterEnd::Exit { block }) => {
                let words = tier.drain_private_words();
                counts.arena_words += words;
                shared.private_words.fetch_add(words, Ordering::Relaxed);
                shared.record_exit(
                    iteration,
                    LoopExit::Edge {
                        block,
                        regs: regs.clone(),
                    },
                );
                return None;
            }
            Ok(IterEnd::Returned(v)) => {
                let words = tier.drain_private_words();
                counts.arena_words += words;
                shared.private_words.fetch_add(words, Ordering::Relaxed);
                shared.record_exit(iteration, LoopExit::Returned(v));
                return None;
            }
            Ok(IterEnd::Cancelled) => {
                unreachable!("no other worker runs iterations before the protocol publishes")
            }
            Err(e) => {
                let err = shared.convert_error(iteration, e);
                shared.record_error(iteration, err);
                return None;
            }
        }
    }
}

/// Executes a HELIX-transformed program with real worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ParallelExecutor {
    /// Number of worker threads ("cores"). The calling thread acts as one of them; helpers
    /// come from the persistent [`WorkerPool`].
    pub threads: usize,
    /// Safety cap on the number of loop iterations dispatched.
    pub max_iterations: u64,
    /// Deadlock budget of a blocked `Wait`, in yield-equivalent backoff units.
    pub spin_budget: u64,
    /// Overrides the topology-derived wait profile (tests and the fuzzing oracle force
    /// [`WaitProfile::DEDICATED`] so the full multi-worker claim protocol is exercised
    /// even on machines with fewer hardware threads than workers).
    pub wait_profile: Option<WaitProfile>,
    /// What the run records (see [`TelemetryMode`]); disabled by default. Reports come
    /// back through the `*_traced` entry points.
    pub telemetry: TelemetryMode,
    /// Which dispatch engine runs the bytecode (see [`DispatchTier`]). The default,
    /// [`DispatchTier::Auto`], asks the process-wide [`CalibrationProfile`] which tier
    /// measured faster on this machine.
    pub dispatch_tier: DispatchTier,
    /// Hardware thread count, snapshotted once at construction. Every decision derived
    /// from the machine's topology — worker clamping, the clamp diagnostic, the wait
    /// profile — reads this snapshot, so a cgroup resize mid-run can never make them
    /// disagree with each other.
    pub hardware: usize,
    /// Fault injection for robustness tests: the worker that claims this iteration
    /// panics before running it. The panic surfaces as
    /// [`RuntimeError::WorkerPanicked`], never as a process abort.
    pub panic_at: Option<u64>,
    /// Capture the run's final memory into [`RunOutput::memory`] (the `*_out` entry
    /// points); off by default — snapshotting striped memory costs a full copy.
    pub capture_memory: bool,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            spin_budget: DEFAULT_SPIN_BUDGET,
            wait_profile: None,
            telemetry: TelemetryMode::Disabled,
            dispatch_tier: DispatchTier::Auto,
            hardware: detect_hardware_threads(),
            panic_at: None,
            capture_memory: false,
        }
    }
}

impl ParallelExecutor {
    /// Creates an executor with `threads` workers and default budgets.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Creates an executor with `threads` workers and the budgets of a
    /// [`helix_core::HelixConfig`].
    pub fn from_config(threads: usize, config: &helix_core::HelixConfig) -> Self {
        Self {
            threads: threads.max(1),
            max_iterations: config.max_loop_iterations.max(1),
            spin_budget: config.spin_budget.max(1),
            telemetry: TelemetryMode::from_sample_period(config.telemetry_sample_period),
            ..Self::default()
        }
    }

    /// Overrides the deadlock spin budget.
    pub fn with_spin_budget(mut self, spins: u64) -> Self {
        self.spin_budget = spins.max(1);
        self
    }

    /// Overrides the loop iteration budget.
    pub fn with_max_iterations(mut self, iterations: u64) -> Self {
        self.max_iterations = iterations.max(1);
        self
    }

    /// Overrides the wait profile (see [`ParallelExecutor::wait_profile`]).
    pub fn with_wait_profile(mut self, profile: WaitProfile) -> Self {
        self.wait_profile = Some(profile);
        self
    }

    /// Sets the telemetry mode of subsequent runs (see [`TelemetryMode`]).
    pub fn with_telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry = mode;
        self
    }

    /// Pins the dispatch engine (see [`DispatchTier`]). [`DispatchTier::Auto`] — the
    /// default — defers to the calibrator's per-tier dispatch measurements.
    pub fn with_dispatch_tier(mut self, tier: DispatchTier) -> Self {
        self.dispatch_tier = tier;
        self
    }

    /// Injects a fault: the worker that claims `iteration` panics before running it (see
    /// [`ParallelExecutor::panic_at`]). For robustness tests and the service's
    /// fault-injection smoke requests.
    pub fn with_injected_panic(mut self, iteration: u64) -> Self {
        self.panic_at = Some(iteration);
        self
    }

    /// Captures the run's final memory into [`RunOutput::memory`] (see
    /// [`ParallelExecutor::capture_memory`]).
    pub fn with_capture_memory(mut self, capture: bool) -> Self {
        self.capture_memory = capture;
        self
    }

    /// The tier this executor will actually dispatch with: an explicit pin wins, and
    /// `Auto` resolves through [`CalibrationProfile::selected_tier`] — the measured-cost
    /// feedback loop (PR 5) applied to the engine choice itself.
    pub fn resolved_tier(&self) -> DispatchTier {
        match self.dispatch_tier {
            DispatchTier::Auto => CalibrationProfile::cached().selected_tier(),
            pinned => pinned,
        }
    }

    /// Runs the parallel clone of `program` from its entry with `args`, executing the
    /// parallelized loop's iterations across worker threads, and returns the function's
    /// return value. Lowers the program on every call; callers executing the same program
    /// repeatedly should lower once with [`ParallelImage::lower`] and use
    /// [`ParallelExecutor::run_parallel`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the engine faults, a signal never arrives, or the loop
    /// exceeds the iteration budget.
    pub fn run(
        &self,
        program: &TransformedProgram,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        let pimg = ParallelImage::lower(program);
        self.run_parallel(&pimg, args)
    }

    /// Same as [`ParallelExecutor::run`] with a pre-lowered whole-module image of
    /// `program.module` (the loop portion is lowered on each call; prefer
    /// [`ParallelExecutor::run_parallel`] for fully amortized lowering).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the engine faults, a signal never arrives, or the loop
    /// exceeds the iteration budget.
    pub fn run_image(
        &self,
        image: &ExecImage,
        program: &TransformedProgram,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        let loop_image = LoopImage::build(image, program);
        self.run_lowered(image, &loop_image, args)
    }

    /// Runs a pre-lowered [`ParallelImage`]: the zero-per-run-lowering fast path.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the engine faults, a signal never arrives, or the loop
    /// exceeds the iteration budget.
    pub fn run_parallel(
        &self,
        pimg: &ParallelImage,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        self.run_lowered(&pimg.exec, &pimg.loop_image, args)
    }

    /// The worker count the machine can actually run concurrently. When the caller did not
    /// override the wait profile (i.e. scheduling decisions are topology-derived), workers
    /// beyond the hardware thread count are pure overhead: they cannot execute
    /// concurrently, so every extra worker only adds claim traffic, stall-watch wakeups
    /// and striped-memory locking to the thread that has the CPU. This is the measured-cost
    /// feedback loop applied to the runtime itself — the calibrated cross-thread signal
    /// latency on a fully oversubscribed machine is effectively infinite, and the correct
    /// response is to run the cheap in-order path. Tests and the fuzzing oracle pin a
    /// profile explicitly and keep the full multi-worker protocol regardless.
    ///
    /// Public so callers (the parallel-runtime bench, diagnostics) can see which requested
    /// thread counts collapse to the same effective configuration on this machine.
    pub fn effective_workers(&self) -> usize {
        if self.wait_profile.is_some() {
            return self.threads;
        }
        self.threads.min(self.hardware.max(1))
    }

    /// Why [`ParallelExecutor::effective_workers`] is what it is, as a one-line
    /// diagnostic: whether the wait-profile pin kept the requested count, the topology
    /// fit, or the count was clamped to the hardware. Reported by the bench alongside
    /// `effective_workers` so a collapsed measurement explains itself.
    pub fn clamp_reason(&self) -> String {
        // The same snapshot `effective_workers` clamps with: the diagnostic can never
        // describe a different machine than the clamp acted on.
        let hardware = self.hardware;
        if self.wait_profile.is_some() {
            format!(
                "pinned wait profile keeps {} worker(s) on {} hardware thread(s)",
                self.threads, hardware
            )
        } else if self.threads <= hardware {
            format!(
                "{} worker(s) fit {} hardware thread(s)",
                self.threads, hardware
            )
        } else {
            format!(
                "clamped {} -> {}: only {} hardware thread(s) available",
                self.threads,
                self.effective_workers(),
                hardware
            )
        }
    }

    /// [`ParallelExecutor::run`] returning the run's [`TelemetryReport`] alongside the
    /// result (`None` when telemetry is disabled or compiled out).
    pub fn run_traced(
        &self,
        program: &TransformedProgram,
        args: &[Value],
    ) -> (Result<Option<Value>, RuntimeError>, Option<TelemetryReport>) {
        let pimg = ParallelImage::lower(program);
        self.run_parallel_traced(&pimg, args)
    }

    /// [`ParallelExecutor::run_parallel`] returning the run's [`TelemetryReport`]
    /// alongside the result (`None` when telemetry is disabled or compiled out).
    pub fn run_parallel_traced(
        &self,
        pimg: &ParallelImage,
        args: &[Value],
    ) -> (Result<Option<Value>, RuntimeError>, Option<TelemetryReport>) {
        self.run_lowered_traced(&pimg.exec, &pimg.loop_image, args)
    }

    /// [`ParallelExecutor::run_parallel`] with the full output: result, telemetry
    /// report, and — when [`ParallelExecutor::capture_memory`] is set — the run's final
    /// memory.
    pub fn run_parallel_out(&self, pimg: &ParallelImage, args: &[Value]) -> RunOutput {
        self.run_lowered_out(&pimg.exec, &pimg.loop_image, args)
    }

    pub(crate) fn run_lowered(
        &self,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        self.run_lowered_traced(image, loop_image, args).0
    }

    fn run_lowered_traced(
        &self,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
    ) -> (Result<Option<Value>, RuntimeError>, Option<TelemetryReport>) {
        let out = self.run_lowered_out(image, loop_image, args);
        (out.result, out.report)
    }

    fn run_lowered_out(
        &self,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
    ) -> RunOutput {
        let workers = self.effective_workers();
        let telem = TelemetryRun::for_run(self.telemetry, loop_image, workers);
        // The whole run is a panic boundary: any panic that reaches the submitting
        // thread — a Phase A/C fault, the single-worker path, or a primary-worker panic
        // — becomes a recoverable `WorkerPanicked` instead of unwinding the caller.
        // (The pooled path additionally catches panics per worker, so helpers drain
        // promptly and the pool poisons itself; see `run_pooled_on`.)
        let run = catch_unwind(AssertUnwindSafe(|| {
            if workers == 1 {
                self.run_single(image, loop_image, args, telem.as_ref())
            } else {
                self.run_pooled(image, loop_image, args, telem.as_ref())
            }
        }));
        let (mut result, memory) = match run {
            Ok(Ok((value, memory))) => (Ok(value), memory),
            Ok(Err(e)) => (Err(e), None),
            Err(payload) => (
                Err(RuntimeError::WorkerPanicked {
                    worker: 0,
                    message: panic_message(payload.as_ref()),
                    tail: Vec::new(),
                }),
                None,
            ),
        };
        let report = telem.map(TelemetryRun::report);
        match (&mut result, &report) {
            // Satellite diagnosis: a traced failure carries every worker's last events.
            (Err(RuntimeError::Deadlock { tail, .. }), Some(rep))
            | (Err(RuntimeError::WorkerPanicked { tail, .. }), Some(rep)) => {
                *tail = rep.deadlock_tail(8);
            }
            _ => {}
        }
        RunOutput {
            result,
            report,
            memory,
        }
    }

    /// Seeds the entry register file for Phase A.
    fn entry_regs(image: &ExecImage, loop_image: &LoopImage, args: &[Value]) -> Vec<Value> {
        let fi = image.func(loop_image.func);
        let mut regs = vec![Value::default(); fi.num_regs.max(args.len())];
        for (slot, a) in regs.iter_mut().zip(args.iter()).take(fi.num_params) {
            *slot = *a;
        }
        regs
    }

    /// Single-worker execution: the whole run happens on the calling thread against plain
    /// (unstriped) memory — no locks, no atomic contention, no pool. Lane counters are still
    /// honoured so a missing `Signal` deadlocks (and is reported) exactly as with more
    /// threads.
    fn run_single(
        &self,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
        telem_run: Option<&TelemetryRun>,
    ) -> Result<(Option<Value>, Option<Memory>), RuntimeError> {
        let fi = image.func(loop_image.func);
        let dispatch = self.resolved_tier();
        // `built_flat` owns any JIT artifact; it must stay alive as long as the table
        // (the patched head slots point into it), which its scope here guarantees.
        let built_flat = jit::build_flat_tables::<LocalTier>(dispatch, image);
        let flat_tables = built_flat.as_ref().map(|(t, _)| t);
        let mut tier = LocalTier {
            memory: image.initial_memory.fresh_copy(),
            arena: PrivateArena::new(),
        };
        let mut regs = Self::entry_regs(image, loop_image, args);
        let phase_a = match flat_tables {
            Some(t) => run_flat_threaded(
                image,
                t,
                loop_image.func,
                fi.entry_block,
                Some(loop_image.header),
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
            None => run_flat(
                image,
                loop_image.func,
                fi.entry_block,
                Some(loop_image.header),
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
        };
        match phase_a {
            // The loop was never reached.
            FlatEnd::Returned(v) => {
                let memory = self.capture_memory.then_some(tier.memory);
                return Ok((v, memory));
            }
            FlatEnd::ReachedStop => {}
        }

        // Phase B, single worker: iterations run in order on the calling thread with no
        // claim counters, no completion ring and no parks. Lane counters are still
        // maintained so a missing `Signal` is detected — instantly, because with no other
        // worker an unsatisfied `Wait` can never become satisfied.
        let lanes = SignalLanes::new(loop_image.num_phys_lanes(), 1);
        let sleepers = Sleepers::new();
        let exited_at = AtomicU64::new(u64::MAX);
        let telem = telem_run.map(|r| r.ctx(0));
        let sync = IterSync {
            lanes: &lanes,
            sleepers: &sleepers,
            exited_at: &exited_at,
            spin_budget: 0,
            profile: WaitProfile::DEDICATED,
            #[cfg(feature = "telemetry")]
            telem,
        };
        #[cfg(not(feature = "telemetry"))]
        let _ = telem;
        let snapshot = regs;
        let built_iter = jit::build_iter_table::<LocalTier>(dispatch, loop_image);
        let iter_table = built_iter.as_ref().map(|(t, _)| t);
        let mut counts = CountFlush::new(telem);
        let mut iter_regs = snapshot.clone();
        let mut iteration = 0u64;
        let exit = loop {
            if iteration > self.max_iterations {
                return Err(RuntimeError::IterationBudgetExceeded);
            }
            if self.panic_at == Some(iteration) {
                // Caught by `run_lowered_out`'s panic boundary on this same thread.
                panic!("injected fault: worker panic at iteration {iteration}");
            }
            prepare_iteration(loop_image, &snapshot, &mut iter_regs, iteration, &mut tier);
            // A single worker "claims" every iteration in order, so traced runs keep the
            // claims-are-a-permutation invariant at one thread too.
            counts.claims += 1;
            if let Some(t) = telem {
                t.on_claim(iteration);
            }
            let iter_start = telem.map(|t| t.on_iter_start(iteration));
            let outcome = match iter_table {
                Some(t) => run_iteration_threaded(
                    image,
                    loop_image,
                    t,
                    iteration,
                    &mut iter_regs,
                    &mut tier,
                    &sync,
                    &mut || {},
                ),
                None => run_iteration(
                    image,
                    loop_image,
                    iteration,
                    &mut iter_regs,
                    &mut tier,
                    &sync,
                    &mut || {},
                ),
            };
            counts.iterations += 1;
            if let (Some(t), Some(t0)) = (telem, iter_start) {
                t.on_iter_finish(iteration, t0);
            }
            match outcome {
                Ok(IterEnd::Completed) => iteration += 1,
                Ok(IterEnd::Exit { block }) => {
                    break LoopExit::Edge {
                        block,
                        regs: iter_regs,
                    }
                }
                Ok(IterEnd::Returned(v)) => break LoopExit::Returned(v),
                Ok(IterEnd::Cancelled) => {
                    unreachable!("a single worker never observes a foreign exit")
                }
                Err(e) => {
                    return Err(convert_iter_error(loop_image, iteration, e));
                }
            }
        };
        let (block, mut regs) = match exit {
            LoopExit::Edge { block, regs } => (block, regs),
            LoopExit::Returned(v) => {
                let memory = self.capture_memory.then_some(tier.memory);
                return Ok((v, memory));
            }
        };
        let skipped = tier.drain_private_words();
        counts.arena_words += skipped;
        drop(counts);
        if skipped > 0 {
            tier.memory
                .alloc(skipped as usize)
                .map_err(ExecError::from)?;
        }
        let phase_c = match flat_tables {
            Some(t) => run_flat_threaded(
                image,
                t,
                loop_image.func,
                block,
                None,
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
            None => run_flat(
                image,
                loop_image.func,
                block,
                None,
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
        };
        match phase_c {
            FlatEnd::Returned(v) => {
                let memory = self.capture_memory.then_some(tier.memory);
                Ok((v, memory))
            }
            FlatEnd::ReachedStop => unreachable!("phase C has no stop block"),
        }
    }

    /// Multi-worker execution over striped shared memory, with helpers activated lazily
    /// from the persistent pool. The worker count is clamped to the hardware thread count
    /// (see [`ParallelExecutor::effective_workers`]); callers that pinned a wait profile
    /// keep their exact count.
    fn run_pooled(
        &self,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
        telem: Option<&TelemetryRun>,
    ) -> Result<(Option<Value>, Option<Memory>), RuntimeError> {
        let clamped = ParallelExecutor {
            threads: self.effective_workers(),
            ..*self
        };
        clamped.run_pooled_on(WorkerPool::global(), image, loop_image, args, telem)
    }

    /// [`ParallelExecutor::run_pooled`] against an explicit pool (tests use a private pool
    /// to observe activation behaviour). `telem`, when present, must hold at least
    /// `self.threads` worker slots.
    pub(crate) fn run_pooled_on(
        &self,
        pool: &WorkerPool,
        image: &ExecImage,
        loop_image: &LoopImage,
        args: &[Value],
        telem: Option<&TelemetryRun>,
    ) -> Result<(Option<Value>, Option<Memory>), RuntimeError> {
        let fi = image.func(loop_image.func);
        let dispatch = self.resolved_tier();
        let memory = ShardedMemory::from_memory(&image.initial_memory);
        // Owns any JIT artifact; outlives every use of `flat_tables` below.
        let built_flat = jit::build_flat_tables::<SharedTier>(dispatch, image);
        let flat_tables = built_flat.as_ref().map(|(t, _)| t);
        let mut tier = SharedTier {
            shared: &memory,
            arena: PrivateArena::new(),
            // Phase A (and a solo Phase B prefix) run before any helper can touch memory.
            exclusive: true,
        };
        let mut regs = Self::entry_regs(image, loop_image, args);
        let phase_a = match flat_tables {
            Some(t) => run_flat_threaded(
                image,
                t,
                loop_image.func,
                fi.entry_block,
                Some(loop_image.header),
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
            None => run_flat(
                image,
                loop_image.func,
                fi.entry_block,
                Some(loop_image.header),
                &mut regs,
                &mut tier,
                self.max_iterations,
            )?,
        };
        match phase_a {
            // The loop was never reached.
            FlatEnd::Returned(v) => {
                let captured = self
                    .capture_memory
                    .then(|| memory.snapshot(&image.initial_memory));
                return Ok((v, captured));
            }
            FlatEnd::ReachedStop => {}
        }

        let profile = self
            .wait_profile
            .unwrap_or_else(|| WaitProfile::for_threads_on(self.threads, self.hardware));
        let shared = RunShared::new(
            image,
            loop_image,
            regs,
            self.threads,
            self.max_iterations,
            self.spin_budget,
            self.panic_at,
            profile,
        );
        let helpers = self.threads - 1;
        let job = |worker: usize| {
            // Helper panic boundary: record the cancellation *before* re-raising into
            // the pool's own catch, so every other worker drains promptly (iteration 0
            // wins the earliest-error race and zeroes `exited_at`) instead of spinning
            // out its full deadlock budget on control that will never be released.
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut tier = SharedTier {
                    shared: &memory,
                    arena: PrivateArena::new(),
                    exclusive: false,
                };
                // Each helper lowers (and, under the JIT tier, compiles) its own handler
                // table: a single pass over the loop bytecode, far below the pool-wake
                // cost it rides on. The artifact binding keeps any native code mapped for
                // the whole phase.
                let built = jit::build_iter_table(dispatch, loop_image);
                let table = built.as_ref().map(|(t, _)| t);
                // Helpers run with pool indices 1..=helpers; slot 0 is the calling thread.
                phase_b_worker(
                    &shared,
                    &mut tier,
                    true,
                    &mut || {},
                    telem.map(|r| r.ctx(worker)),
                    table,
                );
            }));
            if let Err(payload) = run {
                shared.record_error(
                    0,
                    RuntimeError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                        tail: Vec::new(),
                    },
                );
                // Re-raise into the pool's catch: the pool poisons itself and respawns
                // its helper cohort on the next submit.
                resume_unwind(payload);
            }
        };
        {
            // The calling thread is worker 0; helpers are activated the first time worker
            // 0 releases control — a loop that exits from iteration 0's prologue never
            // wakes them (the zero-iteration short-circuit).
            let mut ticket = None;
            let mut activate = || {
                if ticket.is_none() && helpers > 0 {
                    ticket = Some(pool.submit(helpers, &job));
                }
            };
            // On an oversubscribed machine the primary starts in the solo fast path and
            // switches to the shared claim loop only if a helper asks to join.
            let primary_telem = telem.map(|r| r.ctx(0));
            let built = jit::build_iter_table(dispatch, loop_image);
            let table = built.as_ref().map(|(t, _)| t);
            // Primary panic boundary: a panic on the submitting thread mid-Phase-B must
            // record the cancellation before the ticket join below, or the helpers would
            // wait forever on control the primary can no longer release.
            let primary = catch_unwind(AssertUnwindSafe(|| {
                let solo_ended = if shared.published.0.load(Ordering::Acquire) == 0 {
                    phase_b_solo(&shared, &mut tier, &mut activate, primary_telem, table).is_none()
                } else {
                    false
                };
                if !solo_ended {
                    // The claim protocol is public: helpers may be racing on shared memory.
                    tier.set_exclusive(false);
                    phase_b_worker(
                        &shared,
                        &mut tier,
                        false,
                        &mut activate,
                        primary_telem,
                        table,
                    );
                }
            }));
            if let Err(payload) = primary {
                shared.record_error(
                    0,
                    RuntimeError::WorkerPanicked {
                        worker: 0,
                        message: panic_message(payload.as_ref()),
                        tail: Vec::new(),
                    },
                );
            }
            if let Some(t) = ticket {
                if let Err(p) = t.wait() {
                    // The helper's own boundary already recorded the structured error
                    // before re-raising; this fallback covers a panic that somehow
                    // escaped outside it (record_error keeps the earliest, so a
                    // duplicate is a no-op).
                    shared.record_error(
                        0,
                        RuntimeError::WorkerPanicked {
                            worker: p.worker,
                            message: p.message,
                            tail: Vec::new(),
                        },
                    );
                }
            }
            // Every helper has left the job (the ticket join is the barrier): this thread
            // owns memory again for Phase C.
            tier.set_exclusive(true);
        }
        let value = self.finish(shared, &mut tier, flat_tables, |tier, words| {
            tier.shared.reserve(words).map_err(ExecError::from)
        })?;
        let captured = self
            .capture_memory
            .then(|| memory.snapshot(&image.initial_memory));
        Ok((value, captured))
    }

    /// Shared Phase B epilogue + Phase C: surface errors, re-reserve privately served
    /// words, resume from the earliest exit.
    fn finish<T: Tier>(
        &self,
        shared: RunShared<'_>,
        tier: &mut T,
        flat_tables: Option<&FlatTables<T>>,
        reserve: impl FnOnce(&mut T, usize) -> Result<(), ExecError>,
    ) -> Result<Option<Value>, RuntimeError> {
        let image = shared.image;
        let loop_image = shared.loop_image;
        // Sequential semantics pick whichever loop end comes first in *iteration* order: a
        // fault in a speculative iteration past an already-recorded exit is work sequential
        // execution never performs and must not mask the legitimate result. An error at or
        // before the earliest exit is real (sequential execution reaches it first).
        let error = shared.error.into_inner();
        let exit = shared.exit_state.into_inner();
        if let Some((err_iter, err)) = error {
            let exit_iter = exit.as_ref().map_or(u64::MAX, |(i, _)| *i);
            if err_iter <= exit_iter {
                return Err(err);
            }
        }
        let (block, mut regs) = match exit {
            Some((_, LoopExit::Edge { block, regs })) => (block, regs),
            Some((_, LoopExit::Returned(v))) => return Ok(v),
            None => return Err(RuntimeError::IterationBudgetExceeded),
        };
        // Re-reserve the privately served allocations so Phase C's shared addresses match
        // a sequential run of the loop.
        let skipped = shared.private_words.load(Ordering::Relaxed);
        if skipped > 0 {
            reserve(tier, skipped as usize)?;
        }
        let phase_c = match flat_tables {
            Some(t) => run_flat_threaded(
                image,
                t,
                loop_image.func,
                block,
                None,
                &mut regs,
                tier,
                self.max_iterations,
            )?,
            None => run_flat(
                image,
                loop_image.func,
                block,
                None,
                &mut regs,
                tier,
                self.max_iterations,
            )?,
        };
        match phase_c {
            FlatEnd::Returned(v) => Ok(v),
            FlatEnd::ReachedStop => unreachable!("phase C has no stop block"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_analysis::LoopNestingGraph;
    use helix_core::{transform, Helix, HelixConfig};
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{BinOp, FuncId, Machine, Operand};
    use helix_profiler::profile_program_image;

    /// Builds a module whose main contains one parallelizable accumulator loop over an array,
    /// analyzes it, transforms the hottest plan and returns everything needed to execute it.
    fn build_accumulator(n: i64) -> (helix_ir::Module, FuncId, TransformedProgram) {
        let mut mb = ModuleBuilder::new("m");
        let acc = mb.add_global("acc", 1);
        let arr = mb.add_global("arr", 1 + n as usize);
        let mut fb = FunctionBuilder::new("main", 0);
        // Fill the array with i*5 + 1.
        let init = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let a = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(init.induction_var),
        );
        let v = fb.binary_to_new(
            BinOp::Mul,
            Operand::Var(init.induction_var),
            Operand::int(5),
        );
        let v1 = fb.binary_to_new(BinOp::Add, Operand::Var(v), Operand::int(1));
        fb.store(Operand::Var(a), 0, Operand::Var(v1));
        fb.br(init.latch);
        fb.switch_to(init.exit);
        // Accumulate with extra per-iteration work.
        let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let addr = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(lh.induction_var),
        );
        let elt = fb.new_var();
        fb.load(elt, Operand::Var(addr), 0);
        let mixed = fb.binary_to_new(BinOp::Mul, Operand::Var(elt), Operand::int(3));
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(mixed));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        let main = mb.add_function(fb.finish());
        let module = mb.finish();

        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        // Transform the accumulator loop (the one with a data-transferring segment).
        let plan = output
            .plans
            .values()
            .find(|p| {
                p.segments
                    .iter()
                    .any(|s| s.transfers_data && s.synchronized)
            })
            .expect("accumulator plan")
            .clone();
        let transformed = transform::apply(&module, &plan);
        (module, main, transformed)
    }

    #[test]
    fn parallel_result_matches_sequential_result() {
        let (module, main, transformed) = build_accumulator(64);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        for threads in [1, 2, 4, 6] {
            let executor = ParallelExecutor::new(threads);
            let got = executor
                .run(&transformed, &[])
                .unwrap_or_else(|e| panic!("{threads} threads failed: {e}"))
                .unwrap()
                .as_int();
            assert_eq!(got, expected, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn dispatch_tiers_agree_at_every_thread_count() {
        // The direct-threaded and JIT tiers must be observationally identical to the
        // switch interpreter: same result, at every worker count, under the pinned
        // DEDICATED profile that keeps the full claim protocol alive. (On targets
        // without JIT support the `Jit` leg degrades to threaded — still a valid leg.)
        let (module, main, transformed) = build_accumulator(96);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        let pimg = ParallelImage::lower(&transformed);
        for threads in [1, 2, 4, 6] {
            for tier in [
                DispatchTier::Switch,
                DispatchTier::Threaded,
                DispatchTier::Jit,
                DispatchTier::Auto,
            ] {
                let executor = ParallelExecutor::new(threads)
                    .with_wait_profile(WaitProfile::DEDICATED)
                    .with_dispatch_tier(tier);
                let got = executor
                    .run_parallel(&pimg, &[])
                    .unwrap_or_else(|e| panic!("{threads}t/{tier}: {e}"))
                    .unwrap()
                    .as_int();
                assert_eq!(got, expected, "{threads} threads, {tier} tier");
            }
        }
    }

    #[test]
    fn auto_tier_resolves_through_the_calibrator() {
        // Read-side of the env lock: the comparison below calls `selected_tier()` twice
        // and must not see `HELIX_DISABLE_JIT` flip in between.
        let _env = crate::jit::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let executor = ParallelExecutor::new(2);
        assert_eq!(executor.dispatch_tier, DispatchTier::Auto);
        let resolved = executor.resolved_tier();
        assert_ne!(
            resolved,
            DispatchTier::Auto,
            "Auto must resolve to an engine"
        );
        assert_eq!(resolved, CalibrationProfile::cached().selected_tier());
        // Pins win over calibration.
        let pinned = executor.with_dispatch_tier(DispatchTier::Switch);
        assert_eq!(pinned.resolved_tier(), DispatchTier::Switch);
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_threading() {
        let (_module, _main, transformed) = build_accumulator(48);
        let executor = ParallelExecutor::new(4);
        let pimg = ParallelImage::lower(&transformed);
        let first = executor.run_parallel(&pimg, &[]).unwrap().unwrap().as_int();
        for _ in 0..5 {
            let again = executor.run_parallel(&pimg, &[]).unwrap().unwrap().as_int();
            assert_eq!(again, first, "pool reuse must stay deterministic");
        }
        // The legacy pre-lowered-module entry point agrees.
        let image = ExecImage::lower(&transformed.module);
        let legacy = executor
            .run_image(&image, &transformed, &[])
            .unwrap()
            .unwrap()
            .as_int();
        assert_eq!(legacy, first);
    }

    #[test]
    fn executor_handles_zero_trip_loops() {
        let (_module, _main, transformed) = build_accumulator(64);
        // Check that a single-thread executor also works, which exercises the same exit path
        // on the first prologue evaluation for iteration == n.
        let executor = ParallelExecutor::new(1);
        assert!(executor.run(&transformed, &[]).unwrap().is_some());
    }

    #[test]
    fn budgets_are_configurable() {
        let config = HelixConfig::i7_980x()
            .with_spin_budget(1234)
            .with_max_loop_iterations(99);
        let executor = ParallelExecutor::from_config(3, &config);
        assert_eq!(executor.threads, 3);
        assert_eq!(executor.spin_budget, 1234);
        assert_eq!(executor.max_iterations, 99);
        let tuned = ParallelExecutor::new(2)
            .with_spin_budget(5)
            .with_max_iterations(7);
        assert_eq!(tuned.spin_budget, 5);
        assert_eq!(tuned.max_iterations, 7);
    }

    #[test]
    fn tiny_iteration_budget_aborts_the_run() {
        let (_module, _main, transformed) = build_accumulator(64);
        let executor = ParallelExecutor::new(2).with_max_iterations(3);
        match executor.run(&transformed, &[]) {
            Err(RuntimeError::IterationBudgetExceeded) => {}
            other => panic!("expected IterationBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_reports_segment_and_pc_range() {
        // Build a transformed program whose plan demands a synchronized segment, then corrupt
        // the clone by deleting every Signal instruction: iteration 1's Wait can never be
        // satisfied and must produce a precise deadlock report localized to its segment.
        let (_module, _main, mut transformed) = build_accumulator(32);
        let func = transformed.parallel_func;
        let f = transformed.module.function_mut(func);
        for block in &mut f.blocks {
            block
                .instrs
                .retain(|i| !matches!(i, helix_ir::Instr::Signal { .. }));
        }
        let executor = ParallelExecutor::new(2).with_spin_budget(50_000);
        match executor.run(&transformed, &[]) {
            Err(RuntimeError::Deadlock {
                dep,
                iteration,
                lane,
                last_observed,
                segment,
                wait_pc,
                segment_pc_range,
                tail,
            }) => {
                assert!(iteration >= 1, "iteration 0 never waits");
                assert!(last_observed < iteration);
                assert!(segment < transformed.plan.segments.len());
                assert_eq!(transformed.plan.segments[segment].dep, dep);
                assert!(
                    segment_pc_range.0 <= wait_pc && wait_pc <= segment_pc_range.1.max(wait_pc)
                );
                assert!(tail.is_empty(), "untraced runs carry no telemetry tail");
                let msg = RuntimeError::Deadlock {
                    dep,
                    iteration,
                    lane,
                    last_observed,
                    segment,
                    wait_pc,
                    segment_pc_range,
                    tail,
                }
                .to_string();
                assert!(msg.contains("segment"), "diagnostic lacks segment: {msg}");
                assert!(msg.contains("pc"), "diagnostic lacks pc info: {msg}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn traced_deadlocks_carry_the_event_tail() {
        // Same corrupted program as above, but run with telemetry: the deadlock report
        // must carry each worker's last events, including the blocked wait itself.
        let (_module, _main, mut transformed) = build_accumulator(32);
        let func = transformed.parallel_func;
        let f = transformed.module.function_mut(func);
        for block in &mut f.blocks {
            block
                .instrs
                .retain(|i| !matches!(i, helix_ir::Instr::Signal { .. }));
        }
        let executor = ParallelExecutor::new(2)
            .with_spin_budget(50_000)
            .with_telemetry(TelemetryMode::Full);
        let (result, report) = executor.run_traced(&transformed, &[]);
        assert!(report.is_some(), "traced runs produce a report");
        match result {
            Err(RuntimeError::Deadlock { tail, .. }) => {
                assert!(!tail.is_empty(), "traced deadlock must carry worker tails");
                let has_wait = tail.iter().any(|t| {
                    t.events
                        .iter()
                        .any(|e| matches!(e.kind, crate::telemetry::EventKind::WaitBegin))
                });
                assert!(
                    has_wait,
                    "some worker tail shows the blocked wait: {tail:?}"
                );
                let msg = RuntimeError::Deadlock {
                    dep: DepId::new(0),
                    iteration: 1,
                    lane: 0,
                    last_observed: 0,
                    segment: 0,
                    wait_pc: 0,
                    segment_pc_range: (0, 0),
                    tail,
                }
                .to_string();
                assert!(
                    msg.contains("last events per worker"),
                    "tail missing from diagnostic: {msg}"
                );
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    /// Builds a program whose loop trip count is the function's parameter, so the same
    /// transformed program can be profiled with iterations and then run with zero.
    fn build_param_trip() -> TransformedProgram {
        let mut mb = ModuleBuilder::new("m");
        let acc = mb.add_global("acc", 1);
        let mut fb = FunctionBuilder::new("main", 1);
        let n = fb.param(0);
        let lh = fb.counted_loop(Operand::int(0), Operand::Var(n), 1);
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::int(3));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        let main = mb.add_function(fb.finish());
        let module = mb.finish();
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[Value::Int(16)]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let plan = output.plans.values().next().expect("loop plan").clone();
        transform::apply(&module, &plan)
    }

    #[test]
    fn injected_panic_surfaces_as_structured_error_and_next_run_succeeds() {
        // The prerequisite bugfix of the service work: a worker panic during a parallel
        // run must come back as `RuntimeError::WorkerPanicked` (payload preserved, no
        // process abort), and the *next* run on the same executor — same process-wide
        // pool — must succeed on a transparently respawned helper cohort. The DEDICATED
        // pin keeps the full multi-worker claim protocol alive on a 1-CPU host.
        let (_module, _main, transformed) = build_accumulator(64);
        let pimg = ParallelImage::lower(&transformed);
        let expected = ParallelExecutor::new(1)
            .run_parallel(&pimg, &[])
            .unwrap()
            .unwrap()
            .as_int();
        for threads in [1, 2, 4] {
            // Fault injection fires at claim time, ahead of dispatch, so every tier —
            // including JIT-patched tables, where the panic unwinds across only
            // interpreter frames, never native ones — must surface and recover alike.
            for tier in [
                DispatchTier::Switch,
                DispatchTier::Threaded,
                DispatchTier::Jit,
            ] {
                let executor = ParallelExecutor::new(threads)
                    .with_wait_profile(WaitProfile::DEDICATED)
                    .with_dispatch_tier(tier);
                let faulty = executor.with_injected_panic(7);
                match faulty.run_parallel(&pimg, &[]) {
                    Err(RuntimeError::WorkerPanicked {
                        worker, message, ..
                    }) => {
                        assert!(worker < threads, "worker index in range ({worker})");
                        assert!(
                            message.contains("injected fault"),
                            "payload preserved: {message}"
                        );
                    }
                    other => panic!("{threads}t/{tier}: expected WorkerPanicked, got {other:?}"),
                }
                // Recovery: the same executor (minus the fault) runs to completion.
                let got = executor
                    .run_parallel(&pimg, &[])
                    .unwrap_or_else(|e| panic!("{threads}t/{tier} post-panic run failed: {e}"))
                    .unwrap()
                    .as_int();
                assert_eq!(got, expected, "{threads}t/{tier} post-panic result");
            }
        }
    }

    #[test]
    fn jit_tier_degrades_to_threaded_when_disabled() {
        // `HELIX_DISABLE_JIT=1` must turn both a pinned `Jit` tier and an `Auto`
        // resolution into plain threaded execution — correct results, no panic. The env
        // flag is read on every `jit_supported()` call, so flipping it mid-process works.
        let (module, main, transformed) = build_accumulator(48);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        let pimg = ParallelImage::lower(&transformed);
        let _env = crate::jit::TEST_ENV_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        std::env::set_var("HELIX_DISABLE_JIT", "1");
        assert!(!crate::jit::jit_supported());
        for tier in [DispatchTier::Jit, DispatchTier::Auto] {
            let executor = ParallelExecutor::new(2)
                .with_wait_profile(WaitProfile::DEDICATED)
                .with_dispatch_tier(tier);
            assert_ne!(executor.resolved_tier(), DispatchTier::Auto);
            let got = executor
                .run_parallel(&pimg, &[])
                .unwrap_or_else(|e| panic!("{tier} with JIT disabled: {e}"))
                .unwrap()
                .as_int();
            assert_eq!(got, expected, "{tier} with JIT disabled");
        }
        std::env::remove_var("HELIX_DISABLE_JIT");
    }

    #[test]
    fn captured_memory_is_deterministic_across_runs() {
        let (_module, _main, transformed) = build_accumulator(48);
        let pimg = ParallelImage::lower(&transformed);
        let executor = ParallelExecutor::new(2)
            .with_wait_profile(WaitProfile::DEDICATED)
            .with_capture_memory(true);
        let first = executor.run_parallel_out(&pimg, &[]);
        let second = executor.run_parallel_out(&pimg, &[]);
        let a = first.memory.expect("captured");
        let b = second.memory.expect("captured");
        assert_eq!(first.result.unwrap(), second.result.unwrap());
        assert_eq!(a.heap_base(), b.heap_base());
        assert_eq!(a.heap_used(), b.heap_used());
        assert_eq!(
            a.words(),
            b.words(),
            "memory diverged between identical runs"
        );
        // Capture off → no snapshot.
        let off = ParallelExecutor::new(2).run_parallel_out(&pimg, &[]);
        assert!(off.memory.is_none());
    }

    #[test]
    fn hardware_snapshot_drives_clamp_and_its_diagnostic() {
        // The clamp and its explanation must read the same snapshot: override it and
        // both move together, regardless of what the machine reports right now.
        let mut executor = ParallelExecutor::new(8);
        executor.hardware = 2;
        assert_eq!(executor.effective_workers(), 2);
        assert!(
            executor.clamp_reason().contains("2 hardware thread(s)"),
            "diagnostic uses the snapshot: {}",
            executor.clamp_reason()
        );
        executor.hardware = 16;
        assert_eq!(executor.effective_workers(), 8);
        assert!(
            executor
                .clamp_reason()
                .contains("fit 16 hardware thread(s)"),
            "diagnostic uses the snapshot: {}",
            executor.clamp_reason()
        );
    }

    #[test]
    fn zero_trip_loops_never_wake_the_pool() {
        let transformed = build_param_trip();
        let pimg = ParallelImage::lower(&transformed);
        let executor = ParallelExecutor::new(4);
        let pool = WorkerPool::new();
        // Zero iterations: Phase A runs into the header, iteration 0's prologue exits
        // immediately, and no helper must ever be spawned or woken.
        let got = executor
            .run_pooled_on(&pool, &pimg.exec, &pimg.loop_image, &[Value::Int(0)], None)
            .unwrap()
            .0
            .unwrap()
            .as_int();
        assert_eq!(got, 0);
        assert_eq!(
            pool.spawned_helpers(),
            0,
            "a zero-iteration loop must short-circuit to sequential execution"
        );
        // With iterations to dispatch the same pool does get activated.
        let got = executor
            .run_pooled_on(&pool, &pimg.exec, &pimg.loop_image, &[Value::Int(12)], None)
            .unwrap()
            .0
            .unwrap()
            .as_int();
        assert_eq!(got, 36);
        assert_eq!(pool.spawned_helpers(), 3);
    }

    #[test]
    fn privatized_scratch_allocations_run_in_the_arena() {
        // A loop allocating a private scratch buffer per iteration: privatization must
        // apply, the parallel results must match sequential execution at every thread
        // count, and shared heap bookkeeping must stay bitwise-identical (checked through
        // the returned pointer-derived value).
        let mut mb = ModuleBuilder::new("m");
        let acc = mb.add_global("acc", 1);
        let mut fb = FunctionBuilder::new("main", 0);
        let lh = fb.counted_loop(Operand::int(0), Operand::int(40), 1);
        let p = fb.new_var();
        fb.alloc(p, Operand::int(3));
        fb.store(Operand::Var(p), 0, Operand::Var(lh.induction_var));
        let sq = fb.binary_to_new(
            BinOp::Mul,
            Operand::Var(lh.induction_var),
            Operand::Var(lh.induction_var),
        );
        fb.store(Operand::Var(p), 1, Operand::Var(sq));
        let a = fb.new_var();
        fb.load(a, Operand::Var(p), 0);
        let b = fb.new_var();
        fb.load(b, Operand::Var(p), 1);
        let sum = fb.binary_to_new(BinOp::Add, Operand::Var(a), Operand::Var(b));
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(sum));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        // After the loop, allocate shared memory and fold its address into the result:
        // catches any divergence in the shared bump pointer caused by privatization.
        let q = fb.new_var();
        fb.alloc(q, Operand::int(2));
        let r = fb.new_var();
        fb.load(r, Operand::Global(acc), 0);
        let out = fb.binary_to_new(BinOp::Add, Operand::Var(r), Operand::Var(q));
        fb.ret(Some(Operand::Var(out)));
        let main = mb.add_function(fb.finish());
        let module = mb.finish();

        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let plan = output
            .plans
            .values()
            .find(|p| !p.private_allocs.is_empty())
            .expect("the scratch allocation must be privatized")
            .clone();
        let transformed = transform::apply(&module, &plan);
        assert!(!transformed.private_allocs.is_empty());
        let pimg = ParallelImage::lower(&transformed);
        assert!(pimg.loop_image.private_words_per_iter >= 3);

        // The parity target is a sequential run of the *clone* (the transform itself adds a
        // frame global, shifting the original module's heap base by design): privatization
        // must leave every shared address the clone can observe — including the post-loop
        // allocation folded into the result — bitwise-identical.
        let mut machine = Machine::new(&transformed.module);
        let expected = machine
            .call(transformed.parallel_func, &[])
            .unwrap()
            .unwrap()
            .as_int();
        let mut original = Machine::new(&module);
        let base = original.call(main, &[]).unwrap().unwrap().as_int();
        assert_eq!(
            expected - base,
            1,
            "clone differs only by the frame global's word"
        );
        for threads in [1, 2, 4] {
            let got = ParallelExecutor::new(threads)
                .run_parallel(&pimg, &[])
                .unwrap_or_else(|e| panic!("{threads} threads failed: {e}"))
                .unwrap()
                .as_int();
            assert_eq!(got, expected, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn spec_benchmark_runs_in_parallel_with_matching_checksum() {
        // End-to-end: take a SPEC stand-in, pick its hottest selected loop, transform it and
        // execute with real threads; the program checksum must match sequential execution.
        let bench = helix_workloads::all_benchmarks()[0]; // gzip stand-in
        let (module, main) = bench.build();
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let Some(plan) = output.selected_plans().into_iter().max_by(|a, b| {
            let ka = profile.loop_profile((a.func, a.loop_id)).cycles;
            let kb = profile.loop_profile((b.func, b.loop_id)).cycles;
            ka.cmp(&kb)
        }) else {
            // Nothing selected for this benchmark under the default config: nothing to check.
            return;
        };
        // Only main-level loops are executable by the single-invocation executor.
        if plan.func != main {
            return;
        }
        let transformed = transform::apply(&module, plan);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        let got = ParallelExecutor::new(4)
            .run(&transformed, &[])
            .expect("parallel execution succeeds")
            .unwrap()
            .as_int();
        assert_eq!(got, expected);
    }
}
