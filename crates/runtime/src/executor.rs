//! The parallel loop executor.

use helix_core::TransformedProgram;
use helix_ir::interp::{
    eval_binop, eval_pred, eval_unop, Context, Evaluator, ExecError, NullObserver,
};
use helix_ir::{BlockId, DepId, Function, Instr, Memory, Module, Value};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors raised by the parallel executor.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// The underlying interpreter faulted.
    Exec(ExecError),
    /// The executor gave up waiting for a signal (likely a missing `Signal` on some path).
    Deadlock {
        /// The dependence being waited for.
        dep: DepId,
        /// The iteration that was waiting.
        iteration: u64,
    },
    /// The loop never terminated within the iteration budget.
    IterationBudgetExceeded,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Exec(e) => write!(f, "execution error: {e}"),
            RuntimeError::Deadlock { dep, iteration } => {
                write!(f, "deadlock waiting for {dep} in iteration {iteration}")
            }
            RuntimeError::IterationBudgetExceeded => write!(f, "iteration budget exceeded"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ExecError> for RuntimeError {
    fn from(e: ExecError) -> Self {
        RuntimeError::Exec(e)
    }
}

/// Shared synchronization state: one counter per dependence plus the control counter gating
/// prologue execution, and the exit bookkeeping.
struct SyncState {
    signals: Vec<AtomicU64>,
    control: AtomicU64,
    /// Lowest iteration index that took a loop exit (u64::MAX while the loop is running).
    exited_at: AtomicU64,
    /// Register file and exit block of the exiting iteration.
    exit_state: Mutex<Option<(BlockId, Vec<Value>)>>,
}

impl SyncState {
    fn new(num_deps: usize) -> Self {
        Self {
            signals: (0..num_deps.max(1)).map(|_| AtomicU64::new(0)).collect(),
            control: AtomicU64::new(0),
            exited_at: AtomicU64::new(u64::MAX),
            exit_state: Mutex::new(None),
        }
    }
}

/// The shared-memory context each worker executes against.
struct SharedContext {
    memory: Arc<Mutex<Memory>>,
    sync: Arc<SyncState>,
    iteration: u64,
    spin_budget: u64,
}

impl SharedContext {
    fn new(memory: Arc<Mutex<Memory>>, sync: Arc<SyncState>) -> Self {
        Self {
            memory,
            sync,
            iteration: 0,
            spin_budget: 200_000_000,
        }
    }
}

impl Context for SharedContext {
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.memory.lock().load(addr)?)
    }

    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        Ok(self.memory.lock().store(addr, value)?)
    }

    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.memory.lock().alloc(words)?)
    }

    fn wait(&mut self, dep: DepId) -> Result<u64, ExecError> {
        if self.iteration == 0 {
            return Ok(0);
        }
        let slot = &self.sync.signals[dep.index() % self.sync.signals.len()];
        let mut spins = 0u64;
        while slot.load(Ordering::Acquire) < self.iteration {
            std::thread::yield_now();
            spins += 1;
            if spins > self.spin_budget {
                return Err(ExecError::Synchronization(format!(
                    "timed out waiting for {dep} in iteration {}",
                    self.iteration
                )));
            }
        }
        Ok(0)
    }

    fn signal(&mut self, dep: DepId) -> Result<(), ExecError> {
        let slot = &self.sync.signals[dep.index() % self.sync.signals.len()];
        slot.fetch_max(self.iteration + 1, Ordering::Release);
        Ok(())
    }
}

/// What happened after executing one basic block.
enum BlockOutcome {
    Jump(BlockId),
    Return(Option<Value>),
}

/// Executes one basic block of `function` against `ctx`, mutating `regs`.
fn exec_block(
    module: &Module,
    function: &Function,
    block: BlockId,
    regs: &mut Vec<Value>,
    ctx: &mut dyn Context,
) -> Result<BlockOutcome, ExecError> {
    let evaluator = Evaluator::new(module);
    let eval = |regs: &[Value], op| evaluator.eval_operand(regs, op);
    if regs.len() < function.num_vars {
        regs.resize(function.num_vars, Value::default());
    }
    for instr in &function.block(block).instrs {
        match instr {
            Instr::Const { dst, value } | Instr::Copy { dst, src: value } => {
                regs[dst.index()] = eval(regs, *value);
            }
            Instr::Unary { dst, op, src } => {
                regs[dst.index()] = eval_unop(*op, eval(regs, *src));
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                regs[dst.index()] = eval_binop(*op, eval(regs, *lhs), eval(regs, *rhs));
            }
            Instr::Cmp {
                dst,
                pred,
                lhs,
                rhs,
            } => {
                regs[dst.index()] =
                    Value::from_bool(eval_pred(*pred, eval(regs, *lhs), eval(regs, *rhs)));
            }
            Instr::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let v = if eval(regs, *cond).as_bool() {
                    eval(regs, *on_true)
                } else {
                    eval(regs, *on_false)
                };
                regs[dst.index()] = v;
            }
            Instr::Load { dst, addr, offset } => {
                let base = eval(regs, *addr).as_int();
                regs[dst.index()] = ctx.load(base + offset)?;
            }
            Instr::Store {
                addr,
                offset,
                value,
            } => {
                let base = eval(regs, *addr).as_int();
                let v = eval(regs, *value);
                ctx.store(base + offset, v)?;
            }
            Instr::Alloc { dst, words } => {
                let n = eval(regs, *words).as_int().max(0) as usize;
                regs[dst.index()] = Value::Int(ctx.alloc(n)?);
            }
            Instr::Call { dst, callee, args } => {
                let actuals: Vec<Value> = args.iter().map(|a| eval(regs, *a)).collect();
                let mut nested = Evaluator::new(module);
                let ret = nested.call(*callee, &actuals, ctx, &mut NullObserver)?;
                if let Some(d) = dst {
                    regs[d.index()] = ret.unwrap_or_default();
                }
            }
            Instr::Wait { dep } => {
                ctx.wait(*dep)?;
            }
            Instr::Signal { dep } => {
                ctx.signal(*dep)?;
            }
            Instr::Br { target } => return Ok(BlockOutcome::Jump(*target)),
            Instr::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let t = eval(regs, *cond).as_bool();
                return Ok(BlockOutcome::Jump(if t { *then_bb } else { *else_bb }));
            }
            Instr::Ret { value } => {
                return Ok(BlockOutcome::Return(value.map(|v| eval(regs, v))));
            }
        }
    }
    Err(ExecError::MissingTerminator(block))
}

/// Executes a HELIX-transformed program with real worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ParallelExecutor {
    /// Number of worker threads ("cores"). The main thread acts as one of them.
    pub threads: usize,
    /// Safety cap on the number of loop iterations dispatched.
    pub max_iterations: u64,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: 10_000_000,
        }
    }
}

impl ParallelExecutor {
    /// Creates an executor with `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Runs the parallel clone of `program` from its entry with `args`, executing the
    /// parallelized loop's iterations across worker threads, and returns the function's
    /// return value.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the interpreter faults, a signal never arrives, or the
    /// loop exceeds the iteration budget.
    pub fn run(
        &self,
        program: &TransformedProgram,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        let module = &program.module;
        let function = module.function(program.parallel_func);
        let plan = &program.plan;
        let loop_blocks: BTreeSet<BlockId> = plan
            .prologue_blocks
            .iter()
            .chain(plan.body_blocks.iter())
            .copied()
            .collect();
        let num_deps = plan
            .segments
            .iter()
            .map(|s| s.dep.index() + 1)
            .max()
            .unwrap_or(1);

        let memory = Arc::new(Mutex::new(Memory::for_module(module)));
        let sync = Arc::new(SyncState::new(num_deps));
        let mut ctx = SharedContext::new(memory.clone(), sync.clone());

        // Phase A: sequential execution from the entry until the parallel loop's header.
        let mut regs = vec![Value::default(); function.num_vars.max(args.len())];
        for (i, a) in args.iter().enumerate().take(function.num_params) {
            regs[i] = *a;
        }
        let mut block = function.entry;
        let mut guard = 0u64;
        loop {
            if block == plan.header {
                break;
            }
            guard += 1;
            if guard > self.max_iterations {
                return Err(RuntimeError::IterationBudgetExceeded);
            }
            match exec_block(module, function, block, &mut regs, &mut ctx)? {
                BlockOutcome::Jump(next) => block = next,
                BlockOutcome::Return(v) => return Ok(v), // the loop was never reached
            }
        }

        // Phase B: parallel execution of the loop.
        let snapshot = regs.clone();
        let next_iteration = AtomicU64::new(0);
        let max_iterations = self.max_iterations;
        let worker_error: Mutex<Option<RuntimeError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut worker_ctx = SharedContext::new(memory.clone(), sync.clone());
                    loop {
                        let iteration = next_iteration.fetch_add(1, Ordering::SeqCst);
                        if iteration > max_iterations {
                            *worker_error.lock() = Some(RuntimeError::IterationBudgetExceeded);
                            return;
                        }
                        // Wait for permission: the previous iteration's prologue must have
                        // completed and decided to continue.
                        loop {
                            if sync.exited_at.load(Ordering::Acquire) <= iteration {
                                return; // the loop ended before this iteration
                            }
                            if sync.control.load(Ordering::Acquire) >= iteration {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        if sync.exited_at.load(Ordering::Acquire) <= iteration {
                            return;
                        }
                        worker_ctx.iteration = iteration;
                        let mut iter_regs = snapshot.clone();
                        // Privatize basic induction variables: each core recomputes them from
                        // the iteration number and their value at loop entry (Step 2).
                        for (var, step) in &plan.induction_vars {
                            let base = snapshot
                                .get(var.index())
                                .copied()
                                .unwrap_or_default()
                                .as_int();
                            if var.index() < iter_regs.len() {
                                iter_regs[var.index()] =
                                    Value::Int(base + *step * iteration as i64);
                            }
                        }
                        let mut current = plan.header;
                        let mut prologue_done = false;
                        loop {
                            if !prologue_done && plan.body_blocks.contains(&current) {
                                // Leaving the prologue: release the next iteration.
                                sync.control.fetch_max(iteration + 1, Ordering::Release);
                                prologue_done = true;
                            }
                            match exec_block(
                                module,
                                function,
                                current,
                                &mut iter_regs,
                                &mut worker_ctx,
                            ) {
                                Ok(BlockOutcome::Jump(next)) => {
                                    if next == plan.header {
                                        // Back edge: the iteration is complete.
                                        if !prologue_done {
                                            sync.control
                                                .fetch_max(iteration + 1, Ordering::Release);
                                        }
                                        break;
                                    }
                                    if !loop_blocks.contains(&next) {
                                        // Loop exit: record it and stop dispatching.
                                        sync.exited_at.fetch_min(iteration, Ordering::AcqRel);
                                        let mut slot = sync.exit_state.lock();
                                        if slot.is_none() {
                                            *slot = Some((next, iter_regs.clone()));
                                        }
                                        return;
                                    }
                                    current = next;
                                }
                                Ok(BlockOutcome::Return(_)) => {
                                    // A return inside the loop also terminates it.
                                    sync.exited_at.fetch_min(iteration, Ordering::AcqRel);
                                    return;
                                }
                                Err(e) => {
                                    sync.exited_at.fetch_min(iteration, Ordering::AcqRel);
                                    *worker_error.lock() = Some(RuntimeError::Exec(e));
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        if let Some(err) = worker_error.into_inner() {
            return Err(err);
        }

        // Phase C: sequential execution after the loop, from the recorded exit.
        let (mut block, mut regs) = match sync.exit_state.lock().take() {
            Some(state) => state,
            None => return Err(RuntimeError::IterationBudgetExceeded),
        };
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > self.max_iterations {
                return Err(RuntimeError::IterationBudgetExceeded);
            }
            match exec_block(module, function, block, &mut regs, &mut ctx)? {
                BlockOutcome::Jump(next) => block = next,
                BlockOutcome::Return(v) => return Ok(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_analysis::LoopNestingGraph;
    use helix_core::{transform, Helix, HelixConfig};
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{BinOp, FuncId, Machine, Operand};
    use helix_profiler::profile_program;

    /// Builds a module whose main contains one parallelizable accumulator loop over an array,
    /// analyzes it, transforms the hottest plan and returns everything needed to execute it.
    fn build_accumulator(n: i64) -> (helix_ir::Module, FuncId, TransformedProgram) {
        let mut mb = ModuleBuilder::new("m");
        let acc = mb.add_global("acc", 1);
        let arr = mb.add_global("arr", 1 + n as usize);
        let mut fb = FunctionBuilder::new("main", 0);
        // Fill the array with i*5 + 1.
        let init = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let a = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(init.induction_var),
        );
        let v = fb.binary_to_new(
            BinOp::Mul,
            Operand::Var(init.induction_var),
            Operand::int(5),
        );
        let v1 = fb.binary_to_new(BinOp::Add, Operand::Var(v), Operand::int(1));
        fb.store(Operand::Var(a), 0, Operand::Var(v1));
        fb.br(init.latch);
        fb.switch_to(init.exit);
        // Accumulate with extra per-iteration work.
        let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let addr = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(lh.induction_var),
        );
        let elt = fb.new_var();
        fb.load(elt, Operand::Var(addr), 0);
        let mixed = fb.binary_to_new(BinOp::Mul, Operand::Var(elt), Operand::int(3));
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(mixed));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        let main = mb.add_function(fb.finish());
        let module = mb.finish();

        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        // Transform the accumulator loop (the one with a data-transferring segment).
        let plan = output
            .plans
            .values()
            .find(|p| {
                p.segments
                    .iter()
                    .any(|s| s.transfers_data && s.synchronized)
            })
            .expect("accumulator plan")
            .clone();
        let transformed = transform::apply(&module, &plan);
        (module, main, transformed)
    }

    #[test]
    fn parallel_result_matches_sequential_result() {
        let (module, main, transformed) = build_accumulator(64);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        for threads in [1, 2, 4, 6] {
            let executor = ParallelExecutor::new(threads);
            let got = executor
                .run(&transformed, &[])
                .unwrap_or_else(|e| panic!("{threads} threads failed: {e}"))
                .unwrap()
                .as_int();
            assert_eq!(got, expected, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_threading() {
        let (_module, _main, transformed) = build_accumulator(48);
        let executor = ParallelExecutor::new(4);
        let first = executor.run(&transformed, &[]).unwrap().unwrap().as_int();
        for _ in 0..5 {
            let again = executor.run(&transformed, &[]).unwrap().unwrap().as_int();
            assert_eq!(again, first);
        }
    }

    #[test]
    fn executor_handles_zero_trip_loops() {
        let (_module, _main, transformed) = build_accumulator(64);
        // Re-run with the same plan but a module whose loop bound is zero is not directly
        // expressible here; instead check that a single-thread executor also works, which
        // exercises the same exit path on the first prologue evaluation for iteration == n.
        let executor = ParallelExecutor::new(1);
        assert!(executor.run(&transformed, &[]).unwrap().is_some());
    }

    #[test]
    fn spec_benchmark_runs_in_parallel_with_matching_checksum() {
        // End-to-end: take a SPEC stand-in, pick its hottest selected loop, transform it and
        // execute with real threads; the program checksum must match sequential execution.
        let bench = helix_workloads::all_benchmarks()[0]; // gzip stand-in
        let (module, main) = bench.build();
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let Some(plan) = output.selected_plans().into_iter().max_by(|a, b| {
            let ka = profile.loop_profile((a.func, a.loop_id)).cycles;
            let kb = profile.loop_profile((b.func, b.loop_id)).cycles;
            ka.cmp(&kb)
        }) else {
            // Nothing selected for this benchmark under the default config: nothing to check.
            return;
        };
        // Only main-level loops are executable by the single-invocation executor.
        if plan.func != main {
            return;
        }
        let transformed = transform::apply(&module, plan);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        let got = ParallelExecutor::new(4)
            .run(&transformed, &[])
            .expect("parallel execution succeeds")
            .unwrap()
            .as_int();
        assert_eq!(got, expected);
    }
}
