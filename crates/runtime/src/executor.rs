//! The parallel loop executor.
//!
//! Workers execute the HELIX-transformed program through the flat-bytecode engine
//! ([`helix_ir::ImageEvaluator`]) over a shared [`ShardedMemory`]: the module is lowered once
//! per run, every worker dispatches over the same immutable [`ExecImage`], and loads/stores
//! stripe across independently locked memory shards so iterations touching disjoint data
//! really do proceed in parallel. Cross-iteration ordering is enforced by the HELIX
//! `Wait`/`Signal` counters (atomics), exactly as before.

use crate::sharded::ShardedMemory;
use helix_core::TransformedProgram;
use helix_ir::exec::{BlockOutcome, ImageEvaluator, NullImageObserver};
use helix_ir::interp::{Context, ExecError};
use helix_ir::{BlockId, DepId, ExecImage, Value};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default safety cap on the number of loop iterations dispatched.
pub const DEFAULT_MAX_ITERATIONS: u64 = 10_000_000;

/// Default number of yield-spins a `Wait` performs before declaring deadlock.
pub const DEFAULT_SPIN_BUDGET: u64 = 200_000_000;

/// Errors raised by the parallel executor.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// The underlying engine faulted.
    Exec(ExecError),
    /// The executor gave up waiting for a signal (likely a missing `Signal` on some path).
    Deadlock {
        /// The dependence being waited for.
        dep: DepId,
        /// The iteration that was waiting.
        iteration: u64,
        /// Index of the signal counter slot the dependence maps to.
        signal_index: usize,
        /// The last signal counter value observed before giving up (the waiter needed it to
        /// reach `iteration`).
        last_observed: u64,
    },
    /// The loop never terminated within the iteration budget.
    IterationBudgetExceeded,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Exec(e) => write!(f, "execution error: {e}"),
            RuntimeError::Deadlock {
                dep,
                iteration,
                signal_index,
                last_observed,
            } => {
                write!(
                    f,
                    "deadlock waiting for {dep} in iteration {iteration}: signal slot \
                     {signal_index} last observed at {last_observed}, needed {iteration}"
                )
            }
            RuntimeError::IterationBudgetExceeded => write!(f, "iteration budget exceeded"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ExecError> for RuntimeError {
    fn from(e: ExecError) -> Self {
        RuntimeError::Exec(e)
    }
}

/// How the parallelized loop ended.
enum LoopExit {
    /// Control left the loop through an exit edge: resume Phase C at `block` with `regs`.
    Edge { block: u32, regs: Vec<Value> },
    /// A `Ret` inside the loop body ended the whole function with this value.
    Returned(Option<Value>),
}

/// Shared synchronization state: one counter per dependence plus the control counter gating
/// prologue execution, and the exit bookkeeping.
struct SyncState {
    signals: Vec<AtomicU64>,
    control: AtomicU64,
    /// Lowest iteration index that took a loop exit (u64::MAX while the loop is running).
    exited_at: AtomicU64,
    /// The exit taken by the *earliest* exiting iteration (sequential semantics pick the
    /// first iteration that leaves the loop, not the first worker to reach an exit).
    exit_state: Mutex<Option<(u64, LoopExit)>>,
}

impl SyncState {
    fn new(num_deps: usize) -> Self {
        Self {
            signals: (0..num_deps.max(1)).map(|_| AtomicU64::new(0)).collect(),
            control: AtomicU64::new(0),
            exited_at: AtomicU64::new(u64::MAX),
            exit_state: Mutex::new(None),
        }
    }

    /// Records `exit` for `iteration`, keeping the lowest-iteration exit seen so far.
    fn record_exit(&self, iteration: u64, exit: LoopExit) {
        self.exited_at.fetch_min(iteration, Ordering::AcqRel);
        let mut slot = self.exit_state.lock();
        match &*slot {
            Some((recorded, _)) if *recorded <= iteration => {}
            _ => *slot = Some((iteration, exit)),
        }
    }
}

/// Details of a timed-out `Wait`, recorded by the context for precise diagnostics.
#[derive(Clone, Copy, Debug)]
struct DeadlockInfo {
    dep: DepId,
    iteration: u64,
    signal_index: usize,
    last_observed: u64,
}

/// The sharded shared-memory context each worker executes against.
struct ShardedContext {
    memory: Arc<ShardedMemory>,
    sync: Arc<SyncState>,
    iteration: u64,
    spin_budget: u64,
    /// Set when a `Wait` times out, so the worker can raise a structured deadlock report.
    deadlock: Option<DeadlockInfo>,
}

impl ShardedContext {
    fn new(memory: Arc<ShardedMemory>, sync: Arc<SyncState>, spin_budget: u64) -> Self {
        Self {
            memory,
            sync,
            iteration: 0,
            spin_budget,
            deadlock: None,
        }
    }
}

impl Context for ShardedContext {
    fn load(&mut self, addr: i64) -> Result<Value, ExecError> {
        Ok(self.memory.load(addr)?)
    }

    fn store(&mut self, addr: i64, value: Value) -> Result<(), ExecError> {
        Ok(self.memory.store(addr, value)?)
    }

    fn alloc(&mut self, words: usize) -> Result<i64, ExecError> {
        Ok(self.memory.alloc(words)?)
    }

    fn wait(&mut self, dep: DepId) -> Result<u64, ExecError> {
        if self.iteration == 0 {
            return Ok(0);
        }
        let signal_index = dep.index() % self.sync.signals.len();
        let slot = &self.sync.signals[signal_index];
        let mut spins = 0u64;
        loop {
            let observed = slot.load(Ordering::Acquire);
            if observed >= self.iteration {
                return Ok(0);
            }
            std::thread::yield_now();
            spins += 1;
            if spins > self.spin_budget {
                self.deadlock = Some(DeadlockInfo {
                    dep,
                    iteration: self.iteration,
                    signal_index,
                    last_observed: observed,
                });
                return Err(ExecError::Synchronization(format!(
                    "timed out waiting for {dep} in iteration {} (signal slot {signal_index} \
                     stuck at {observed})",
                    self.iteration
                )));
            }
        }
    }

    fn signal(&mut self, dep: DepId) -> Result<(), ExecError> {
        let slot = &self.sync.signals[dep.index() % self.sync.signals.len()];
        slot.fetch_max(self.iteration + 1, Ordering::Release);
        Ok(())
    }
}

/// Converts a worker-side engine error into the most precise runtime error available.
fn worker_error(e: ExecError, ctx: &mut ShardedContext) -> RuntimeError {
    match ctx.deadlock.take() {
        Some(info) => RuntimeError::Deadlock {
            dep: info.dep,
            iteration: info.iteration,
            signal_index: info.signal_index,
            last_observed: info.last_observed,
        },
        None => RuntimeError::Exec(e),
    }
}

/// Executes a HELIX-transformed program with real worker threads.
#[derive(Clone, Copy, Debug)]
pub struct ParallelExecutor {
    /// Number of worker threads ("cores"). The main thread acts as one of them.
    pub threads: usize,
    /// Safety cap on the number of loop iterations dispatched.
    pub max_iterations: u64,
    /// How many yield-spins a `Wait` performs before the run is declared deadlocked.
    pub spin_budget: u64,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            spin_budget: DEFAULT_SPIN_BUDGET,
        }
    }
}

impl ParallelExecutor {
    /// Creates an executor with `threads` workers and default budgets.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Creates an executor with `threads` workers and the budgets of a
    /// [`helix_core::HelixConfig`].
    pub fn from_config(threads: usize, config: &helix_core::HelixConfig) -> Self {
        Self {
            threads: threads.max(1),
            max_iterations: config.max_loop_iterations.max(1),
            spin_budget: config.spin_budget.max(1),
        }
    }

    /// Overrides the deadlock spin budget.
    pub fn with_spin_budget(mut self, spins: u64) -> Self {
        self.spin_budget = spins.max(1);
        self
    }

    /// Overrides the loop iteration budget.
    pub fn with_max_iterations(mut self, iterations: u64) -> Self {
        self.max_iterations = iterations.max(1);
        self
    }

    /// Runs the parallel clone of `program` from its entry with `args`, executing the
    /// parallelized loop's iterations across worker threads, and returns the function's
    /// return value.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the engine faults, a signal never arrives, or the loop
    /// exceeds the iteration budget.
    pub fn run(
        &self,
        program: &TransformedProgram,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        let image = ExecImage::lower(&program.module);
        self.run_image(&image, program, args)
    }

    /// Same as [`ParallelExecutor::run`] with a pre-lowered image of `program.module`
    /// (callers that execute the same program repeatedly lower once and reuse the image).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the engine faults, a signal never arrives, or the loop
    /// exceeds the iteration budget.
    pub fn run_image(
        &self,
        image: &ExecImage,
        program: &TransformedProgram,
        args: &[Value],
    ) -> Result<Option<Value>, RuntimeError> {
        let func = program.parallel_func;
        let fi = image.func(func);
        let plan = &program.plan;
        let header: u32 = plan.header.0;
        let loop_blocks: BTreeSet<u32> = plan
            .prologue_blocks
            .iter()
            .chain(plan.body_blocks.iter())
            .map(|b| b.0)
            .collect();
        let num_deps = plan
            .segments
            .iter()
            .map(|s| s.dep.index() + 1)
            .max()
            .unwrap_or(1);

        let memory = Arc::new(ShardedMemory::from_memory(&image.initial_memory));
        let sync = Arc::new(SyncState::new(num_deps));
        let mut ctx = ShardedContext::new(memory.clone(), sync.clone(), self.spin_budget);
        let mut evaluator = ImageEvaluator::new(image);
        evaluator.set_fuel(u64::MAX);

        // Phase A: sequential execution from the entry until the parallel loop's header.
        let mut regs = vec![Value::default(); fi.num_regs.max(args.len())];
        for (slot, a) in regs.iter_mut().zip(args.iter()).take(fi.num_params) {
            *slot = *a;
        }
        let mut block = fi.entry_block;
        let mut guard = 0u64;
        loop {
            if block == header {
                break;
            }
            guard += 1;
            if guard > self.max_iterations {
                return Err(RuntimeError::IterationBudgetExceeded);
            }
            let outcome = evaluator
                .exec_block(func, block, &mut regs, &mut ctx, &mut NullImageObserver)
                .map_err(|e| worker_error(e, &mut ctx))?;
            match outcome {
                BlockOutcome::Jump(next) => block = next,
                BlockOutcome::Return(v) => return Ok(v), // the loop was never reached
            }
        }

        // Phase B: parallel execution of the loop.
        let snapshot = regs.clone();
        let next_iteration = AtomicU64::new(0);
        let max_iterations = self.max_iterations;
        let spin_budget = self.spin_budget;
        let worker_err: Mutex<Option<RuntimeError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut worker_ctx =
                        ShardedContext::new(memory.clone(), sync.clone(), spin_budget);
                    let mut worker_eval = ImageEvaluator::new(image);
                    worker_eval.set_fuel(u64::MAX);
                    loop {
                        let iteration = next_iteration.fetch_add(1, Ordering::SeqCst);
                        if iteration > max_iterations {
                            *worker_err.lock() = Some(RuntimeError::IterationBudgetExceeded);
                            return;
                        }
                        // Wait for permission: the previous iteration's prologue must have
                        // completed and decided to continue.
                        loop {
                            if sync.exited_at.load(Ordering::Acquire) <= iteration {
                                return; // the loop ended before this iteration
                            }
                            if sync.control.load(Ordering::Acquire) >= iteration {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        if sync.exited_at.load(Ordering::Acquire) <= iteration {
                            return;
                        }
                        worker_ctx.iteration = iteration;
                        let mut iter_regs = snapshot.clone();
                        // Privatize basic induction variables: each core recomputes them from
                        // the iteration number and their value at loop entry (Step 2).
                        for (var, step) in &plan.induction_vars {
                            let base = snapshot
                                .get(var.index())
                                .copied()
                                .unwrap_or_default()
                                .as_int();
                            if var.index() < iter_regs.len() {
                                iter_regs[var.index()] =
                                    Value::Int(base + *step * iteration as i64);
                            }
                        }
                        let mut current = header;
                        let mut prologue_done = false;
                        loop {
                            if !prologue_done && plan.body_blocks.contains(&BlockId::new(current)) {
                                // Leaving the prologue: release the next iteration.
                                sync.control.fetch_max(iteration + 1, Ordering::Release);
                                prologue_done = true;
                            }
                            match worker_eval.exec_block(
                                func,
                                current,
                                &mut iter_regs,
                                &mut worker_ctx,
                                &mut NullImageObserver,
                            ) {
                                Ok(BlockOutcome::Jump(next)) => {
                                    if next == header {
                                        // Back edge: the iteration is complete.
                                        if !prologue_done {
                                            sync.control
                                                .fetch_max(iteration + 1, Ordering::Release);
                                        }
                                        break;
                                    }
                                    if !loop_blocks.contains(&next) {
                                        // Loop exit: record it and stop dispatching.
                                        sync.record_exit(
                                            iteration,
                                            LoopExit::Edge {
                                                block: next,
                                                regs: iter_regs.clone(),
                                            },
                                        );
                                        return;
                                    }
                                    current = next;
                                }
                                Ok(BlockOutcome::Return(v)) => {
                                    // A return inside the loop ends the whole function.
                                    sync.record_exit(iteration, LoopExit::Returned(v));
                                    return;
                                }
                                Err(e) => {
                                    sync.exited_at.fetch_min(iteration, Ordering::AcqRel);
                                    *worker_err.lock() = Some(worker_error(e, &mut worker_ctx));
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        if let Some(err) = worker_err.into_inner() {
            return Err(err);
        }

        // Phase C: sequential execution after the loop, from the earliest iteration's exit.
        let (mut block, mut regs) = match sync.exit_state.lock().take() {
            Some((_, LoopExit::Edge { block, regs })) => (block, regs),
            Some((_, LoopExit::Returned(v))) => return Ok(v),
            None => return Err(RuntimeError::IterationBudgetExceeded),
        };
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > self.max_iterations {
                return Err(RuntimeError::IterationBudgetExceeded);
            }
            let outcome = evaluator
                .exec_block(func, block, &mut regs, &mut ctx, &mut NullImageObserver)
                .map_err(|e| worker_error(e, &mut ctx))?;
            match outcome {
                BlockOutcome::Jump(next) => block = next,
                BlockOutcome::Return(v) => return Ok(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_analysis::LoopNestingGraph;
    use helix_core::{transform, Helix, HelixConfig};
    use helix_ir::builder::{FunctionBuilder, ModuleBuilder};
    use helix_ir::{BinOp, FuncId, Machine, Operand};
    use helix_profiler::profile_program_image;

    /// Builds a module whose main contains one parallelizable accumulator loop over an array,
    /// analyzes it, transforms the hottest plan and returns everything needed to execute it.
    fn build_accumulator(n: i64) -> (helix_ir::Module, FuncId, TransformedProgram) {
        let mut mb = ModuleBuilder::new("m");
        let acc = mb.add_global("acc", 1);
        let arr = mb.add_global("arr", 1 + n as usize);
        let mut fb = FunctionBuilder::new("main", 0);
        // Fill the array with i*5 + 1.
        let init = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let a = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(init.induction_var),
        );
        let v = fb.binary_to_new(
            BinOp::Mul,
            Operand::Var(init.induction_var),
            Operand::int(5),
        );
        let v1 = fb.binary_to_new(BinOp::Add, Operand::Var(v), Operand::int(1));
        fb.store(Operand::Var(a), 0, Operand::Var(v1));
        fb.br(init.latch);
        fb.switch_to(init.exit);
        // Accumulate with extra per-iteration work.
        let lh = fb.counted_loop(Operand::int(0), Operand::int(n), 1);
        let addr = fb.binary_to_new(
            BinOp::Add,
            Operand::Global(arr),
            Operand::Var(lh.induction_var),
        );
        let elt = fb.new_var();
        fb.load(elt, Operand::Var(addr), 0);
        let mixed = fb.binary_to_new(BinOp::Mul, Operand::Var(elt), Operand::int(3));
        let cur = fb.new_var();
        fb.load(cur, Operand::Global(acc), 0);
        let next = fb.binary_to_new(BinOp::Add, Operand::Var(cur), Operand::Var(mixed));
        fb.store(Operand::Global(acc), 0, Operand::Var(next));
        fb.br(lh.latch);
        fb.switch_to(lh.exit);
        let out = fb.new_var();
        fb.load(out, Operand::Global(acc), 0);
        fb.ret(Some(Operand::Var(out)));
        let main = mb.add_function(fb.finish());
        let module = mb.finish();

        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        // Transform the accumulator loop (the one with a data-transferring segment).
        let plan = output
            .plans
            .values()
            .find(|p| {
                p.segments
                    .iter()
                    .any(|s| s.transfers_data && s.synchronized)
            })
            .expect("accumulator plan")
            .clone();
        let transformed = transform::apply(&module, &plan);
        (module, main, transformed)
    }

    #[test]
    fn parallel_result_matches_sequential_result() {
        let (module, main, transformed) = build_accumulator(64);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        for threads in [1, 2, 4, 6] {
            let executor = ParallelExecutor::new(threads);
            let got = executor
                .run(&transformed, &[])
                .unwrap_or_else(|e| panic!("{threads} threads failed: {e}"))
                .unwrap()
                .as_int();
            assert_eq!(got, expected, "mismatch with {threads} threads");
        }
    }

    #[test]
    fn repeated_runs_are_deterministic_despite_threading() {
        let (_module, _main, transformed) = build_accumulator(48);
        let executor = ParallelExecutor::new(4);
        let image = ExecImage::lower(&transformed.module);
        let first = executor
            .run_image(&image, &transformed, &[])
            .unwrap()
            .unwrap()
            .as_int();
        for _ in 0..5 {
            let again = executor
                .run_image(&image, &transformed, &[])
                .unwrap()
                .unwrap()
                .as_int();
            assert_eq!(again, first);
        }
    }

    #[test]
    fn executor_handles_zero_trip_loops() {
        let (_module, _main, transformed) = build_accumulator(64);
        // Check that a single-thread executor also works, which exercises the same exit path
        // on the first prologue evaluation for iteration == n.
        let executor = ParallelExecutor::new(1);
        assert!(executor.run(&transformed, &[]).unwrap().is_some());
    }

    #[test]
    fn budgets_are_configurable() {
        let config = HelixConfig::i7_980x()
            .with_spin_budget(1234)
            .with_max_loop_iterations(99);
        let executor = ParallelExecutor::from_config(3, &config);
        assert_eq!(executor.threads, 3);
        assert_eq!(executor.spin_budget, 1234);
        assert_eq!(executor.max_iterations, 99);
        let tuned = ParallelExecutor::new(2)
            .with_spin_budget(5)
            .with_max_iterations(7);
        assert_eq!(tuned.spin_budget, 5);
        assert_eq!(tuned.max_iterations, 7);
    }

    #[test]
    fn tiny_iteration_budget_aborts_the_run() {
        let (_module, _main, transformed) = build_accumulator(64);
        let executor = ParallelExecutor::new(2).with_max_iterations(3);
        match executor.run(&transformed, &[]) {
            Err(RuntimeError::IterationBudgetExceeded) => {}
            other => panic!("expected IterationBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_reports_signal_slot_and_last_value() {
        // Build a transformed program whose plan demands a synchronized segment, then corrupt
        // the clone by deleting every Signal instruction: iteration 1's Wait can never be
        // satisfied and must produce a precise deadlock report.
        let (_module, _main, mut transformed) = build_accumulator(32);
        let func = transformed.parallel_func;
        let f = transformed.module.function_mut(func);
        for block in &mut f.blocks {
            block
                .instrs
                .retain(|i| !matches!(i, helix_ir::Instr::Signal { .. }));
        }
        let executor = ParallelExecutor::new(2).with_spin_budget(2_000);
        match executor.run(&transformed, &[]) {
            Err(RuntimeError::Deadlock {
                dep,
                iteration,
                signal_index,
                last_observed,
            }) => {
                assert!(iteration >= 1, "iteration 0 never waits");
                assert!(last_observed < iteration);
                let msg = RuntimeError::Deadlock {
                    dep,
                    iteration,
                    signal_index,
                    last_observed,
                }
                .to_string();
                assert!(msg.contains("signal slot"), "diagnostic lacks slot: {msg}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn spec_benchmark_runs_in_parallel_with_matching_checksum() {
        // End-to-end: take a SPEC stand-in, pick its hottest selected loop, transform it and
        // execute with real threads; the program checksum must match sequential execution.
        let bench = helix_workloads::all_benchmarks()[0]; // gzip stand-in
        let (module, main) = bench.build();
        let nesting = LoopNestingGraph::new(&module);
        let profile = profile_program_image(&module, &nesting, main, &[]).unwrap();
        let output = Helix::new(HelixConfig::i7_980x()).analyze(&module, &profile);
        let Some(plan) = output.selected_plans().into_iter().max_by(|a, b| {
            let ka = profile.loop_profile((a.func, a.loop_id)).cycles;
            let kb = profile.loop_profile((b.func, b.loop_id)).cycles;
            ka.cmp(&kb)
        }) else {
            // Nothing selected for this benchmark under the default config: nothing to check.
            return;
        };
        // Only main-level loops are executable by the single-invocation executor.
        if plan.func != main {
            return;
        }
        let transformed = transform::apply(&module, plan);
        let mut machine = Machine::new(&module);
        let expected = machine.call(main, &[]).unwrap().unwrap().as_int();
        let got = ParallelExecutor::new(4)
            .run(&transformed, &[])
            .expect("parallel execution succeeds")
            .unwrap()
            .as_int();
        assert_eq!(got, expected);
    }
}
