//! # helix-runtime
//!
//! The real-thread runtime for HELIX-parallelized loops: it both validates that the
//! transformation preserves program semantics when iterations really run concurrently, and
//! is engineered to make them *faster* than the sequential engine — the paper's whole claim.
//!
//! The execution model mirrors the paper's (Section 2, Figure 3): successive iterations of
//! the parallelized loop are claimed by a pool of workers; iteration `i+1`'s prologue starts
//! only after iteration `i`'s prologue has finished *and decided to continue*;
//! `Wait(d)`/`Signal(d)` enforce iteration order for every synchronized sequential segment;
//! loop-boundary live variables travel through shared memory because the transformation
//! demoted them (Step 7).
//!
//! The moving parts, each in its own module:
//!
//! * [`parallel_image`] — a [`helix_core::TransformedProgram`] lowers **once** into a
//!   [`ParallelImage`]: per-iteration flat bytecode with pre-resolved signal-lane indices,
//!   sentinel back-edge/exit targets and privatized allocation sites, dispatched by a lean
//!   engine with no fuel/statistics/cost accounting;
//! * [`lanes`] — cache-line-padded, windowed [`SignalLanes`] replace the dense counter
//!   array whose adjacent dependences false-shared cache lines (the paper's ring-cache
//!   communication, in software);
//! * [`pool`] — a persistent, work-stealing-free [`WorkerPool`] reused across `execute`
//!   calls (the old executor respawned OS threads per run), with an adaptive
//!   spin → yield → park wait strategy;
//! * [`sharded`] — [`ShardedMemory`], lock-striped shared program memory with an atomic
//!   bump allocator, now extended with a thread-local tier ([`PrivateArena`]) serving
//!   allocations the privatization analysis proved iteration-private;
//! * [`executor`] — [`ParallelExecutor`] orchestrates the three phases, short-circuits
//!   zero-iteration loops to pure sequential execution, and reports deadlocks with the
//!   owning segment and pc range straight from the image's side tables;
//! * [`telemetry`] — per-worker event rings and stall accounting (compile-out via the
//!   default-on `telemetry` feature, sampled low-overhead mode), aggregated into
//!   per-segment run/wait/spin/park breakdowns, worker occupancy and observed segment
//!   costs that feed back into loop selection (`docs/observability.md`).
//!
//! Timing is *not* modeled here — that is `helix-simulator`'s job (which reads the
//! [`ParallelImage`]'s per-segment costs). This crate answers the correctness question —
//! does parallel execution produce the sequential result? — and the performance question —
//! is it actually faster? (`crates/bench/benches/parallel_runtime.rs` measures it.)

pub mod calibrate;
pub mod executor;
pub mod jit;
pub mod lanes;
pub mod parallel_image;
pub mod pool;
pub mod sharded;
pub mod telemetry;
pub mod threaded;

pub use calibrate::CalibrationProfile;
pub use executor::{ParallelExecutor, RunOutput, RuntimeError};
pub use jit::jit_supported;
pub use lanes::SignalLanes;
pub use parallel_image::{LoopImage, ParallelImage, SegmentLane};
pub use pool::{detect_hardware_threads, WaitProfile, WaitStats, WorkerPanic, WorkerPool};
pub use sharded::{PrivateArena, ShardedMemory, PRIVATE_BASE};
pub use telemetry::{
    Event, EventKind, ObservedSegmentCost, TelemetryMode, TelemetryReport, TelemetryRun, WorkerTail,
};
pub use threaded::DispatchTier;
