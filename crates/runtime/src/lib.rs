//! # helix-runtime
//!
//! A real-thread executor for HELIX-parallelized loops, used to validate that the
//! transformation preserves program semantics when iterations really do run concurrently.
//!
//! The execution model mirrors the paper's (Section 2, Figure 3): a pool of worker threads is
//! bound to a ring of "cores"; successive iterations of the parallelized loop are assigned
//! round-robin; iteration `i+1`'s prologue starts only after iteration `i`'s prologue has
//! finished *and decided to continue*; `Wait(d)`/`Signal(d)` enforce iteration order for every
//! synchronized sequential segment through per-dependence counters (the software equivalent of
//! the paper's thread memory buffers); loop-boundary live variables travel through shared
//! memory because the transformation demoted them (Step 7).
//!
//! Timing is *not* modeled here — that is `helix-simulator`'s job. This crate answers the
//! correctness question: does the parallel execution produce the same result as the
//! sequential one?
//!
//! Execution goes through the flat-bytecode engine (`helix_ir::exec`): the transformed module
//! is lowered once per run and every worker dispatches over the shared immutable image.
//! Program memory is [`ShardedMemory`] — lock-striped by address chunk with an atomic bump
//! allocator — so iterations touching disjoint data proceed without lock convoys.

pub mod executor;
pub mod sharded;

pub use executor::{ParallelExecutor, RuntimeError};
pub use sharded::ShardedMemory;
